//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::TestAccess;
use prebond3d::celllib::Library;
use prebond3d::netlist::{format, itc99, traverse, BitSet};
use prebond3d::partition::{fm, level, random as rpart, tsv, PartitionSpec};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::sta::{analyze, StaConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BitSet agrees with a reference HashSet under arbitrary operations.
    #[test]
    fn bitset_matches_hashset(ops in prop::collection::vec((0usize..200, any::<bool>()), 1..120)) {
        let mut set = BitSet::new(200);
        let mut reference = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(idx), reference.insert(idx));
            } else {
                prop_assert_eq!(set.remove(idx), reference.remove(&idx));
            }
        }
        prop_assert_eq!(set.count(), reference.len());
        let collected: std::collections::HashSet<usize> = set.iter().collect();
        prop_assert_eq!(collected, reference);
    }

    /// Generated dies always match their spec exactly and round-trip
    /// through the text format.
    #[test]
    fn generated_die_roundtrips(
        ffs in 4usize..24,
        gates in 60usize..240,
        inbound in 2usize..10,
        outbound in 2usize..10,
        seed in 0u64..1000,
    ) {
        let spec = itc99::DieSpec {
            name: "prop_die".into(),
            scan_flip_flops: ffs,
            gates,
            inbound_tsvs: inbound,
            outbound_tsvs: outbound,
            primary_inputs: 3,
            primary_outputs: 3,
            seed,
        };
        let die = itc99::generate_die(&spec);
        let stats = die.stats();
        prop_assert_eq!(stats.scan_flip_flops, ffs);
        prop_assert_eq!(stats.combinational_gates, gates);
        prop_assert_eq!(stats.inbound_tsvs, inbound);
        prop_assert_eq!(stats.outbound_tsvs, outbound);

        let text = format::write(&die);
        let reparsed = format::parse(&text).expect("emitted text reparses");
        prop_assert_eq!(die.len(), reparsed.len());
        prop_assert_eq!(die.stats(), reparsed.stats());
    }

    /// Topological order puts every combinational gate after its drivers.
    #[test]
    fn topological_order_is_consistent(seed in 0u64..500) {
        let die = itc99::generate_flat("prop", 150, 12, 5, 5, seed);
        let order = traverse::combinational_order(&die);
        prop_assert_eq!(order.len(), die.len());
        let mut pos = vec![0usize; die.len()];
        for (p, id) in order.iter().enumerate() {
            pos[id.index()] = p;
        }
        for (id, gate) in die.iter() {
            if gate.kind.is_sequential() {
                continue;
            }
            for &input in &gate.inputs {
                prop_assert!(pos[input.index()] < pos[id.index()]);
            }
        }
    }

    /// Every partitioner covers all gates, respects die count, and the
    /// extracted stack's TSV count equals the cut size.
    #[test]
    fn partitioners_are_well_formed(seed in 0u64..200, dies in 2usize..5) {
        let flat = itc99::generate_flat("prop", 200, 16, 6, 6, seed);
        let spec = PartitionSpec::new(dies);
        for assignment in [
            fm::partition(&flat, &spec, seed),
            level::partition(&flat, &spec),
            rpart::partition(&flat, &spec, seed),
        ] {
            prop_assert_eq!(assignment.len(), flat.len());
            prop_assert_eq!(assignment.die_sizes().len(), dies);
            let stack = tsv::extract_dies(&flat, &assignment).expect("valid extraction");
            prop_assert_eq!(stack.tsvs.len(), assignment.cut_size(&flat));
        }
    }

    /// STA invariants: loads are non-negative, the worst endpoint slack
    /// equals WNS, and a longer clock strictly increases every endpoint
    /// slack by the same amount.
    #[test]
    fn sta_invariants(seed in 0u64..200) {
        let die = itc99::generate_flat("prop", 180, 14, 5, 5, seed);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let r1 = analyze(&die, &placement, &lib, &StaConfig::with_period(
            prebond3d::celllib::Time(1000.0)));
        let r2 = analyze(&die, &placement, &lib, &StaConfig::with_period(
            prebond3d::celllib::Time(1500.0)));
        prop_assert!((r2.wns - r1.wns - prebond3d::celllib::Time(500.0)).0.abs() < 1e-6);
        for id in die.ids() {
            prop_assert!(r1.load(id).0 >= 0.0);
            prop_assert_eq!(r1.load(id), r2.load(id));
            // Arrival is clock-independent.
            prop_assert!((r1.arrival(id) - r2.arrival(id)).0.abs() < 1e-9);
        }
    }

    /// ATPG patterns generated for a die always detect at least as many
    /// faults as the engine claims (re-simulation agrees).
    #[test]
    fn atpg_accounting_is_consistent(seed in 0u64..60) {
        let die = itc99::generate_flat("prop", 100, 8, 5, 5, seed);
        let access = TestAccess::full_scan(&die);
        let result = run_stuck_at(&die, &access, &AtpgConfig::fast());
        let list = prebond3d::atpg::FaultList::collapsed(&die);
        let detected = prebond3d::atpg::engine::detected_by(
            &die, &access, &list.faults, &result.patterns);
        let count = detected.iter().filter(|&&d| d).count();
        prop_assert_eq!(count, result.detected);
        prop_assert!(result.detected + result.untestable <= result.total_faults);
    }
}

//! Property-style tests over the core data structures and invariants.
//!
//! Each test sweeps a deterministic seeded case list (the registry-free
//! replacement for `proptest`; DESIGN.md §7): inputs are drawn from
//! `prebond3d_rng`, so failures reproduce exactly and the sweep costs the
//! same every run.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::TestAccess;
use prebond3d::celllib::Library;
use prebond3d::netlist::{format, itc99, traverse, BitSet};
use prebond3d::partition::{fm, level, random as rpart, tsv, PartitionSpec};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::sta::{analyze, StaConfig};
use prebond3d_rng::StdRng;

const CASES: u64 = 24;

/// BitSet agrees with a reference HashSet under arbitrary operations.
#[test]
fn bitset_matches_hashset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB175 ^ case);
        let ops = rng.gen_range(1usize..120);
        let mut set = BitSet::new(200);
        let mut reference = std::collections::HashSet::new();
        for _ in 0..ops {
            let idx = rng.gen_range(0usize..200);
            if rng.gen::<bool>() {
                assert_eq!(set.insert(idx), reference.insert(idx), "case {case}");
            } else {
                assert_eq!(set.remove(idx), reference.remove(&idx), "case {case}");
            }
        }
        assert_eq!(set.count(), reference.len(), "case {case}");
        let collected: std::collections::HashSet<usize> = set.iter().collect();
        assert_eq!(collected, reference, "case {case}");
    }
}

/// Generated dies always match their spec exactly and round-trip through
/// the text format.
#[test]
fn generated_die_roundtrips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1E5 ^ case);
        let ffs = rng.gen_range(4usize..24);
        let gates = rng.gen_range(60usize..240);
        let inbound = rng.gen_range(2usize..10);
        let outbound = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0u64..1000);
        let spec = itc99::DieSpec {
            name: "prop_die".into(),
            scan_flip_flops: ffs,
            gates,
            inbound_tsvs: inbound,
            outbound_tsvs: outbound,
            primary_inputs: 3,
            primary_outputs: 3,
            seed,
        };
        let die = itc99::generate_die(&spec);
        let stats = die.stats();
        assert_eq!(stats.scan_flip_flops, ffs, "case {case}");
        assert_eq!(stats.combinational_gates, gates, "case {case}");
        assert_eq!(stats.inbound_tsvs, inbound, "case {case}");
        assert_eq!(stats.outbound_tsvs, outbound, "case {case}");

        let text = format::write(&die);
        let reparsed = format::parse(&text).expect("emitted text reparses");
        assert_eq!(die.len(), reparsed.len(), "case {case}");
        assert_eq!(die.stats(), reparsed.stats(), "case {case}");
    }
}

/// Topological order puts every combinational gate after its drivers.
#[test]
fn topological_order_is_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0710 ^ case);
        let seed = rng.gen_range(0u64..500);
        let die = itc99::generate_flat("prop", 150, 12, 5, 5, seed);
        let order = traverse::combinational_order(&die);
        assert_eq!(order.len(), die.len(), "case {case}");
        let mut pos = vec![0usize; die.len()];
        for (p, id) in order.iter().enumerate() {
            pos[id.index()] = p;
        }
        for (id, gate) in die.iter() {
            if gate.kind.is_sequential() {
                continue;
            }
            for &input in &gate.inputs {
                assert!(pos[input.index()] < pos[id.index()], "case {case}");
            }
        }
    }
}

/// Every partitioner covers all gates, respects die count, and the
/// extracted stack's TSV count equals the cut size.
#[test]
fn partitioners_are_well_formed() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xFA27 ^ case);
        let seed = rng.gen_range(0u64..200);
        let dies = rng.gen_range(2usize..5);
        let flat = itc99::generate_flat("prop", 200, 16, 6, 6, seed);
        let spec = PartitionSpec::new(dies);
        for assignment in [
            fm::partition(&flat, &spec, seed),
            level::partition(&flat, &spec),
            rpart::partition(&flat, &spec, seed),
        ] {
            assert_eq!(assignment.len(), flat.len(), "case {case}");
            assert_eq!(assignment.die_sizes().len(), dies, "case {case}");
            let stack = tsv::extract_dies(&flat, &assignment).expect("valid extraction");
            assert_eq!(stack.tsvs.len(), assignment.cut_size(&flat), "case {case}");
        }
    }
}

/// STA invariants: loads are non-negative, the worst endpoint slack equals
/// WNS, and a longer clock increases every endpoint slack by the same
/// amount.
#[test]
fn sta_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57A0 ^ case);
        let seed = rng.gen_range(0u64..200);
        let die = itc99::generate_flat("prop", 180, 14, 5, 5, seed);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let r1 = analyze(
            &die,
            &placement,
            &lib,
            &StaConfig::with_period(prebond3d::celllib::Time(1000.0)),
        );
        let r2 = analyze(
            &die,
            &placement,
            &lib,
            &StaConfig::with_period(prebond3d::celllib::Time(1500.0)),
        );
        assert!(
            (r2.wns - r1.wns - prebond3d::celllib::Time(500.0)).0.abs() < 1e-6,
            "case {case}"
        );
        for id in die.ids() {
            assert!(r1.load(id).0 >= 0.0, "case {case}");
            assert_eq!(r1.load(id), r2.load(id), "case {case}");
            // Arrival is clock-independent.
            assert!(
                (r1.arrival(id) - r2.arrival(id)).0.abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// ATPG patterns generated for a die always detect at least as many faults
/// as the engine claims (re-simulation agrees).
#[test]
fn atpg_accounting_is_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA7B6 ^ case);
        let seed = rng.gen_range(0u64..60);
        let die = itc99::generate_flat("prop", 100, 8, 5, 5, seed);
        let access = TestAccess::full_scan(&die);
        let result = run_stuck_at(&die, &access, &AtpgConfig::fast());
        let list = prebond3d::atpg::FaultList::collapsed(&die);
        let detected =
            prebond3d::atpg::engine::detected_by(&die, &access, &list.faults, &result.patterns);
        let count = detected.iter().filter(|&&d| d).count();
        assert_eq!(count, result.detected, "case {case}");
        assert!(
            result.detected + result.untestable <= result.total_faults,
            "case {case}"
        );
    }
}

//! Chaos regression suite (DESIGN.md §10): a seeded fault-injection sweep
//! across ≥64 seeds in which no panic may escape the driver boundary,
//! every report that gets written must stay schema-valid against the
//! goldens in `tests/golden/`, and every injected fault must be visible
//! afterwards as a failed unit, a degradation record, or a dropped-report
//! error — never silently swallowed.
//!
//! Each seed runs a three-die sweep through the real
//! `driver::run` / `resilient_par_die_scopes` pipeline with every chaos
//! site reachable from inside a unit closure:
//!
//! * `netlist.load`  — die generation panics (corrupt benchmark stand-in)
//! * `liberty.load`  — cell-library construction panics
//! * `timing.elmore` — NaN/∞ perturbation of Elmore delays in `run_flow`
//! * `pool.worker`   — panic in the worker loop proper (outside the unit
//!   `catch_unwind`, so it exercises the serial-fallback path)
//! * `io.write`      — checkpoint appends and both report writes
//!
//! Injection is deterministic per seed (`fnv1a(seed ‖ site ‖ call)`), so
//! this suite is a regression test, not a flake generator.

use std::collections::BTreeSet;
use std::process::ExitCode;

use prebond3d::celllib::Library;
use prebond3d::netlist::itc99::{self, DieSpec};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowError, Method};
use prebond3d_bench::{driver, report};
use prebond3d_obs::json::{parse, Value};
use prebond3d_pool::with_threads;
use prebond3d_resilience::chaos;

const SEEDS: u64 = 64;
/// Per-call injection probability. High enough that every fault kind
/// fires many times across the sweep (asserted at the end), low enough
/// that most units still complete and exercise the recovery paths.
const RATE: f64 = 0.02;

/// Three tiny dies (~100 gates) so 64 full sweeps stay fast. Built from
/// explicit specs rather than `itc99::circuit` so each unit closure pays
/// for its own `generate_die` — putting the `netlist.load` site inside
/// the per-unit isolation boundary.
fn specs() -> Vec<DieSpec> {
    (0..3u64)
        .map(|i| DieSpec {
            name: format!("chaos_die{i}"),
            scan_flip_flops: 8,
            gates: 90 + 10 * i as usize,
            inbound_tsvs: 6,
            outbound_tsvs: 6,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 0xC4A0_5000 + i,
        })
        .collect()
}

/// One experiment body: the full per-die pipeline (generate → library →
/// place → flow) under per-unit panic isolation and checkpointing.
fn run_units() -> Result<(), FlowError> {
    let cases = specs();
    report::resilient_par_die_scopes(
        "chaos",
        &cases,
        |s| s.name.clone(),
        |spec| {
            let netlist = itc99::generate_die(spec);
            let lib = Library::nangate45_like();
            let placement = place(&netlist, &PlaceConfig::default(), 1);
            let r = run_flow(
                &netlist,
                &placement,
                &lib,
                &FlowConfig::area_optimized(Method::Ours),
            )
            .expect("flow");
            (r.reused_scan_ffs, r.additional_wrapper_cells)
        },
        |&(reused, additional)| {
            Value::obj([("reused", reused.into()), ("additional", additional.into())])
        },
        |v| {
            Some((
                v.get("reused")?.as_u64()? as usize,
                v.get("additional")?.as_u64()? as usize,
            ))
        },
    );
    Ok(())
}

/// Reduce a JSON value to `path: type` lines — the same shape as the
/// golden files (see `tests/report_schema.rs`; duplicated here because
/// integration-test binaries cannot share a module without a helper
/// crate, and the 30 lines are cheaper than the coupling).
fn schema_lines(path: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Num(_) => {
            out.insert(format!("{path}: number"));
        }
        Value::Str(_) => {
            out.insert(format!("{path}: string"));
        }
        Value::Arr(items) => {
            out.insert(format!("{path}: array"));
            for item in items {
                schema_lines(&format!("{path}[]"), item, out);
            }
        }
        Value::Obj(map) => {
            if path.ends_with(".counters") || path.ends_with(".gauges") {
                out.insert(format!("{path}: map<number>"));
                return;
            }
            if path.ends_with(".hists") {
                out.insert(format!("{path}: map<hist>"));
                return;
            }
            out.insert(format!("{path}: object"));
            for (k, v) in map {
                schema_lines(&format!("{path}.{k}"), v, out);
            }
        }
    }
}

#[test]
fn seeded_chaos_sweep_never_escapes_and_accounts_for_every_fault() {
    let base = std::env::temp_dir().join(format!("prebond3d-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp report dir");
    std::env::set_var("PREBOND3D_REPORT_DIR", &base);

    let golden: BTreeSet<String> = include_str!("golden/run_report.schema.txt")
        .lines()
        .map(str::to_string)
        .collect();
    let fatal = ExitCode::from(driver::EXIT_FATAL);
    // Tallies per fault kind, to prove the sweep actually exercised all
    // three — a suite that injects nothing proves nothing.
    let (mut panics, mut ios, mut non_finites) = (0u64, 0u64, 0u64);

    for seed in 0..SEEDS {
        chaos::install(Some((seed, RATE)));
        let exp = format!("chaos_s{seed}");
        // Alternate serial and 2-thread pools so both the serial chunk
        // loop and the worker-loop poison path see injections.
        let threads = if seed % 2 == 0 { 1 } else { 2 };
        let code = with_threads(threads, || driver::run(&exp, run_units));
        chaos::install(None);

        assert_ne!(
            code, fatal,
            "seed {seed}: a panic escaped the driver boundary"
        );

        let run_path = base.join(format!("run_{exp}.json"));
        let Ok(text) = std::fs::read_to_string(&run_path) else {
            // The injection hit the final report write itself: the only
            // way this file can be missing (the dir exists and has space).
            // The failure was reported on stderr and the exit code stayed
            // non-fatal, which is exactly the contract.
            ios += 1;
            continue;
        };
        let doc = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: report unparsable: {e}"));

        let mut lines = BTreeSet::new();
        schema_lines("$", &doc, &mut lines);
        for line in &lines {
            assert!(
                golden.contains(line),
                "seed {seed}: report field outside the golden schema: {line}"
            );
        }

        let actions: BTreeSet<&str> = doc
            .get("degradations")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|d| d.get("action")?.as_str())
            .collect();
        let failures = doc
            .get("failures")
            .and_then(Value::as_arr)
            .map_or(0, <[Value]>::len);
        let events = doc
            .get("chaos")
            .and_then(|c| c.get("events"))
            .and_then(Value::as_arr)
            .unwrap_or(&[]);

        for ev in events {
            let kind = ev.get("kind").and_then(Value::as_str).unwrap_or("?");
            let site = ev.get("site").and_then(Value::as_str).unwrap_or("?");
            match kind {
                // A panic either failed its unit in isolation or poisoned
                // the pool and forced the recorded serial fallback.
                "panic" => {
                    panics += 1;
                    assert!(
                        failures > 0 || actions.contains("serial_fallback"),
                        "seed {seed}: injected panic at {site} left no failure or fallback record"
                    );
                }
                // A write error either dropped a checkpoint entry (run
                // continues, degradation recorded) or killed a report
                // write (file missing — BENCH here, run_* handled above).
                "io" => {
                    ios += 1;
                    assert!(
                        actions.contains("drop_entry")
                            || !base.join(format!("BENCH_{exp}.json")).exists(),
                        "seed {seed}: injected I/O error at {site} left no degradation or missing file"
                    );
                }
                // A NaN/∞ Elmore delay must degrade to the conservative
                // infinite penalty, never poison a comparison.
                "non_finite" => {
                    non_finites += 1;
                    assert!(
                        actions.contains("infinite_penalty"),
                        "seed {seed}: injected non-finite at {site} left no infinite_penalty record"
                    );
                }
                other => panic!("seed {seed}: unknown chaos kind {other}"),
            }
        }
    }

    assert!(panics > 0, "sweep never injected a panic; raise RATE");
    assert!(ios > 0, "sweep never injected an I/O error; raise RATE");
    assert!(
        non_finites > 0,
        "sweep never injected a non-finite; raise RATE"
    );
    eprintln!("chaos sweep: {SEEDS} seeds, {panics} panics, {ios} io errors, {non_finites} non-finite injections — all accounted for");

    std::env::remove_var("PREBOND3D_REPORT_DIR");
    let _ = std::fs::remove_dir_all(&base);
}

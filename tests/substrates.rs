//! Cross-crate exercises of the supporting substrates: export formats,
//! netlist editing, path enumeration, density checks and diagnosis, all
//! driven through the main flow's artifacts.

use prebond3d::atpg::diagnosis::FaultDictionary;
use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::FaultList;
use prebond3d::celllib::{liberty, Library};
use prebond3d::dft::prebond_access;
use prebond3d::netlist::{edit, format, itc99, verilog};
use prebond3d::place::density::{colocated_groups, DensityMap};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::sta::analysis::analyze_with_statics;
use prebond3d::sta::{k_worst_paths, slack_histogram, StaConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};

fn wrapped_flow() -> (
    prebond3d::netlist::Netlist,
    prebond3d::wcm::flow::FlowResult,
) {
    let spec = itc99::circuit("b11").expect("known benchmark");
    let die = itc99::generate_die(&spec.dies[0]);
    let placement = place(&die, &PlaceConfig::default(), 1);
    let lib = Library::nangate45_like();
    let r = run_flow(
        &die,
        &placement,
        &lib,
        &FlowConfig::performance_optimized(Method::Ours),
    )
    .expect("flow runs");
    (die, r)
}

#[test]
fn testable_netlist_exports_to_verilog_and_text() {
    let (_, r) = wrapped_flow();
    let v = verilog::write(&r.testable.netlist);
    assert!(v.contains("module b11_die0_testable"));
    assert!(v.contains("wrapmux__"));
    // The native text format round-trips the DFT netlist.
    let text = format::write(&r.testable.netlist);
    let reparsed = format::parse(&text).expect("reparses");
    assert_eq!(reparsed.len(), r.testable.netlist.len());
    assert_eq!(reparsed.stats(), r.testable.netlist.stats());
}

#[test]
fn library_roundtrips_and_drives_the_flow() {
    let lib = Library::nangate45_like();
    let text = liberty::write(&lib);
    let parsed = liberty::parse(&text).expect("parses");
    assert_eq!(parsed, lib);
}

#[test]
fn test_mode_specialization_folds_muxes() {
    let (_, r) = wrapped_flow();
    let netlist = &r.testable.netlist;
    // Force test_en = 1 and fold: every wrapper mux output becomes the
    // wrapper-cell path, i.e. the mux survives only as pass-through logic
    // while constants propagate where data pins are constant. At minimum
    // the pass must keep the netlist valid and not grow it.
    let folded = edit::propagate_constants(netlist, &[(r.testable.test_en, true)])
        .expect("folding preserves validity");
    assert_eq!(folded.len(), netlist.len());
    // And dead-logic sweeping after folding keeps every port.
    let (swept, _) = edit::sweep_dead(&folded).expect("sweep succeeds");
    assert_eq!(swept.stats().primary_inputs, netlist.stats().primary_inputs);
    assert_eq!(swept.stats().inbound_tsvs, netlist.stats().inbound_tsvs);
    assert!(swept.len() <= folded.len());
}

#[test]
fn path_enumeration_ranks_wrapped_die_endpoints() {
    let (_, r) = wrapped_flow();
    let lib = Library::nangate45_like();
    let config = StaConfig::with_period(r.clock_period);
    let report = analyze_with_statics(
        &r.testable.netlist,
        &r.placement,
        &lib,
        &config,
        &[r.testable.test_en],
    );
    let paths = k_worst_paths(
        &r.testable.netlist,
        &r.placement,
        &lib,
        &config,
        &report,
        10,
    );
    assert_eq!(paths.len(), 10);
    assert!((paths[0].slack - report.wns).0.abs() < 1e-9);
    let (edges, counts) =
        slack_histogram(&r.testable.netlist, &r.placement, &lib, &config, &report, 6);
    assert_eq!(edges.len(), 7);
    assert!(counts.iter().sum::<usize>() > 0);
}

#[test]
fn dft_anchoring_is_the_only_colocation_source() {
    let (die, r) = wrapped_flow();
    let placement = place(&die, &PlaceConfig::default(), 1);
    assert!(colocated_groups(&placement).is_empty());
    // The extended placement co-locates only inserted gates with anchors.
    let groups = colocated_groups(&r.placement);
    for group in &groups {
        let inserted = group.iter().filter(|&&g| g.index() >= die.len()).count();
        assert!(
            inserted >= group.len() - 1,
            "each colocated group is one original gate plus inserted DFT"
        );
    }
    let map = DensityMap::build(&r.placement, 10, 10);
    assert!(map.peak_to_average() >= 1.0);
}

#[test]
fn dictionary_resolution_survives_wrapping() {
    let (_, r) = wrapped_flow();
    let netlist = &r.testable.netlist;
    let access = prebond_access(&r.testable);
    let atpg = run_stuck_at(netlist, &access, &AtpgConfig::fast());
    let universe = FaultList::collapsed(netlist);
    let dict = FaultDictionary::build(netlist, &access, &universe.faults, &atpg.patterns);
    assert!(dict.resolution() > 0.1);
    assert_eq!(dict.len(), universe.len());
}

//! Serving soak (CI's dedicated soak step; `#[ignore]` for normal runs):
//! many clients hammer one daemon with chaos injection armed, malformed
//! frames interspersed and connections dropped mid-job — and at the end
//! every job must be accounted (done or failed, none lost), the warm
//! cache must have respected its byte budget throughout, no panic may
//! have escaped a job (the daemon still serves), and RSS stays bounded.
//!
//! Run with `cargo test --test serve_soak -- --ignored`.

// Shared across the serve suites; each binary uses a different subset.
#[allow(dead_code)]
#[path = "serve_util/mod.rs"]
mod serve_util;

use prebond3d_obs::json::Value;
use prebond3d_resilience as resil;
use prebond3d_rng::StdRng;
use prebond3d_serve::{Bind, Server, ServerConfig};
use serve_util::{field, job_stat, Client};

/// Tight enough that the three substrates (~31/59/67 KB warm entries)
/// cannot all stay resident at once, yet roomy enough that each one is
/// individually admissible — so the soak continually evicts and
/// re-checks the budget invariant under load.
const SOAK_CACHE_BYTES: usize = 128 * 1024;

/// Full soak: `#[ignore]`d, run by CI's dedicated soak job.
#[test]
#[ignore = "soak: minutes of load; CI runs it in the dedicated soak job"]
fn soak_under_chaos_accounts_every_job_and_keeps_the_budget() {
    soak(4, 25);
}

/// Tier-1 slice of the same storm: small enough for every `cargo test`
/// run, identical invariants. Chaos stays armed so the accounting and
/// budget checks still face injected faults, not a calm daemon.
#[test]
fn short_soak_slice_accounts_every_job_and_keeps_the_budget() {
    soak(2, 8);
}

fn soak(clients: usize, jobs_per_client: usize) {
    // Arm chaos for the whole process — server workers included.
    resil::chaos::install(Some((0xC0FF_EE00, 0.02)));
    let server = Server::start(ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 4,
        cache_bytes: SOAK_CACHE_BYTES,
        ..ServerConfig::default()
    })
    .expect("bind soak daemon");
    let addr = server.addr().expect("tcp addr").to_string();
    let rss_before_kb = prebond3d_obs::mem::rss_now_kb().unwrap_or(0);

    let substrates = [("b11", 0usize), ("b11", 1), ("b12", 0)];
    let methods = ["ours", "agrawal", "li", "naive"];
    let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let substrates = &substrates;
                let methods = &methods;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x50A6 ^ ((c as u64) << 8));
                    let mut completed = 0u64;
                    let mut submitted = 0u64;
                    let mut client = Client::connect(&addr);
                    for j in 0..jobs_per_client {
                        // Sprinkle protocol abuse between jobs; the
                        // daemon must absorb it without desyncing.
                        if rng.gen_bool(0.2) {
                            let frame = client.request(r#"{"op":"submit"}"#);
                            assert_eq!(field(&frame, "ev"), "error");
                        }
                        let (circuit, die) = substrates[rng.gen_range(0..substrates.len())];
                        let method = methods[rng.gen_range(0..methods.len())];
                        let line = format!(
                            r#"{{"op":"submit","id":"c{c}-j{j}","circuit":"{circuit}","die":{die},"method":"{method}","probe":"structural"}}"#
                        );
                        submitted += 1;
                        if rng.gen_bool(0.1) {
                            // Mid-job disconnect: send, read `accepted`,
                            // drop the connection and reconnect.
                            client.send_line(&line);
                            assert_eq!(field(&client.read_frame(), "ev"), "accepted");
                            client = Client::connect(&addr);
                            continue;
                        }
                        let done = client.submit(&line);
                        let code = done.get("code").and_then(Value::as_u64).expect("code");
                        // Chaos makes 3 (degraded) and 4 (panic) legal;
                        // 1/2 would mean the daemon corrupted the job.
                        assert!(
                            matches!(code, 0 | 3 | 4),
                            "unexpected exit code {code}: {done}"
                        );
                        completed += 1;
                    }
                    (submitted, completed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let sent: u64 = per_client.iter().map(|&(s, _)| s).sum();
    assert_eq!(sent, (clients * jobs_per_client) as u64);

    // Every job — including the orphaned ones — must drain to done or
    // failed; nothing may be lost in the queue.
    let mut control = Client::connect(&addr);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let stats = control.request(r#"{"op":"stats"}"#);
        let submitted = job_stat(&stats, "submitted");
        let drained = job_stat(&stats, "done") + job_stat(&stats, "failed");
        if submitted == sent && drained == submitted {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "jobs lost under chaos: {stats}, {sent} sent"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    // Budget invariant: the warm cache never holds more than its budget
    // (strict, even after probe-growth reweighs), and the tight budget
    // actually forced evictions, so the invariant was exercised.
    let cache = server.cache_stats();
    assert!(
        cache.bytes <= cache.budget,
        "cache over budget: {} > {}",
        cache.bytes,
        cache.budget
    );
    assert!(cache.evictions > 0, "soak budget never forced an eviction");
    assert!(cache.hits > 0, "soak never hit the warm cache");

    // No escaped panic: the daemon still serves after the storm.
    assert_eq!(field(&control.request(r#"{"op":"ping"}"#), "ev"), "pong");

    // RSS bounded: a leak across ~100 jobs would show up as unbounded
    // growth; allow generous headroom for allocator retention.
    let rss_after_kb = prebond3d_obs::mem::rss_now_kb().unwrap_or(0);
    assert!(
        rss_after_kb.saturating_sub(rss_before_kb) < 1_500_000,
        "RSS grew {rss_before_kb} -> {rss_after_kb} kB during the soak"
    );

    resil::chaos::install(None);
    server.shutdown();
    server.join();
}

//! Durability contract of the serving daemon (DESIGN.md §15): a crash
//! after `accepted` never loses a job, never runs it twice, and the
//! recovered run's `report` is byte-identical to an uninterrupted one.
//!
//! The drills pause the queue (`ServerConfig::paused`) so the crash
//! window is deterministic: submitted jobs are journaled and held, the
//! abort strands exactly those jobs, and the restart must replay them.
//! Alongside the end-to-end drills, seeded corruption sweeps mangle the
//! journal file itself — truncations and bit flips — and recovery must
//! never panic and always keep every intact prefix entry (mirroring the
//! netlist parser's `parser_errors` sweeps).

#[path = "serve_util/mod.rs"]
mod serve_util;

use prebond3d_obs::json::Value;
use prebond3d_rng::StdRng;
use prebond3d_serve::{journal, ServerConfig};
use serve_util::{field, start_with, stop, test_config, Client};

/// A unique temp journal path per test (tests run concurrently in one
/// process; pid alone is not enough).
fn temp_journal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "prebond3d-test-{tag}-{}.wal",
        std::process::id()
    ))
}

fn journaled_config(journal: &std::path::Path, paused: bool) -> ServerConfig {
    ServerConfig {
        workers: 1,
        journal: Some(journal.to_path_buf()),
        paused,
        ..test_config()
    }
}

fn submit_line(id: &str, die: usize, method: &str) -> String {
    format!(r#"{{"op":"submit","id":"{id}","circuit":"b11","die":{die},"method":"{method}","probe":"structural"}}"#)
}

/// Poll the `status` op until the key reaches `done`; recovered orphans
/// run with no client attached, so `status` is the only way to see them.
fn wait_done(client: &mut Client, key: &str) -> Value {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let frame = client.request(&format!(r#"{{"op":"status","key":"{key}"}}"#));
        match frame.get("state").and_then(Value::as_str) {
            Some("done") => return frame,
            Some("pending") => {}
            other => panic!("unexpected status state {other:?}: {frame}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {key} never reached done"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// The full crash drill: journaled paused daemon, three held jobs,
/// abort, restart, exactly-once replay with byte-identical reports.
#[test]
fn aborted_daemon_recovers_stranded_jobs_byte_identically() {
    let journal = temp_journal("abort-recover");
    let _ = std::fs::remove_file(&journal);
    let (server, addr) = start_with(journaled_config(&journal, true));

    // Three distinct specs into the held queue; all journaled, none run.
    let lines = [
        submit_line("a", 0, "ours"),
        submit_line("b", 1, "agrawal"),
        submit_line("c", 0, "li"),
    ];
    let mut keys = Vec::new();
    let mut conns = Vec::new();
    for line in &lines {
        let mut c = Client::connect(&addr);
        c.send_line(line);
        let accepted = c.read_frame();
        assert_eq!(field(&accepted, "ev"), "accepted");
        keys.push(field(&accepted, "key").to_string());
        conns.push(c);
    }
    let mut control = Client::connect(&addr);
    let stats = control.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("queue").and_then(|q| q.get("depth")).and_then(Value::as_u64),
        Some(3),
        "held queue should hold all three jobs: {stats}"
    );
    // The in-process SIGKILL analogue: stop dequeuing, strand the queue.
    server.abort();
    server.join();
    drop(conns);
    drop(control);

    // Restart paused: the orphans must be re-queued before anything
    // runs, observable via stats, then released over the wire.
    let (server, addr) = start_with(journaled_config(&journal, true));
    let mut control = Client::connect(&addr);
    let stats = control.request(r#"{"op":"stats"}"#);
    let jstat = |block: &str, key: &str| {
        stats
            .get(block)
            .and_then(|b| b.get(key))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("stats lacks {block}.{key}: {stats}"))
    };
    assert_eq!(jstat("journal", "recovered"), 3);
    assert_eq!(jstat("journal", "pending"), 3);
    assert_eq!(jstat("queue", "depth"), 3);
    assert_eq!(field(&control.request(r#"{"op":"resume"}"#), "ev"), "resumed");

    for (line, key) in lines.iter().zip(&keys) {
        let status = wait_done(&mut control, key);
        assert_eq!(status.get("code").and_then(Value::as_u64), Some(0));
        let report = status
            .get("report")
            .unwrap_or_else(|| panic!("recovered job has no report: {status}"))
            .to_string();
        // Byte-identity: a fresh-id rerun of the same spec produces the
        // exact same report (the id is not part of the report).
        let fresh = line.replacen(r#""id":""#, r#""id":"fresh-"#, 1);
        let rerun = Client::connect(&addr).submit(&fresh);
        assert_eq!(
            rerun.get("report").map(Value::to_string),
            Some(report.clone()),
            "recovered report differs from an uninterrupted rerun"
        );
        // Exactly-once: the original line replays from the journal.
        let replay = Client::connect(&addr).submit(line);
        assert_eq!(replay.get("dedup").and_then(Value::as_bool), Some(true));
        assert_eq!(replay.get("cache").and_then(Value::as_str), Some("journal"));
        assert_eq!(replay.get("report").map(Value::to_string), Some(report));
        assert_eq!(field(&replay, "key"), key, "key drifted across restart");
    }
    let stats = control.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("journal").and_then(|j| j.get("pending")).and_then(Value::as_u64),
        Some(0),
        "journal still has pending entries after the drain: {stats}"
    );
    stop(server);
    let _ = std::fs::remove_file(&journal);
}

/// A duplicate submit of a completed job must not run twice — even
/// without any crash in between.
#[test]
fn duplicate_submit_replays_from_the_journal() {
    let journal = temp_journal("dedup");
    let _ = std::fs::remove_file(&journal);
    let (server, addr) = start_with(journaled_config(&journal, false));
    let mut client = Client::connect(&addr);
    let line = submit_line("dup", 0, "ours");
    let first = client.submit(&line);
    assert_eq!(first.get("code").and_then(Value::as_u64), Some(0));
    assert_eq!(first.get("dedup").and_then(Value::as_bool), None);
    let replay = client.submit(&line);
    assert_eq!(replay.get("dedup").and_then(Value::as_bool), Some(true));
    assert_eq!(
        replay.get("report").map(Value::to_string),
        first.get("report").map(Value::to_string),
        "dedup replay must be byte-identical to the original"
    );
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("journal").and_then(|j| j.get("deduped")).and_then(Value::as_u64),
        Some(1)
    );
    stop(server);
    let _ = std::fs::remove_file(&journal);
}

/// A full queue answers `retry_after`, not silence and not an error.
#[test]
fn full_queue_sheds_with_a_retry_after_frame() {
    let (server, addr) = start_with(ServerConfig {
        workers: 1,
        max_queue: 0,
        ..test_config()
    });
    let mut client = Client::connect(&addr);
    let frame = client.request(&submit_line("shed", 0, "ours"));
    assert_eq!(field(&frame, "ev"), "retry_after");
    assert_eq!(frame.get("ok").and_then(Value::as_bool), Some(false));
    let ms = frame
        .get("retry_after_ms")
        .and_then(Value::as_u64)
        .expect("retry_after frame carries retry_after_ms");
    assert!(ms > 0, "backoff hint must be positive");
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("queue").and_then(|q| q.get("shed")).and_then(Value::as_u64),
        Some(1)
    );
    stop(server);
}

/// `status` rejects malformed keys and reports unknown ones as such.
#[test]
fn status_op_handles_bad_and_unknown_keys() {
    let journal = temp_journal("status");
    let _ = std::fs::remove_file(&journal);
    let (server, addr) = start_with(journaled_config(&journal, false));
    let mut client = Client::connect(&addr);
    let bad = client.request(r#"{"op":"status","key":"nope"}"#);
    assert_eq!(field(&bad, "ev"), "error");
    let unknown = client.request(r#"{"op":"status","key":"00000000deadbeef"}"#);
    assert_eq!(field(&unknown, "ev"), "status");
    assert_eq!(unknown.get("state").and_then(Value::as_str), Some("unknown"));
    stop(server);
    let _ = std::fs::remove_file(&journal);
}

/// A per-job `budget_ms` deadline propagates into the flow: the job
/// degrades to best-so-far (code 3) instead of blowing the deadline,
/// and the done frame itemizes the degradations.
#[test]
fn budget_ms_degrades_to_best_so_far_over_the_wire() {
    let (server, addr) = start_with(test_config());
    let mut client = Client::connect(&addr);
    let done = client.submit(
        r#"{"op":"submit","id":"tight","circuit":"b11","die":0,"method":"ours","probe":"atpg","budget_ms":0}"#,
    );
    assert_eq!(done.get("code").and_then(Value::as_u64), Some(3));
    let degradations = done
        .get("degradations")
        .and_then(Value::as_arr)
        .expect("done frame carries a degradations array");
    assert!(
        !degradations.is_empty(),
        "a blown deadline must itemize its degradations: {done}"
    );
    assert!(
        done.get("report").is_some(),
        "degraded jobs still return their best-so-far report"
    );
    stop(server);
}

/// A job rejected by the static admission gate (code 1) must itemize
/// the boundary issues on the wire, so the client learns *why* the die
/// is untestable without running lint locally.
#[test]
fn rejected_job_done_frame_carries_the_boundary_issues() {
    use prebond3d_netlist::{GateKind, NetlistBuilder};
    // An outbound TSV driven by a provable constant: no wrapper plan
    // can make it testable, so admission rejects before the flow runs.
    let mut b = NetlistBuilder::new("reject_die");
    let a = b.input("a");
    let c1 = b.gate(GateKind::Const1, &[], "c1");
    let g = b.gate(GateKind::Or, &[a, c1], "g");
    b.tsv_out(g, "to");
    b.output(a, "o");
    let text = prebond3d_netlist::format::write(&b.finish().unwrap());

    let (server, addr) = start_with(test_config());
    let mut client = Client::connect(&addr);
    let line = Value::obj([
        ("op", "submit".into()),
        ("id", "reject".into()),
        ("netlist", text.as_str().into()),
        ("method", "ours".into()),
        ("probe", "structural".into()),
    ])
    .to_string();
    let done = client.submit(&line);
    assert_eq!(done.get("code").and_then(Value::as_u64), Some(1));
    let issues = done
        .get("issues")
        .and_then(Value::as_arr)
        .expect("rejected done frame carries an issues array");
    assert!(
        issues
            .iter()
            .any(|i| i.as_str().is_some_and(|s| s.contains("to"))),
        "issues must name the offending TSV: {done}"
    );
    stop(server);
}

/// Build a journal with a known set of entries by running real jobs
/// through a daemon, returning its bytes.
fn journal_fixture(tag: &str) -> Vec<u8> {
    let journal = temp_journal(tag);
    let _ = std::fs::remove_file(&journal);
    // Two completed jobs, then two stranded in a held queue: the file
    // holds both done records and accepted-but-unfinished entries.
    let (server, addr) = start_with(journaled_config(&journal, false));
    let mut client = Client::connect(&addr);
    client.submit(&submit_line("f0", 0, "ours"));
    client.submit(&submit_line("f1", 1, "ours"));
    stop(server);
    let (server, addr) = start_with(journaled_config(&journal, true));
    let mut c0 = Client::connect(&addr);
    c0.send_line(&submit_line("f2", 0, "agrawal"));
    assert_eq!(field(&c0.read_frame(), "ev"), "accepted");
    let mut c1 = Client::connect(&addr);
    c1.send_line(&submit_line("f3", 1, "li"));
    assert_eq!(field(&c1.read_frame(), "ev"), "accepted");
    server.abort();
    server.join();
    let bytes = std::fs::read(&journal).expect("journal fixture bytes");
    let _ = std::fs::remove_file(&journal);
    bytes
}

/// Truncation sweep: recovery of every prefix of a real journal must
/// never panic, and every entry whose line survives intact must be
/// recovered. Mirrors `parser_errors`' corruption sweeps: running each
/// case IS the assertion, plus a prefix-monotonicity check.
#[test]
fn truncation_sweep_never_panics_and_keeps_the_intact_prefix() {
    let bytes = journal_fixture("trunc");
    let path = temp_journal("trunc-case");
    std::fs::write(&path, &bytes).unwrap();
    let full = journal::load(&path);
    assert_eq!(full.done.len(), 2);
    assert_eq!(full.pending.len(), 2);
    let mut last_entries = 0usize;
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let rec = journal::load(&path);
        // A longer intact prefix can only recover more, never less —
        // and a torn tail (no trailing newline) is dropped silently.
        let entries = rec.done.len() + rec.pending.len();
        assert!(
            entries >= last_entries,
            "recovery went backwards at cut {cut}: {entries} < {last_entries}"
        );
        assert_eq!(rec.corrupt_lines, 0, "truncation is not corruption");
        if bytes[..cut].ends_with(b"\n") {
            last_entries = entries;
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Bit-flip sweep: flip one bit at a seeded sample of positions; load
/// must never panic, and at most the damaged lines may be lost.
#[test]
fn bit_flip_sweep_never_panics_and_loses_at_most_the_damaged_lines() {
    let bytes = journal_fixture("flip");
    let path = temp_journal("flip-case");
    std::fs::write(&path, &bytes).unwrap();
    let baseline = journal::load(&path);
    let base_entries = baseline.done.len() + baseline.pending.len();
    let mut rng = StdRng::seed_from_u64(0xF11B_F11B);
    for _ in 0..200 {
        let pos = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0u32..8);
        let mut mangled = bytes.clone();
        mangled[pos] ^= 1u8 << bit;
        std::fs::write(&path, &mangled).unwrap();
        let rec = journal::load(&path);
        let entries = rec.done.len() + rec.pending.len();
        // One flipped bit damages at most one line — or two, when it
        // lands on the `\n` separator and merges the neighbours — or the
        // header, which voids the whole file. Still never a panic.
        assert!(
            entries + 2 >= base_entries || (rec.done.is_empty() && rec.pending.is_empty()),
            "one bit flip at {pos} lost more than two lines: {entries} of {base_entries}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

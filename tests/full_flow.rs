//! Cross-crate integration tests: the complete pre-bond DFT story on a
//! benchmark die, exercising netlist generation, placement, STA, the WCM
//! flow, DFT insertion and ATPG together.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::TestAccess;
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig, Placement};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowResult, Method, Scenario};

fn b11_die(die: usize) -> (prebond3d::netlist::Netlist, Placement, Library) {
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[die]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    (netlist, placement, Library::nangate45_like())
}

fn run(die: usize, method: Method, scenario: Scenario) -> FlowResult {
    let (netlist, placement, lib) = b11_die(die);
    let config = FlowConfig {
        method,
        scenario,
        ordering: None,
        allow_overlap: None,
    };
    run_flow(&netlist, &placement, &lib, &config).expect("flow runs")
}

#[test]
fn every_tsv_is_wrapped_by_every_method() {
    let (netlist, _, _) = b11_die(0);
    for method in [Method::Ours, Method::Agrawal, Method::Li, Method::Naive] {
        let r = run(0, method, Scenario::Area);
        r.plan.validate(&netlist).expect("plan covers all TSVs");
    }
}

#[test]
fn ours_never_violates_tight_timing() {
    for die in 0..4 {
        let r = run(die, Method::Ours, Scenario::Tight);
        assert!(
            !r.timing_violation,
            "b11 die{die}: ours must meet the tight clock (wns {})",
            r.wns_after
        );
    }
}

#[test]
fn ours_saves_cells_vs_agrawal_in_area_mode() {
    let mut ours_total = 0usize;
    let mut agrawal_total = 0usize;
    for die in 0..4 {
        ours_total += run(die, Method::Ours, Scenario::Area).additional_wrapper_cells;
        agrawal_total += run(die, Method::Agrawal, Scenario::Area).additional_wrapper_cells;
    }
    assert!(
        ours_total <= agrawal_total,
        "ours {ours_total} vs agrawal {agrawal_total}"
    );
}

#[test]
fn method_hierarchy_holds() {
    // Naive ≥ Li ≥ clique methods on additional wrapper cells.
    let naive = run(1, Method::Naive, Scenario::Area).additional_wrapper_cells;
    let li = run(1, Method::Li, Scenario::Area).additional_wrapper_cells;
    let ours = run(1, Method::Ours, Scenario::Area).additional_wrapper_cells;
    let (netlist, _, _) = b11_die(1);
    assert_eq!(naive, netlist.stats().tsvs());
    assert!(li <= naive);
    assert!(ours <= li, "ours {ours} vs li {li}");
}

#[test]
fn wrapping_recovers_pre_bond_coverage() {
    let (netlist, _, _) = b11_die(2); // 76 TSVs, only 3 scan FFs
    let bare = run_stuck_at(
        &netlist,
        &TestAccess::full_scan(&netlist),
        &AtpgConfig::fast(),
    );
    let r = run(2, Method::Ours, Scenario::Area);
    let wrapped = run_stuck_at(
        &r.testable.netlist,
        &prebond_access(&r.testable),
        &AtpgConfig::fast(),
    );
    // Raw coverage (detected / all faults) is the honest metric here:
    // wrapping converts *proven-untestable* faults into testable ones, so
    // the test-coverage ratio (which excludes untestables) would hide the
    // repair.
    assert!(
        wrapped.coverage() > bare.coverage() + 0.05,
        "wrapping must repair coverage: {:.3} → {:.3}",
        bare.coverage(),
        wrapped.coverage()
    );
    assert!(wrapped.test_coverage() > 0.85);
}

#[test]
fn flow_is_deterministic() {
    let a = run(0, Method::Ours, Scenario::Tight);
    let b = run(0, Method::Ours, Scenario::Tight);
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.reused_scan_ffs, b.reused_scan_ffs);
    assert_eq!(a.wns_after, b.wns_after);
}

#[test]
fn reused_ffs_plus_cells_cover_costs() {
    // Conservation: every wrapper plan's assignment count equals reused +
    // additional (+ FF-only no-op assignments, which must not exist).
    let r = run(3, Method::Ours, Scenario::Area);
    let total: usize = r
        .plan
        .assignments
        .iter()
        .filter(|a| a.tsv_count() > 0)
        .count();
    assert_eq!(total, r.reused_scan_ffs + r.additional_wrapper_cells);
}

#[test]
fn dft_insertion_preserves_mission_behaviour() {
    // Co-simulate original vs wrapped die in mission mode with random
    // wrapper-cell states: the wrapper hardware must be transparent.
    for method in [Method::Ours, Method::Agrawal] {
        let (netlist, _, _) = b11_die(1);
        let r = run(1, method, Scenario::Area);
        prebond3d::dft::mission_equivalent(&netlist, &r.testable, 3, 17)
            .unwrap_or_else(|m| panic!("{method:?}: {m}"));
    }
}

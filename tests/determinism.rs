//! Serial-vs-parallel equivalence: every stage the pool touches must be
//! bit-identical for any thread count (DESIGN.md §8).
//!
//! Each test computes a result under `PREBOND3D_THREADS`-equivalent
//! overrides of 1 (the exact serial path), 2 and 8 via
//! `prebond3d_pool::with_threads`, then compares byte-for-byte — either
//! the raw values or their `Debug` renderings, which pin down ordering as
//! well as content. Thread count 8 deliberately oversubscribes small
//! work lists so chunk claiming is maximally racy; determinism must come
//! from the merge order, not from scheduling luck.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::faultsim::FaultSimulator;
use prebond3d::atpg::sim::Pattern;
use prebond3d::atpg::{FaultList, TestAccess};
use prebond3d::celllib::Library;
use prebond3d::netlist::{itc99, Netlist};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowResult, Method, Scenario};
use prebond3d_bench::{report, table2};
use prebond3d_pool::with_threads;
use prebond3d_resilience as resil;
use prebond3d_rng::StdRng;

/// The deterministic substrates the suite sweeps: a small and a medium
/// ITC'99-style die, generated from fixed published parameters.
fn substrates() -> Vec<(String, Netlist)> {
    let mut out = Vec::new();
    for (name, dies) in [("b11", 2), ("b12", 1)] {
        let spec = itc99::circuit(name).expect("known benchmark");
        for (i, die) in spec.dies.iter().enumerate().take(dies) {
            out.push((format!("{name} Die{i}"), itc99::generate_die(die)));
        }
    }
    out
}

/// Run `f` at thread counts 1, 2 and 8 and assert all results equal.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) {
    let serial = with_threads(1, &f);
    for threads in [2usize, 8] {
        let parallel = with_threads(threads, &f);
        assert_eq!(
            serial, parallel,
            "{what}: serial and {threads}-thread results diverge"
        );
    }
}

#[test]
fn fault_coverage_maps_are_identical_across_thread_counts() {
    for (label, netlist) in substrates() {
        let access = TestAccess::full_scan(&netlist);
        let faults = FaultList::collapsed(&netlist);
        let alive = vec![true; faults.len()];
        let mut rng = StdRng::seed_from_u64(0xD1CE_0001);
        let patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
            })
            .collect();
        assert_thread_invariant(&format!("{label} detection masks"), || {
            let mut fs = FaultSimulator::new(&netlist);
            fs.simulate_batch(&netlist, &access, &patterns, &faults.faults, &alive)
                .to_vec()
        });
    }
}

/// Sharing-graph edge sets, clique partitions and the final wrapper-cell
/// counts, all captured through the flow's own outputs: `PhaseStats`
/// carries the per-phase node/edge/overlap counts, `WrapPlan` the exact
/// reuse assignment the cliques produced, and the two counters the final
/// answer. `WrapPlan` is `Eq`, so a single adjacency-order difference in
/// the graph or a reordered merge in the partition shows up here.
#[test]
fn sharing_graphs_cliques_and_wrapper_counts_are_thread_invariant() {
    let lib = Library::nangate45_like();
    for (label, netlist) in substrates() {
        let placement = place(&netlist, &PlaceConfig::default(), 1);
        for scenario in [Scenario::Area, Scenario::Tight] {
            let fingerprint = |r: &FlowResult| {
                format!(
                    "{:?}\n{:?}\nreused={} additional={} wns={:?} violation={}",
                    r.phases,
                    r.plan,
                    r.reused_scan_ffs,
                    r.additional_wrapper_cells,
                    r.wns_after,
                    r.timing_violation,
                )
            };
            assert_thread_invariant(&format!("{label} flow ({scenario:?})"), || {
                let config = FlowConfig {
                    method: Method::Ours,
                    scenario,
                    ordering: None,
                    allow_overlap: Some(true),
                };
                let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
                fingerprint(&r)
            });
        }
    }
}

/// End-to-end: the testable netlist that comes out of the flow plus a
/// full deterministic ATPG run on it. This is the Fig. 6 pipeline exactly
/// as the bench drivers execute it.
#[test]
fn full_flow_and_atpg_results_are_thread_invariant() {
    let lib = Library::nangate45_like();
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[1]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    assert_thread_invariant("b11 Die1 flow + stuck-at ATPG", || {
        let r = run_flow(
            &netlist,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .expect("flow runs");
        let access = prebond3d::dft::prebond_access(&r.testable);
        let result = run_stuck_at(&r.testable.netlist, &access, &AtpgConfig::default());
        format!(
            "cells={} coverage={:.6} patterns={} wrapped_len={}",
            r.additional_wrapper_cells,
            result.test_coverage(),
            result.pattern_count(),
            r.testable.netlist.len(),
        )
    });
}

/// Crash-safe checkpoint/resume (DESIGN.md §10): a sweep that is killed
/// mid-run and resumed — even with a torn final checkpoint line and a
/// different thread count — must converge to final reports byte-identical
/// to an uninterrupted run. Wall-clock fields are zeroed via the
/// `PREBOND3D_STABLE_MS` switch so the comparison is exact.
#[test]
fn killed_and_resumed_sweep_produces_byte_identical_reports() {
    let base = std::env::temp_dir().join(format!("prebond3d-resume-{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("resumed");
    std::fs::create_dir_all(&dir_a).expect("temp dirs");
    std::fs::create_dir_all(&dir_b).expect("temp dirs");
    std::env::set_var("PREBOND3D_CIRCUITS", "b11");
    resil::force_stable_ms(Some(true));

    let read = |dir: &std::path::Path, name: &str| {
        std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("{}/{name}: {e}", dir.display()))
    };

    // Reference: one uninterrupted run, serial.
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir_a);
    with_threads(1, || {
        report::begin("table2");
        table2::run();
        report::finish_summary()
    });

    // Crash scenario: run the sweep to build the checkpoint, then abandon
    // the collector without `finish` (the process "died" before writing
    // reports) and tear the checkpoint's final line mid-entry, as a kill
    // during an append would.
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir_b);
    with_threads(2, || {
        report::begin("table2");
        table2::run();
    });
    let ckpt = dir_b.join("checkpoint_table2.json");
    let text = read(&dir_b, "checkpoint_table2.json");
    assert!(
        text.lines().count() > 2,
        "checkpoint should hold several completed units"
    );
    std::fs::write(&ckpt, &text[..text.len() - 7]).expect("tear checkpoint");

    // Resume at a different thread count; the torn unit re-runs, the rest
    // replay from the checkpoint.
    resil::force_resume(Some(true));
    let summary = with_threads(4, || {
        report::begin("table2");
        table2::run();
        report::finish_summary()
    });
    resil::force_resume(None);
    assert!(
        summary.resume_skipped > 0,
        "resume should replay finished units from the checkpoint"
    );
    assert_eq!(summary.failures, 0, "resumed sweep should be clean");

    for name in ["run_table2.json", "BENCH_table2.json"] {
        assert_eq!(
            read(&dir_a, name),
            read(&dir_b, name),
            "{name}: resumed run diverges from the uninterrupted run"
        );
    }
    assert!(
        !ckpt.exists(),
        "checkpoint should be removed after a clean finish"
    );

    resil::force_stable_ms(None);
    std::env::remove_var("PREBOND3D_REPORT_DIR");
    std::env::remove_var("PREBOND3D_CIRCUITS");
    let _ = std::fs::remove_dir_all(&base);
}

//! Serial-vs-parallel equivalence: every stage the pool touches must be
//! bit-identical for any thread count (DESIGN.md §8).
//!
//! Each test computes a result under `PREBOND3D_THREADS`-equivalent
//! overrides of 1 (the exact serial path), 2 and 8 via
//! `prebond3d_pool::with_threads`, then compares byte-for-byte — either
//! the raw values or their `Debug` renderings, which pin down ordering as
//! well as content. Thread count 8 deliberately oversubscribes small
//! work lists so chunk claiming is maximally racy; determinism must come
//! from the merge order, not from scheduling luck.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::faultsim::FaultSimulator;
use prebond3d::atpg::sim::Pattern;
use prebond3d::atpg::{FaultList, TestAccess};
use prebond3d::celllib::Library;
use prebond3d::netlist::{itc99, Netlist};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowResult, Method, Scenario};
use prebond3d_pool::with_threads;
use prebond3d_rng::StdRng;

/// The deterministic substrates the suite sweeps: a small and a medium
/// ITC'99-style die, generated from fixed published parameters.
fn substrates() -> Vec<(String, Netlist)> {
    let mut out = Vec::new();
    for (name, dies) in [("b11", 2), ("b12", 1)] {
        let spec = itc99::circuit(name).expect("known benchmark");
        for (i, die) in spec.dies.iter().enumerate().take(dies) {
            out.push((format!("{name} Die{i}"), itc99::generate_die(die)));
        }
    }
    out
}

/// Run `f` at thread counts 1, 2 and 8 and assert all results equal.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) {
    let serial = with_threads(1, &f);
    for threads in [2usize, 8] {
        let parallel = with_threads(threads, &f);
        assert_eq!(
            serial, parallel,
            "{what}: serial and {threads}-thread results diverge"
        );
    }
}

#[test]
fn fault_coverage_maps_are_identical_across_thread_counts() {
    for (label, netlist) in substrates() {
        let access = TestAccess::full_scan(&netlist);
        let faults = FaultList::collapsed(&netlist);
        let alive = vec![true; faults.len()];
        let mut rng = StdRng::seed_from_u64(0xD1CE_0001);
        let patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
            })
            .collect();
        assert_thread_invariant(&format!("{label} detection masks"), || {
            let mut fs = FaultSimulator::new(&netlist);
            fs.simulate_batch(&netlist, &access, &patterns, &faults.faults, &alive)
        });
    }
}

/// Sharing-graph edge sets, clique partitions and the final wrapper-cell
/// counts, all captured through the flow's own outputs: `PhaseStats`
/// carries the per-phase node/edge/overlap counts, `WrapPlan` the exact
/// reuse assignment the cliques produced, and the two counters the final
/// answer. `WrapPlan` is `Eq`, so a single adjacency-order difference in
/// the graph or a reordered merge in the partition shows up here.
#[test]
fn sharing_graphs_cliques_and_wrapper_counts_are_thread_invariant() {
    let lib = Library::nangate45_like();
    for (label, netlist) in substrates() {
        let placement = place(&netlist, &PlaceConfig::default(), 1);
        for scenario in [Scenario::Area, Scenario::Tight] {
            let fingerprint = |r: &FlowResult| {
                format!(
                    "{:?}\n{:?}\nreused={} additional={} wns={:?} violation={}",
                    r.phases,
                    r.plan,
                    r.reused_scan_ffs,
                    r.additional_wrapper_cells,
                    r.wns_after,
                    r.timing_violation,
                )
            };
            assert_thread_invariant(&format!("{label} flow ({scenario:?})"), || {
                let config = FlowConfig {
                    method: Method::Ours,
                    scenario,
                    ordering: None,
                    allow_overlap: Some(true),
                };
                let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
                fingerprint(&r)
            });
        }
    }
}

/// End-to-end: the testable netlist that comes out of the flow plus a
/// full deterministic ATPG run on it. This is the Fig. 6 pipeline exactly
/// as the bench drivers execute it.
#[test]
fn full_flow_and_atpg_results_are_thread_invariant() {
    let lib = Library::nangate45_like();
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[1]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    assert_thread_invariant("b11 Die1 flow + stuck-at ATPG", || {
        let r = run_flow(
            &netlist,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .expect("flow runs");
        let access = prebond3d::dft::prebond_access(&r.testable);
        let result = run_stuck_at(&r.testable.netlist, &access, &AtpgConfig::default());
        format!(
            "cells={} coverage={:.6} patterns={} wrapped_len={}",
            r.additional_wrapper_cells,
            result.test_coverage(),
            result.pattern_count(),
            r.testable.netlist.len(),
        )
    });
}

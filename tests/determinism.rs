//! Serial-vs-parallel equivalence: every stage the pool touches must be
//! bit-identical for any thread count (DESIGN.md §8).
//!
//! Each test computes a result under `PREBOND3D_THREADS`-equivalent
//! overrides of 1 (the exact serial path), 2 and 8 via
//! `prebond3d_pool::with_threads`, then compares byte-for-byte — either
//! the raw values or their `Debug` renderings, which pin down ordering as
//! well as content. Thread count 8 deliberately oversubscribes small
//! work lists so chunk claiming is maximally racy; determinism must come
//! from the merge order, not from scheduling luck.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::faultsim::FaultSimulator;
use prebond3d::atpg::sim::Pattern;
use prebond3d::atpg::{FaultList, TestAccess};
use prebond3d::celllib::Library;
use prebond3d::netlist::{itc99, Netlist};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowResult, Method, Scenario};
use prebond3d_bench::{report, table2};
use prebond3d_pool::with_threads;
use prebond3d_resilience as resil;
use prebond3d_rng::StdRng;

/// The deterministic substrates the suite sweeps: a small and a medium
/// ITC'99-style die, generated from fixed published parameters.
fn substrates() -> Vec<(String, Netlist)> {
    let mut out = Vec::new();
    for (name, dies) in [("b11", 2), ("b12", 1)] {
        let spec = itc99::circuit(name).expect("known benchmark");
        for (i, die) in spec.dies.iter().enumerate().take(dies) {
            out.push((format!("{name} Die{i}"), itc99::generate_die(die)));
        }
    }
    out
}

/// Run `f` at thread counts 1, 2 and 8 and assert all results equal.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> T) {
    let serial = with_threads(1, &f);
    for threads in [2usize, 8] {
        let parallel = with_threads(threads, &f);
        assert_eq!(
            serial, parallel,
            "{what}: serial and {threads}-thread results diverge"
        );
    }
}

#[test]
fn fault_coverage_maps_are_identical_across_thread_counts() {
    for (label, netlist) in substrates() {
        let access = TestAccess::full_scan(&netlist);
        let faults = FaultList::collapsed(&netlist);
        let alive = vec![true; faults.len()];
        let mut rng = StdRng::seed_from_u64(0xD1CE_0001);
        let patterns: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
            })
            .collect();
        assert_thread_invariant(&format!("{label} detection masks"), || {
            let mut fs = FaultSimulator::new(&netlist);
            fs.simulate_batch(&netlist, &access, &patterns, &faults.faults, &alive)
                .unwrap()
                .to_vec()
        });
    }
}

/// Sharing-graph edge sets, clique partitions and the final wrapper-cell
/// counts, all captured through the flow's own outputs: `PhaseStats`
/// carries the per-phase node/edge/overlap counts, `WrapPlan` the exact
/// reuse assignment the cliques produced, and the two counters the final
/// answer. `WrapPlan` is `Eq`, so a single adjacency-order difference in
/// the graph or a reordered merge in the partition shows up here.
#[test]
fn sharing_graphs_cliques_and_wrapper_counts_are_thread_invariant() {
    let lib = Library::nangate45_like();
    for (label, netlist) in substrates() {
        let placement = place(&netlist, &PlaceConfig::default(), 1);
        for scenario in [Scenario::Area, Scenario::Tight] {
            let fingerprint = |r: &FlowResult| {
                format!(
                    "{:?}\n{:?}\nreused={} additional={} wns={:?} violation={}",
                    r.phases,
                    r.plan,
                    r.reused_scan_ffs,
                    r.additional_wrapper_cells,
                    r.wns_after,
                    r.timing_violation,
                )
            };
            assert_thread_invariant(&format!("{label} flow ({scenario:?})"), || {
                let config = FlowConfig {
                    method: Method::Ours,
                    scenario,
                    ordering: None,
                    allow_overlap: Some(true),
                };
                let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
                fingerprint(&r)
            });
        }
    }
}

/// End-to-end: the testable netlist that comes out of the flow plus a
/// full deterministic ATPG run on it. This is the Fig. 6 pipeline exactly
/// as the bench drivers execute it.
#[test]
fn full_flow_and_atpg_results_are_thread_invariant() {
    let lib = Library::nangate45_like();
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[1]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    assert_thread_invariant("b11 Die1 flow + stuck-at ATPG", || {
        let r = run_flow(
            &netlist,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .expect("flow runs");
        let access = prebond3d::dft::prebond_access(&r.testable);
        let result = run_stuck_at(&r.testable.netlist, &access, &AtpgConfig::default());
        format!(
            "cells={} coverage={:.6} patterns={} wrapped_len={}",
            r.additional_wrapper_cells,
            result.test_coverage(),
            result.pattern_count(),
            r.testable.netlist.len(),
        )
    });
}

/// Wide-lane SIMD fault simulation (DESIGN.md §16): the full lane-width ×
/// thread-count matrix must produce byte-identical detection masks,
/// wrapper counts and fault coverage. Widths 1/4/8 change how many
/// 64-pattern blocks share one cone walk; threads change how fault chunks
/// are claimed; neither may leak into any result bit. The reference cell
/// of the matrix is (width 1, serial) — the straight-line oracle.
#[test]
fn lane_width_and_thread_matrix_is_byte_identical() {
    use prebond3d::netlist::tuning;
    let lib = Library::nangate45_like();
    let spec = itc99::circuit("b12").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[0]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let access = TestAccess::full_scan(&netlist);
    let faults = FaultList::collapsed(&netlist);
    let alive = vec![true; faults.len()];
    let mut rng = StdRng::seed_from_u64(0x1A5E_D1CE);
    // 320 patterns = 5 blocks: a width-8 dispatch with a ragged tail.
    let patterns: Vec<Pattern> = (0..320)
        .map(|_| Pattern {
            bits: (0..access.width()).map(|_| rng.gen_bool(0.5)).collect(),
        })
        .collect();
    let blocks = patterns.len().div_ceil(64);

    let fingerprint = || {
        // Wide masks, normalized block-major so the rendering is
        // width-independent.
        let mut fs = FaultSimulator::new(&netlist);
        let (w, masks) = fs
            .simulate_batch_wide(&netlist, &access, &patterns, &faults.faults, &alive)
            .expect("batch within lane capacity");
        let normalized: Vec<u64> = (0..blocks)
            .flat_map(|b| (0..faults.len()).map(move |f| (f, b)))
            .map(|(f, b)| masks[f * w + b])
            .collect();
        // Flow wrapper counts + full ATPG on the wrapped die: the engine's
        // random phase, compaction and coverage accounting all read the
        // lane knob internally.
        let config = FlowConfig {
            method: Method::Ours,
            scenario: Scenario::Tight,
            ordering: None,
            allow_overlap: Some(true),
        };
        let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
        let atpg = run_stuck_at(
            &r.testable.netlist,
            &prebond3d::dft::prebond_access(&r.testable),
            &AtpgConfig::fast(),
        );
        format!(
            "masks={normalized:?} reused={} additional={} coverage={:.9} patterns={}",
            r.reused_scan_ffs,
            r.additional_wrapper_cells,
            atpg.test_coverage(),
            atpg.pattern_count(),
        )
    };

    tuning::force_lanes(Some(1));
    let reference = with_threads(1, &fingerprint);
    tuning::force_lanes(None);
    for width in [1usize, 4, 8] {
        for threads in [1usize, 4, 8] {
            tuning::force_lanes(Some(width));
            let got = with_threads(threads, &fingerprint);
            tuning::force_lanes(None);
            assert_eq!(
                reference, got,
                "b12 Die0: lanes={width} threads={threads} diverges from the \
                 single-lane serial oracle"
            );
        }
    }
}

/// Incremental frontier STA (DESIGN.md §16): a seeded what-if sweep over
/// single-net extra loads must match the from-scratch oracle *exactly* —
/// every arrival, required, load, WNS and TNS `f64` compares equal — while
/// retiming strictly fewer nodes than the full recompute visits.
#[test]
fn incremental_sta_what_if_sweep_equals_full_recompute_exactly() {
    use prebond3d::celllib::{Capacitance, Time};
    use prebond3d::netlist::GateId;
    use prebond3d::sta::{analyze_with_extra_loads, StaAnalysis, StaConfig};
    let lib = Library::nangate45_like();
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[0]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let config = StaConfig::with_period(Time(760.0));
    let mut inc = StaAnalysis::new(&netlist, &placement, &lib, &config, &[]);
    let mut rng = StdRng::seed_from_u64(0x57A7_D1CE);
    for round in 0..10 {
        let target = GateId(rng.gen_range(0..netlist.len() as u32));
        let c = Capacitance(rng.gen_range(1u32..60) as f64 / 8.0);
        inc.set_extra_load(target, c);
        let oracle =
            analyze_with_extra_loads(&netlist, &placement, &lib, &config, &[], &[(target, c)]);
        assert_eq!(
            inc.report(),
            oracle,
            "round {round}: incremental what-if diverged from the oracle \
             (extra {c} on {target:?})"
        );
        assert!(
            inc.last_retimes() < netlist.len() as u64,
            "round {round}: retimed {} of {} nodes — frontier is not partial",
            inc.last_retimes(),
            netlist.len()
        );
        inc.set_extra_load(target, Capacitance::ZERO);
    }
    // After the sweep every extra is cleared: the live state must equal
    // the plain analysis again.
    assert_eq!(
        inc.report(),
        prebond3d::sta::analyze(&netlist, &placement, &lib, &config)
    );
}

/// Crash-safe checkpoint/resume (DESIGN.md §10): a sweep that is killed
/// mid-run and resumed — even with a torn final checkpoint line and a
/// different thread count — must converge to final reports byte-identical
/// to an uninterrupted run. Wall-clock fields are zeroed via the
/// `PREBOND3D_STABLE_MS` switch so the comparison is exact.
#[test]
fn killed_and_resumed_sweep_produces_byte_identical_reports() {
    let base = std::env::temp_dir().join(format!("prebond3d-resume-{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("resumed");
    std::fs::create_dir_all(&dir_a).expect("temp dirs");
    std::fs::create_dir_all(&dir_b).expect("temp dirs");
    std::env::set_var("PREBOND3D_CIRCUITS", "b11");
    resil::force_stable_ms(Some(true));

    let read = |dir: &std::path::Path, name: &str| {
        std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("{}/{name}: {e}", dir.display()))
    };

    // Reference: one uninterrupted run, serial.
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir_a);
    with_threads(1, || {
        report::begin("table2");
        table2::run();
        report::finish_summary()
    });

    // Crash scenario: run the sweep to build the checkpoint, then abandon
    // the collector without `finish` (the process "died" before writing
    // reports) and tear the checkpoint's final line mid-entry, as a kill
    // during an append would.
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir_b);
    with_threads(2, || {
        report::begin("table2");
        table2::run();
    });
    let ckpt = dir_b.join("checkpoint_table2.json");
    let text = read(&dir_b, "checkpoint_table2.json");
    assert!(
        text.lines().count() > 2,
        "checkpoint should hold several completed units"
    );
    std::fs::write(&ckpt, &text[..text.len() - 7]).expect("tear checkpoint");

    // Resume at a different thread count; the torn unit re-runs, the rest
    // replay from the checkpoint.
    resil::force_resume(Some(true));
    let summary = with_threads(4, || {
        report::begin("table2");
        table2::run();
        report::finish_summary()
    });
    resil::force_resume(None);
    assert!(
        summary.resume_skipped > 0,
        "resume should replay finished units from the checkpoint"
    );
    assert_eq!(summary.failures, 0, "resumed sweep should be clean");

    for name in ["run_table2.json", "BENCH_table2.json"] {
        assert_eq!(
            read(&dir_a, name),
            read(&dir_b, name),
            "{name}: resumed run diverges from the uninterrupted run"
        );
    }
    assert!(
        !ckpt.exists(),
        "checkpoint should be removed after a clean finish"
    );

    resil::force_stable_ms(None);
    std::env::remove_var("PREBOND3D_REPORT_DIR");
    std::env::remove_var("PREBOND3D_CIRCUITS");
    let _ = std::fs::remove_dir_all(&base);
}

//! Protocol robustness: malformed frames, oversized lines, half-written
//! requests and mid-job disconnects must never take the daemon down —
//! every abuse gets a well-formed `error` frame (or is absorbed), and
//! the connection/daemon keeps serving afterwards.

// Shared across the serve suites; each binary uses a different subset.
#[allow(dead_code)]
#[path = "serve_util/mod.rs"]
mod serve_util;

use prebond3d_obs::json::Value;
use prebond3d_rng::StdRng;
use serve_util::{field, job_stat, start_server, stop, Client};

fn assert_error_frame(frame: &Value) {
    assert_eq!(
        frame.get("ok").and_then(Value::as_bool),
        Some(false),
        "{frame}"
    );
    assert_eq!(field(frame, "ev"), "error");
    assert!(
        !field(frame, "error").is_empty(),
        "error frames must say what went wrong: {frame}"
    );
}

#[test]
fn malformed_frames_get_errors_and_the_connection_survives() {
    let (server, addr) = start_server(1);
    let mut client = Client::connect(&addr);
    let abuses = [
        "{",                                                    // truncated JSON
        r#"{"no":"op"}"#,                                       // op missing
        r#"{"op":"dance"}"#,                                    // unknown op
        r#"{"op":"submit"}"#,                                   // no netlist source
        r#"{"op":"submit","circuit":"b11","method":"x"}"#,      // unknown method
        r#"{"op":"submit","circuit":"b11","probe":"psychic"}"#, // unknown probe
        "[1,2,3]",                                              // wrong top-level shape
    ];
    for abuse in abuses {
        let frame = client.request(abuse);
        assert_error_frame(&frame);
    }
    // The same connection still serves.
    assert_eq!(field(&client.request(r#"{"op":"ping"}"#), "ev"), "pong");
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(job_stat(&stats, "protocol_errors"), abuses.len() as u64);
    stop(server);
}

#[test]
fn seeded_garbage_sweep_never_kills_the_daemon() {
    let (server, addr) = start_server(1);
    let mut client = Client::connect(&addr);
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    for _ in 0..200 {
        let len = rng.gen_range(1..80usize);
        let line: String = (0..len)
            .map(|_| {
                // Printable ASCII minus newline: stays one frame.
                char::from(rng.gen_range(0x20u32..0x7f) as u8)
            })
            .collect();
        let frame = client.request(&line);
        // Whatever the bytes happened to parse as, the daemon answered
        // with a frame; random garbage is overwhelmingly an error.
        assert!(frame.get("ev").is_some(), "untagged frame: {frame}");
    }
    assert_eq!(field(&client.request(r#"{"op":"ping"}"#), "ev"), "pong");
    stop(server);
}

#[test]
fn oversized_lines_are_rejected_without_desyncing_the_stream() {
    let (server, addr) = start_server(1);
    let mut client = Client::connect(&addr);
    // ~1.2 MiB of junk on one line, over the 1 MiB bound.
    let huge = "x".repeat(1_200_000);
    client.send_line(&huge);
    let frame = client.read_frame();
    assert_error_frame(&frame);
    assert!(
        field(&frame, "error").contains("exceeds"),
        "error should name the bound: {frame}"
    );
    // The stream is still framed: the next request parses normally.
    assert_eq!(field(&client.request(r#"{"op":"ping"}"#), "ev"), "pong");
    stop(server);
}

#[test]
fn interleaved_half_requests_from_two_clients_stay_isolated() {
    let (server, addr) = start_server(2);
    let mut half = Client::connect(&addr);
    let mut whole = Client::connect(&addr);

    // Client A writes half a frame and stalls...
    half.send_raw(br#"{"op":"pi"#);
    // ...client B is completely unaffected...
    assert_eq!(field(&whole.request(r#"{"op":"ping"}"#), "ev"), "pong");
    assert_eq!(field(&whole.request(r#"{"op":"stats"}"#), "ev"), "stats");
    // ...and client A's completed line still parses as one frame.
    half.send_raw(b"ng\"}\n");
    assert_eq!(field(&half.read_frame(), "ev"), "pong");
    stop(server);
}

#[test]
fn mid_job_disconnect_drops_frames_but_the_job_completes() {
    let (server, addr) = start_server(1);
    let job = r#"{"op":"submit","id":"orphan","circuit":"b11","die":0,"method":"ours","probe":"structural"}"#;
    {
        let mut doomed = Client::connect(&addr);
        doomed.send_line(job);
        let first = doomed.read_frame();
        assert_eq!(field(&first, "ev"), "accepted");
        // Drop the connection with the job still running.
    }
    // The daemon finishes the orphaned job (frames are discarded) and
    // keeps serving: wait for the accounting to converge.
    let mut client = Client::connect(&addr);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let stats = client.request(r#"{"op":"stats"}"#);
        let done = job_stat(&stats, "done") + job_stat(&stats, "failed");
        if done == job_stat(&stats, "submitted") && job_stat(&stats, "submitted") >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned job never accounted: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // A fresh job on a fresh connection runs to completion — and hits
    // the substrate the orphaned job warmed.
    let done = client.submit(job);
    assert_eq!(done.get("code").and_then(Value::as_u64), Some(0), "{done}");
    assert_eq!(field(&done, "cache"), "hit");
    stop(server);
}

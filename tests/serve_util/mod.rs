//! Shared client helper for the serving test suites: a minimal
//! newline-delimited JSON client over TCP, plus an in-process daemon
//! starter. Kept deliberately independent of `prebond3d_serve`'s own
//! framing code so the tests exercise the wire format, not the crate's
//! internal helpers.

// Each test binary compiles this module independently and uses a
// different subset of the helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use prebond3d_obs::json::Value;
use prebond3d_serve::{Bind, Server, ServerConfig};

/// Start an in-process daemon on an ephemeral port.
pub fn start_server(workers: usize) -> (Server, String) {
    start_with(ServerConfig {
        workers,
        ..test_config()
    })
}

/// Baseline test config: ephemeral TCP port, default cache budget.
pub fn test_config() -> ServerConfig {
    ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        cache_bytes: prebond3d_serve::cache::DEFAULT_BUDGET_BYTES,
        ..ServerConfig::default()
    }
}

/// Start an in-process daemon from an explicit config.
pub fn start_with(config: ServerConfig) -> (Server, String) {
    let server = Server::start(config).expect("bind ephemeral daemon");
    let addr = server.addr().expect("tcp addr").to_string();
    (server, addr)
}

/// One protocol connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    /// Send raw bytes without a trailing newline (half-frame tests).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    /// Send one line (newline appended).
    pub fn send_line(&mut self, line: &str) {
        self.send_raw(line.as_bytes());
        self.send_raw(b"\n");
    }

    /// Read one response frame.
    pub fn read_frame(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "daemon closed the connection");
        prebond3d_obs::json::parse(line.trim())
            .unwrap_or_else(|e| panic!("unparsable frame `{}`: {e}", line.trim()))
    }

    /// One request, one response.
    pub fn request(&mut self, line: &str) -> Value {
        self.send_line(line);
        self.read_frame()
    }

    /// Submit a job and consume frames through `done`; returns the
    /// terminal `done` frame.
    pub fn submit(&mut self, line: &str) -> Value {
        self.send_line(line);
        let first = self.read_frame();
        assert_eq!(
            first.get("ev").and_then(Value::as_str),
            Some("accepted"),
            "expected accepted, got {first}"
        );
        loop {
            let frame = self.read_frame();
            match frame.get("ev").and_then(Value::as_str) {
                Some("phase") => continue,
                Some("done") => return frame,
                other => panic!("unexpected frame kind {other:?}: {frame}"),
            }
        }
    }
}

/// String field of a frame.
pub fn field<'f>(frame: &'f Value, key: &str) -> &'f str {
    frame
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("frame lacks string `{key}`: {frame}"))
}

/// `jobs` sub-block counter of a `stats` frame.
pub fn job_stat(stats: &Value, key: &str) -> u64 {
    stats
        .get("jobs")
        .and_then(|j| j.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats lacks jobs.{key}: {stats}"))
}

/// Cleanly stop a server.
pub fn stop(server: Server) {
    server.shutdown();
    server.join();
}

//! Integration test for the observability layer: running the full Fig. 6
//! flow under `obs::record()` must produce the expected phase-span tree
//! and the headline counters every run report is built from.

use prebond3d::celllib::Library;
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method, Scenario};
use prebond3d_obs as obs;

// The obs registry and recording flag are process-global: serialize the
// tests in this binary so one test's probes never leak into the other's
// snapshot.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn run_flow_emits_the_expected_phase_spans() {
    let _l = LOCK.lock().unwrap();
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[0]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let lib = Library::nangate45_like();
    let config = FlowConfig {
        method: Method::Ours,
        scenario: Scenario::Tight,
        ordering: None,
        allow_overlap: None,
    };

    let _rec = obs::record();
    obs::reset();
    let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
    let snap = obs::snapshot();
    obs::reset();
    drop(_rec);

    // Phase spans of the paper's Fig. 6 flow, in hierarchical form.
    for path in [
        "flow",
        "flow/baseline_dft",
        "flow/baseline_sta",
        "flow/timing_model",
        "flow/plan",
        "flow/plan/graph_build",
        "flow/plan/clique_partition",
        "flow/dft_insert",
        "flow/post_sta",
    ] {
        let s = snap
            .span(path)
            .unwrap_or_else(|| panic!("missing phase span {path}"));
        assert!(s.count >= 1, "{path} must complete at least once");
    }
    // The tight scenario calibrates the threshold before planning.
    assert!(snap.span("flow/calibrate").is_some());
    // The root span is recorded exactly once per flow invocation.
    assert_eq!(snap.span("flow").unwrap().count, 1);

    // Headline counters line up with the flow's own result struct.
    assert_eq!(
        snap.gauge("flow.reused_scan_ffs"),
        Some(r.reused_scan_ffs as u64)
    );
    assert_eq!(
        snap.gauge("flow.additional_wrapper_cells"),
        Some(r.additional_wrapper_cells as u64)
    );
    assert!(snap.counter("graph.nodes") > 0);
    assert!(snap.counter("sta.runs") >= 2, "baseline + post STA");
    assert!(snap.counter("dft.wrapper_cells") > 0);
}

#[test]
fn probes_stay_silent_without_recording_or_sink() {
    let _l = LOCK.lock().unwrap();
    obs::configure(obs::SinkConfig::Off);
    // `PREBOND3D_OBS` may have installed a sink in this process; only
    // assert when the probes are genuinely inactive.
    if obs::is_active() {
        return;
    }
    let spec = itc99::circuit("b11").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[0]);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let lib = Library::nangate45_like();
    let config = FlowConfig {
        method: Method::Ours,
        scenario: Scenario::Area,
        ordering: None,
        allow_overlap: None,
    };
    run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
    if !obs::is_active() {
        assert!(
            obs::snapshot().is_empty(),
            "inactive probes must not aggregate"
        );
    }
}

//! Reference-vs-optimized equivalence sweep (DESIGN.md §11).
//!
//! The hot-path caches — cone word-span fast paths, memoized ATPG
//! probing, incremental clique scoring — are performance devices, not
//! algorithm changes: with caches enabled the flow must produce the same
//! sharing graphs, the same clique partitions and the same final fault
//! coverage as the straight-line reference code that
//! `PREBOND3D_NO_CACHE=1` selects. This sweep runs seeded random
//! netlists through the full Fig. 6 flow in both modes and compares the
//! outputs byte-for-byte (via `Debug` fingerprints, which pin ordering
//! as well as content).
//!
//! One `#[test]` function only: the no-cache override
//! (`tuning::force_no_cache`) is process-global, so the whole sweep runs
//! sequentially in a single body and restores the override at the end.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::celllib::Library;
use prebond3d::netlist::{itc99, tuning};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, FlowResult, Method, Scenario};
use prebond3d_rng::StdRng;

/// Seeded random die specs: small enough that the sweep's 2×(flow+ATPG)
/// per case stays fast, varied enough to hit empty graphs, dense overlap
/// regions and multi-clique partitions.
fn random_specs() -> Vec<itc99::DieSpec> {
    let mut rng = StdRng::seed_from_u64(0xCAC4_E001);
    (0..4u64)
        .map(|case| itc99::DieSpec {
            name: format!("cache_eq_die{case}"),
            scan_flip_flops: rng.gen_range(6usize..28),
            gates: rng.gen_range(80usize..320),
            inbound_tsvs: rng.gen_range(3usize..12),
            outbound_tsvs: rng.gen_range(3usize..12),
            primary_inputs: 4,
            primary_outputs: 4,
            seed: rng.gen_range(0u64..10_000),
        })
        .collect()
}

/// Everything the caches could corrupt, rendered to one string: per-phase
/// graph statistics (nodes, edges, overlaps), the exact wrapper plan the
/// cliques produced, the reuse counters, and the stuck-at coverage of the
/// wrapped die.
fn fingerprint(r: &FlowResult) -> String {
    let access = prebond3d::dft::prebond_access(&r.testable);
    let atpg = run_stuck_at(&r.testable.netlist, &access, &AtpgConfig::fast());
    format!(
        "phases={:?}\nplan={:?}\nreused={} additional={} coverage={:.9} patterns={}",
        r.phases,
        r.plan,
        r.reused_scan_ffs,
        r.additional_wrapper_cells,
        atpg.test_coverage(),
        atpg.pattern_count(),
    )
}

#[test]
fn cached_and_reference_flows_are_byte_identical() {
    let lib = Library::nangate45_like();
    for (case, spec) in random_specs().iter().enumerate() {
        let netlist = itc99::generate_die(spec);
        let placement = place(&netlist, &PlaceConfig::default(), 1);
        for scenario in [Scenario::Area, Scenario::Tight] {
            let config = FlowConfig {
                method: Method::Ours,
                scenario,
                ordering: None,
                allow_overlap: Some(true),
            };
            let run = || {
                let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
                fingerprint(&r)
            };

            tuning::force_no_cache(Some(false));
            let cached = run();
            tuning::force_no_cache(Some(true));
            let reference = run();
            tuning::force_no_cache(None);

            assert_eq!(
                cached, reference,
                "case {case} ({scenario:?}): cached flow diverged from the \
                 PREBOND3D_NO_CACHE reference"
            );
        }
    }

    // The env-var spelling must select the same reference path as the
    // forced override (the override wins over the env, so clear it first).
    let spec = &random_specs()[0];
    let netlist = itc99::generate_die(spec);
    let placement = place(&netlist, &PlaceConfig::default(), 1);
    let config = FlowConfig {
        method: Method::Ours,
        scenario: Scenario::Area,
        ordering: None,
        allow_overlap: Some(true),
    };
    let run = || {
        let r = run_flow(&netlist, &placement, &lib, &config).expect("flow runs");
        fingerprint(&r)
    };
    tuning::force_no_cache(Some(true));
    let forced = run();
    tuning::force_no_cache(None);
    std::env::set_var("PREBOND3D_NO_CACHE", "1");
    let via_env = run();
    std::env::remove_var("PREBOND3D_NO_CACHE");
    assert_eq!(forced, via_env, "env-var and forced no-cache paths differ");

    // Wide-lane sweep (DESIGN.md §16): the lane width is a batching
    // device, never an algorithm change — at widths 1, 4 and 8 the flow +
    // ATPG fingerprint must equal the no-cache reference computed above
    // (`PREBOND3D_NO_CACHE=1` forces the single-lane oracle).
    let mut widths = Vec::new();
    for width in [1usize, 4, 8] {
        tuning::force_lanes(Some(width));
        widths.push((width, run()));
        tuning::force_lanes(None);
    }
    for (width, got) in &widths {
        assert_eq!(
            &forced, got,
            "lane width {width} diverged from the single-lane reference"
        );
    }

    // And the env-var spelling must select the same path as the override.
    std::env::set_var("PREBOND3D_LANES", "4");
    let via_lanes_env = run();
    std::env::remove_var("PREBOND3D_LANES");
    assert_eq!(
        widths[1].1, via_lanes_env,
        "PREBOND3D_LANES=4 and forced width-4 paths differ"
    );
}

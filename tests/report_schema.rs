//! Golden-file schema test for the two machine-readable reports:
//! `results/run_<exp>.json` (per-die sections with spans and counters)
//! and `results/BENCH_<exp>.json` (aggregated phases + speedup records).
//!
//! The test runs a tiny synthetic experiment through the real
//! begin/die_scope/record_speedup/finish pipeline, parses both files with
//! the in-tree JSON parser, reduces them to a type-schema (one sorted
//! `path: type` line per distinct field) and compares against the golden
//! files in `tests/golden/`. Downstream tooling parses these reports;
//! changing a field name or type must be a conscious, reviewed act.

use std::collections::BTreeSet;

use prebond3d_bench::report;
use prebond3d_obs as obs;
use prebond3d_obs::json::{parse, Value};
use prebond3d_resilience::{chaos, degrade};

/// Reduce a JSON value to sorted `path: type` lines. The `counters` and
/// `gauges` objects are keyed by dynamic metric names, so they collapse
/// to a single `map<number>` entry (asserting every value is numeric)
/// instead of enumerating whatever counters this run happened to touch.
fn schema_lines(path: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Num(_) => {
            out.insert(format!("{path}: number"));
        }
        Value::Str(_) => {
            out.insert(format!("{path}: string"));
        }
        Value::Arr(items) => {
            out.insert(format!("{path}: array"));
            for item in items {
                schema_lines(&format!("{path}[]"), item, out);
            }
        }
        Value::Obj(map) => {
            if path.ends_with(".counters") || path.ends_with(".gauges") {
                out.insert(format!("{path}: map<number>"));
                for (k, v) in map {
                    assert!(
                        matches!(v, Value::Num(_)),
                        "{path}.{k} must be numeric, got {v:?}"
                    );
                }
                return;
            }
            // Histogram maps are keyed by dynamic metric/phase names; they
            // collapse to one `map<hist>` entry, asserting every value is
            // a full histogram summary object.
            if path.ends_with(".hists") {
                out.insert(format!("{path}: map<hist>"));
                for (k, v) in map {
                    for field in ["count", "sum", "max", "p50", "p95", "p99"] {
                        assert!(
                            matches!(v.get(field), Some(Value::Num(_))),
                            "{path}.{k}.{field} must be a numeric hist field, got {v:?}"
                        );
                    }
                }
                return;
            }
            out.insert(format!("{path}: object"));
            for (k, v) in map {
                schema_lines(&format!("{path}.{k}"), v, out);
            }
        }
    }
}

fn schema_of(text: &str) -> String {
    let doc = parse(text).expect("report parses as JSON");
    let mut lines = BTreeSet::new();
    schema_lines("$", &doc, &mut lines);
    let mut s = lines.into_iter().collect::<Vec<_>>().join("\n");
    s.push('\n');
    s
}

/// Compare against a golden file — or, with `PREBOND3D_REGEN_GOLDEN`
/// set, rewrite the golden in place (`golden_file` is relative to
/// `tests/`) so intentional schema changes don't need hand-editing.
fn assert_matches_golden(actual: &str, golden: &str, which: &str, golden_file: &str) {
    if std::env::var_os("PREBOND3D_REGEN_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join(golden_file);
        std::fs::write(&path, actual).expect("rewrite golden schema");
        return;
    }
    assert!(
        actual == golden,
        "{which} schema drifted from tests/golden.\n--- expected ---\n{golden}\n--- actual ---\n{actual}\n\
         If the change is intentional, regenerate it: \
         PREBOND3D_REGEN_GOLDEN=1 cargo test --test report_schema"
    );
}

/// Single test function: `begin`/`finish` use process-global state and
/// `PREBOND3D_REPORT_DIR` is a process-global env var, so the whole
/// scenario runs in one sequential body.
#[test]
fn report_files_match_the_golden_schemas() {
    let dir = std::env::temp_dir().join(format!("prebond3d-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp report dir");
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir);

    // Arm chaos at rate 0 (armed but never fires) and stage one synthetic
    // event/degradation/failure so the goldens pin the element shapes of
    // the resilience arrays, not just their presence.
    chaos::install(Some((1, 0.0)));
    report::begin("schema_probe");
    chaos::note("io.write", chaos::ChaosKind::Io);
    degrade::record("podem", "abort_faults", "schema probe");
    report::record_failure("synthetic Die9", "schema probe failure");
    for die in 0..2 {
        report::die_scope(&format!("synthetic Die{die}"), || {
            let _flow = obs::span("flow");
            {
                let _inner = obs::span("graph_build");
                obs::count("graph.edges", 3 + die as u64);
                obs::hist("probe.latency_ns", 1500 + die as u64);
            }
            obs::gauge("flow.reused_scan_ffs", die as u64);
        });
    }
    // One panicking unit with telemetry already recorded: its partial
    // capture must land in `failures[].partial` with section shape.
    report::resilient_par_die_scopes(
        "schema_panic",
        &[0u32],
        |case| format!("synthetic Panic{case}"),
        |_| {
            {
                let _span = obs::span("doomed_phase");
                obs::count("graph.edges", 1);
            }
            panic!("schema probe partial failure");
        },
        |_: &u32| Value::Null,
        |_| Some(0u32),
    );
    report::record_speedup("fault_simulation", "synthetic Die1", 4, 10.0, 4.0);
    report::record_work("atpg.gate_evals", "synthetic Die1", 1000, 400);
    let run_path = report::finish().expect("reports written");
    chaos::install(None);
    let bench_path = run_path.with_file_name("BENCH_schema_probe.json");

    let run_schema = schema_of(&std::fs::read_to_string(&run_path).expect("run report"));
    let bench_schema = schema_of(&std::fs::read_to_string(&bench_path).expect("bench report"));

    assert_matches_golden(
        &run_schema,
        include_str!("golden/run_report.schema.txt"),
        "run_<exp>.json",
        "golden/run_report.schema.txt",
    );
    assert_matches_golden(
        &bench_schema,
        include_str!("golden/bench_report.schema.txt"),
        "BENCH_<exp>.json",
        "golden/bench_report.schema.txt",
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serving benchmark report (`results/BENCH_serve.json`, written by
/// `prebond3d-loadgen`) has its own shape — jobs/cache/latency blocks
/// instead of per-die sections. Its schema is pinned from the checked-in
/// CI baseline, so regenerating the baseline with a drifted loadgen
/// fails here before obs-diff ever sees it.
#[test]
fn serve_baseline_matches_the_golden_schema() {
    let schema = schema_of(include_str!("../results/BENCH_serve.json"));
    assert_matches_golden(
        &schema,
        include_str!("golden/serve_report.schema.txt"),
        "BENCH_serve.json",
        "golden/serve_report.schema.txt",
    );
}

//! Histogram determinism across thread counts: the same workload run at
//! `PREBOND3D_THREADS` ∈ {1, 4, 8} must aggregate to byte-identical
//! histogram JSON. Bucket merge is commutative and associative and the
//! recorded values are deterministic per item, so neither chunk
//! scheduling nor merge order may leak into the report surface.

use prebond3d_obs as obs;
use prebond3d_pool as pool;

/// One deterministic "latency" sample per item: spans several power-of-two
/// buckets so the quantiles are non-trivial.
fn sample(i: usize) -> u64 {
    ((i as u64 * 37 + 11) % 9000) + 1
}

fn run_workload() -> String {
    let _rec = obs::record();
    obs::reset();
    let n = 64;
    let results = pool::par_chunks(
        n,
        3,
        || 0u64,
        |_, range| {
            for i in range.clone() {
                obs::hist("work.latency_ns", sample(i));
                obs::count("work.items", 1);
            }
            range.len() as u64
        },
    );
    assert_eq!(results.iter().sum::<u64>(), n as u64);
    let snap = obs::snapshot();
    obs::reset();
    let h = snap.hist("work.latency_ns").expect("hist aggregated");
    assert_eq!(h.count(), n as u64);
    h.to_json().to_string()
}

#[test]
fn hist_aggregation_is_byte_identical_across_thread_counts() {
    let serial = pool::with_threads(1, run_workload);
    for threads in [4usize, 8] {
        let parallel = pool::with_threads(threads, run_workload);
        assert_eq!(
            serial, parallel,
            "hist JSON must not depend on thread count (threads={threads})"
        );
    }
    // Sanity: the summary carries real quantiles, not zeroes.
    assert!(serial.contains("\"count\": 64") || serial.contains("\"count\":64"));
}

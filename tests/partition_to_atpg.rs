//! Integration: flat netlist → partition → extract dies → wrap → ATPG.
//! The "whole paper in one test", on a generated SoC.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::partition::{fm, random, tsv, PartitionSpec};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};

#[test]
fn flat_to_tested_stack() {
    let flat = itc99::generate_flat("soc", 800, 60, 12, 12, 9);
    let spec = PartitionSpec::new(4);
    let assignment = fm::partition(&flat, &spec, 3);

    // FM must beat random on TSV count.
    let rnd = random::partition(&flat, &spec, 3);
    assert!(assignment.cut_size(&flat) < rnd.cut_size(&flat));

    let stack = tsv::extract_dies(&flat, &assignment).expect("extraction succeeds");
    assert_eq!(stack.dies.len(), 4);
    assert_eq!(stack.tsvs.len(), assignment.cut_size(&flat));

    let lib = Library::nangate45_like();
    for die in &stack.dies {
        let placement = place(die, &PlaceConfig::default(), 1);
        let r = run_flow(
            die,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .expect("flow runs on extracted dies");
        assert!(!r.timing_violation, "{}: wns {}", die.name(), r.wns_after);
        r.plan.validate(die).expect("all TSVs wrapped");

        let atpg = run_stuck_at(
            &r.testable.netlist,
            &prebond_access(&r.testable),
            &AtpgConfig::fast(),
        );
        assert!(
            atpg.test_coverage() > 0.80,
            "{}: wrapped coverage {:.3}",
            die.name(),
            atpg.test_coverage()
        );
    }
}

#[test]
fn stack_conserves_logic() {
    let flat = itc99::generate_flat("soc", 500, 40, 10, 10, 4);
    let spec = PartitionSpec::new(3);
    let assignment = fm::partition(&flat, &spec, 1);
    let stack = tsv::extract_dies(&flat, &assignment).expect("extraction succeeds");
    let gates: usize = stack
        .dies
        .iter()
        .map(|d| d.stats().combinational_gates)
        .sum();
    let ffs: usize = stack.dies.iter().map(|d| d.stats().sequential()).sum();
    assert_eq!(gates, flat.stats().combinational_gates);
    assert_eq!(ffs, flat.stats().sequential());
    // Inbound and outbound endpoint counts match per link.
    let inbound: usize = stack.dies.iter().map(|d| d.stats().inbound_tsvs).sum();
    let outbound: usize = stack.dies.iter().map(|d| d.stats().outbound_tsvs).sum();
    assert_eq!(inbound, stack.tsvs.len());
    assert_eq!(outbound, stack.tsvs.len());
}

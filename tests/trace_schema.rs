//! Golden-file schema test for the Chrome trace-event timeline
//! (`PREBOND3D_TRACE=<path>`): a traced parallel run must produce a
//! document Perfetto can load — `displayTimeUnit` + `traceEvents` with
//! complete (`X`), instant (`i`) and thread-name metadata (`M`) events —
//! with per-worker pool tracks and chaos firings as instants.

use std::collections::BTreeSet;

use prebond3d_obs as obs;
use prebond3d_obs::json::{parse, Value};
use prebond3d_pool as pool;
use prebond3d_resilience::chaos;

/// Reduce the trace document to sorted `path: type` lines. Event `args`
/// objects are keyed per event kind (`path`, `chunk`, `detail`,
/// `name`, ...), so they collapse to one `map<scalar>` entry.
fn schema_lines(path: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Num(_) => {
            out.insert(format!("{path}: number"));
        }
        Value::Str(_) => {
            out.insert(format!("{path}: string"));
        }
        Value::Arr(items) => {
            out.insert(format!("{path}: array"));
            for item in items {
                schema_lines(&format!("{path}[]"), item, out);
            }
        }
        Value::Obj(map) => {
            if path.ends_with(".args") {
                out.insert(format!("{path}: map<scalar>"));
                for (k, v) in map {
                    assert!(
                        matches!(v, Value::Num(_) | Value::Str(_)),
                        "{path}.{k} must be a scalar, got {v:?}"
                    );
                }
                return;
            }
            out.insert(format!("{path}: object"));
            for (k, v) in map {
                schema_lines(&format!("{path}.{k}"), v, out);
            }
        }
    }
}

#[test]
fn traced_parallel_run_matches_the_golden_schema() {
    let dir = std::env::temp_dir().join(format!("prebond3d-trace-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp trace dir");
    let trace_path = dir.join("trace.json");
    obs::trace::configure(Some(trace_path.clone()));

    // Chaos armed at rate 0: never fires spontaneously, but the staged
    // note still lands on the timeline as an instant event.
    chaos::install(Some((1, 0.0)));
    chaos::note("pool.worker", chaos::ChaosKind::Panic);
    {
        // A main-thread phase span becomes a complete event on track 1.
        let _flow = obs::span("flow");
        // Four pool workers each name their track and emit one complete
        // event per claimed chunk.
        let results = pool::with_threads(4, || {
            pool::par_chunks(8, 1, || 0u64, |_, range| range.start as u64)
        });
        assert_eq!(results.len(), 8);
    }
    chaos::install(None);
    obs::trace::flush();
    obs::trace::configure(None);

    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let doc = parse(&text).expect("trace parses as JSON");

    // Schema: every field the viewer relies on, pinned by the golden.
    let mut lines = BTreeSet::new();
    schema_lines("$", &doc, &mut lines);
    let mut actual = lines.into_iter().collect::<Vec<_>>().join("\n");
    actual.push('\n');
    let golden = include_str!("golden/trace_event.schema.txt");
    assert!(
        actual == golden,
        "trace-event schema drifted from tests/golden.\n--- expected ---\n{golden}\n--- actual ---\n{actual}\n\
         If the change is intentional, update the golden file."
    );

    // Structure: Perfetto-loadable document with the expected tracks.
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let ph = |e: &Value| e.get("ph").unwrap().as_str().unwrap().to_string();
    assert!(
        events
            .iter()
            .all(|e| matches!(ph(e).as_str(), "X" | "i" | "M")),
        "only complete/instant/metadata events are emitted"
    );

    // Every pool worker names its own track before claiming work, so a
    // 4-thread run shows at least 2 distinct worker tracks even when the
    // host has a single core.
    let worker_tracks: BTreeSet<u64> = events
        .iter()
        .filter(|e| ph(e) == "M")
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .is_some_and(|n| n.starts_with("pool worker"))
        })
        .map(|e| e.get("tid").unwrap().as_u64().unwrap())
        .collect();
    assert!(
        worker_tracks.len() >= 2,
        "expected >=2 named pool-worker tracks, got {worker_tracks:?}"
    );

    // Chunk executions are complete events on worker tracks; all 8 chunks
    // must appear exactly once.
    let chunks: Vec<u64> = events
        .iter()
        .filter(|e| ph(e) == "X" && e.get("cat").unwrap().as_str() == Some("pool"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("chunk")
                .unwrap()
                .as_u64()
                .unwrap()
        })
        .collect();
    let distinct: BTreeSet<u64> = chunks.iter().copied().collect();
    assert_eq!(distinct.len(), 8, "every chunk traced once: {chunks:?}");

    // The staged chaos note is an instant event with scope "t".
    let chaos_instant = events
        .iter()
        .find(|e| ph(e) == "i" && e.get("cat").unwrap().as_str() == Some("chaos"))
        .expect("chaos firing appears as an instant event");
    assert_eq!(chaos_instant.get("s").unwrap().as_str(), Some("t"));
    assert_eq!(
        chaos_instant.get("name").unwrap().as_str(),
        Some("pool.worker")
    );

    // The main-thread span is a complete event carrying its span path.
    let span_event = events
        .iter()
        .find(|e| ph(e) == "X" && e.get("cat").unwrap().as_str() == Some("span"))
        .expect("span complete event");
    assert_eq!(
        span_event
            .get("args")
            .unwrap()
            .get("path")
            .unwrap()
            .as_str(),
        Some("flow")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

//! Dataflow-pruning equivalence sweep (DESIGN.md §14).
//!
//! The static dataflow analysis is an admission/pruning device, not an
//! algorithm change: retiring provably-undetectable faults before
//! simulation must leave every ATPG artifact — pattern set, coverage,
//! untestable count — byte-identical to the `PREBOND3D_NO_CACHE`
//! reference that never prunes, and the analysis itself must be
//! byte-identical at every thread count (the worklist solver is
//! deterministic by construction; this sweep pins it).
//!
//! One `#[test]` function only: the no-cache override
//! (`tuning::force_no_cache`) is process-global, so the whole sweep runs
//! sequentially in a single body and restores the override at the end.

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::TestAccess;
use prebond3d::dataflow::boundary;
use prebond3d::dataflow::constprop::{Constants, SourceModel};
use prebond3d::dataflow::scoring::{AccessView, Scores};
use prebond3d::netlist::{itc99, tuning};
use prebond3d_pool as pool;
use prebond3d_rng::StdRng;

/// Seeded random die specs: varied TSV counts so some dies have large X
/// cones (lots to prune) and some almost none.
fn random_specs() -> Vec<itc99::DieSpec> {
    let mut rng = StdRng::seed_from_u64(0xDA7A_F10D);
    (0..4u64)
        .map(|case| itc99::DieSpec {
            name: format!("dataflow_eq_die{case}"),
            scan_flip_flops: rng.gen_range(6usize..24),
            gates: rng.gen_range(80usize..280),
            inbound_tsvs: rng.gen_range(2usize..14),
            outbound_tsvs: rng.gen_range(2usize..14),
            primary_inputs: 4,
            primary_outputs: 4,
            seed: rng.gen_range(0u64..10_000),
        })
        .collect()
}

/// Everything the dataflow engine computes, rendered to one string so
/// ordering is pinned as well as content.
fn analysis_fingerprint(netlist: &prebond3d::netlist::Netlist) -> String {
    let pre = Constants::compute(netlist, &SourceModel::pre_bond(netlist));
    let wrapped = Constants::compute(netlist, &SourceModel::assume_wrapped(netlist));
    let scores = Scores::compute(netlist, &AccessView::pre_bond(netlist));
    let issues = boundary::check(netlist);
    format!(
        "pre_consts={:?}\npre_x={:?}\nwrapped_consts={:?}\nrounds={}/{}\n\
         cc0={:?}\ncc1={:?}\nco={:?}\nissues={:?}",
        pre.derived_constants(netlist),
        pre.x_only_nets(netlist),
        wrapped.derived_constants(netlist),
        pre.rounds,
        wrapped.rounds,
        scores.cc0,
        scores.cc1,
        scores.co,
        issues,
    )
}

#[test]
fn pruned_atpg_and_dataflow_analysis_are_byte_identical() {
    for (case, spec) in random_specs().iter().enumerate() {
        let netlist = itc99::generate_die(spec);
        let access = TestAccess::full_scan(&netlist);

        // The analysis itself must not depend on the pool size.
        let base_analysis = pool::with_threads(1, || analysis_fingerprint(&netlist));
        for threads in [4usize, 8] {
            let at_n = pool::with_threads(threads, || analysis_fingerprint(&netlist));
            assert_eq!(
                base_analysis, at_n,
                "case {case}: dataflow analysis diverged at {threads} threads"
            );
        }

        // Pruned ATPG must match the never-pruning reference exactly, at
        // every thread count (`Debug` pins pattern order and coverage).
        tuning::force_no_cache(Some(true));
        let reference = run_stuck_at(&netlist, &access, &AtpgConfig::fast());
        tuning::force_no_cache(Some(false));
        for threads in [1usize, 4, 8] {
            let pruned = pool::with_threads(threads, || {
                run_stuck_at(&netlist, &access, &AtpgConfig::fast())
            });
            assert_eq!(
                format!("{reference:?}"),
                format!("{pruned:?}"),
                "case {case}: pruned ATPG diverged from the \
                 PREBOND3D_NO_CACHE reference at {threads} threads"
            );
        }
        tuning::force_no_cache(None);
    }
}

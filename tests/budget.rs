//! Phase-budget degradation end to end (DESIGN.md §10): with
//! `PREBOND3D_BUDGET_MS` armed at zero, every budgeted search — the
//! annealer, clique merging, the exact-clique branch-and-bound, the PODEM
//! random and deterministic phases, compaction — must cut itself off at
//! its first deadline poll, return its best-so-far (or abort-with-reason)
//! result, record a structured degradation that lands in the run report,
//! and still pass the lint gate through the budget allow-list.

use std::time::{Duration, Instant};

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{FlowConfig, Method};
use prebond3d_bench::{lintflow, report};
use prebond3d_obs::json::{parse, Value};
use prebond3d_resilience::budget;

#[test]
fn zero_budget_degrades_every_phase_and_still_lints_clean() {
    let dir = std::env::temp_dir().join(format!("prebond3d-budget-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp report dir");
    std::env::set_var("PREBOND3D_REPORT_DIR", &dir);
    budget::force_budget_ms(Some(Some(0)));
    let t = Instant::now();

    let spec = itc99::circuit("b12").expect("known benchmark");
    let netlist = itc99::generate_die(&spec.dies[0]);
    let lib = Library::nangate45_like();

    report::begin("budget_probe");
    let coverage = report::die_scope("b12 Die0", || {
        let placement = place(&netlist, &PlaceConfig::default(), 4);
        // The gate must hold under an armed budget: truncated searches may
        // leave negative post-insertion slack, which the budget allow-list
        // downgrades — a degraded run is a recorded compromise, not a bug.
        let r = lintflow::checked_run_flow(
            "b12 Die0",
            &netlist,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .expect("budgeted run must pass the lint gate via the allow-list");
        let access = prebond_access(&r.testable);
        let atpg = run_stuck_at(&r.testable.netlist, &access, &AtpgConfig::default());
        atpg.test_coverage()
    });
    let run_path = report::finish().expect("report written");
    budget::force_budget_ms(None);

    // Termination: every poll interval is a few hundred iterations, so a
    // zero budget means each phase does at most one interval of work. The
    // bound is generous for slow CI; the point is "bounded", not "fast".
    assert!(
        t.elapsed() < Duration::from_secs(120),
        "budgeted pipeline ran {:?}; a phase is ignoring its deadline",
        t.elapsed()
    );
    // ATPG aborted its faults instead of searching; coverage collapses.
    assert!(
        coverage < 1.0,
        "zero-budget ATPG reports full coverage — the deadline never cut in"
    );

    let text = std::fs::read_to_string(&run_path).expect("run report");
    let doc = parse(&text).expect("report parses");
    let degradations = doc
        .get("degradations")
        .and_then(Value::as_arr)
        .expect("degradations array");
    let actions: Vec<(&str, &str)> = degradations
        .iter()
        .filter_map(|d| Some((d.get("phase")?.as_str()?, d.get("action")?.as_str()?)))
        .collect();
    for expected in [
        ("anneal", "best_so_far"),
        ("atpg", "stop_random_phase"),
        ("atpg", "abort_faults"),
    ] {
        assert!(
            actions.contains(&expected),
            "missing degradation {expected:?} in run report; got {actions:?}"
        );
    }
    for d in degradations {
        let detail = d.get("detail").and_then(Value::as_str).unwrap_or("");
        assert!(
            !detail.is_empty(),
            "every degradation must say what was compromised: {d}"
        );
    }

    std::env::remove_var("PREBOND3D_REPORT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

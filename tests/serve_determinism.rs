//! Serving determinism: the deterministic `report` sub-object of a
//! `done` frame must be **byte-identical** wherever the same job runs —
//! cold (cache miss), warm (cache hit), with the cache bypassed
//! (`PREBOND3D_NO_CACHE=1` semantics), on a single-worker or a
//! four-worker daemon, and for inline netlists as much as generated
//! ones. Telemetry (`ms`, `counters`, the `cache` tag) legitimately
//! differs run to run; the report must not.

// Shared across the serve suites; each binary uses a different subset.
#[allow(dead_code)]
#[path = "serve_util/mod.rs"]
mod serve_util;

use std::sync::Mutex;

use prebond3d_netlist::{itc99, tuning};
use prebond3d_obs::json::Value;
use serve_util::{field, start_server, stop, Client};

/// `tuning::force_no_cache` is process-global; serialize the tests.
static LOCK: Mutex<()> = Mutex::new(());

const JOB: &str =
    r#"{"op":"submit","id":"det","circuit":"b11","die":0,"method":"ours","probe":"structural"}"#;

fn report_bytes(done: &Value) -> String {
    assert_eq!(done.get("code").and_then(Value::as_u64), Some(0), "{done}");
    done.get("report")
        .unwrap_or_else(|| panic!("done frame lacks report: {done}"))
        .to_string()
}

#[test]
fn cold_warm_and_bypassed_reports_are_byte_identical() {
    let _l = LOCK.lock().unwrap();
    let (server, addr) = start_server(1);
    let mut client = Client::connect(&addr);

    let cold = client.submit(JOB);
    assert_eq!(field(&cold, "cache"), "miss");
    let warm = client.submit(JOB);
    assert_eq!(field(&warm, "cache"), "hit");
    assert_eq!(
        report_bytes(&cold),
        report_bytes(&warm),
        "a warm hit must reproduce the cold report byte for byte"
    );

    // PREBOND3D_NO_CACHE semantics: the job bypasses the warm cache
    // entirely and still produces the same bytes.
    tuning::force_no_cache(Some(true));
    let bypass = client.submit(JOB);
    tuning::force_no_cache(None);
    assert_eq!(field(&bypass, "cache"), "bypass");
    assert_eq!(report_bytes(&cold), report_bytes(&bypass));

    stop(server);
}

#[test]
fn reports_are_identical_across_worker_counts() {
    let _l = LOCK.lock().unwrap();
    let mut reference: Option<String> = None;
    for workers in [1, 4] {
        let (server, addr) = start_server(workers);
        // Several concurrent clients replaying the same job: every done
        // frame must carry the same report regardless of which worker
        // ran it or what else was in flight.
        let reports: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr);
                        report_bytes(&client.submit(JOB))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        stop(server);
        for r in reports {
            match &reference {
                None => reference = Some(r),
                Some(reference) => {
                    assert_eq!(reference, &r, "report drifted at {workers} worker(s)");
                }
            }
        }
    }
}

#[test]
fn inline_netlists_key_by_content_and_reproduce() {
    let _l = LOCK.lock().unwrap();
    let spec = itc99::DieSpec {
        name: "inline_die".to_string(),
        scan_flip_flops: 6,
        gates: 80,
        inbound_tsvs: 3,
        outbound_tsvs: 3,
        primary_inputs: 2,
        primary_outputs: 2,
        seed: 11,
    };
    let text = prebond3d_netlist::format::write(&itc99::generate_die(&spec));
    let frame = Value::obj([
        ("op", "submit".into()),
        ("id", "inline".into()),
        ("netlist", text.as_str().into()),
        ("method", "ours".into()),
        ("probe", "structural".into()),
    ])
    .to_string();

    let (server, addr) = start_server(2);
    let mut client = Client::connect(&addr);
    let cold = client.submit(&frame);
    assert_eq!(field(&cold, "cache"), "miss");
    let warm = client.submit(&frame);
    assert_eq!(
        field(&warm, "cache"),
        "hit",
        "an identical inline netlist must hit its signature-keyed entry"
    );
    assert_eq!(report_bytes(&cold), report_bytes(&warm));
    stop(server);
}

//! # prebond3d
//!
//! Timing-aware wrapper-cell reduction for pre-bond testing of 3D-ICs —
//! a full reproduction of the SOCC 2019 paper by Ho, Chen, Wu and Hwang,
//! including every substrate it depends on.
//!
//! This meta-crate re-exports the workspace members:
//!
//! * [`netlist`] — gate-level IR + synthetic ITC'99 benchmark generation,
//! * [`celllib`] — a synthetic 45 nm standard-cell library,
//! * [`partition`] — 3D partitioning and TSV extraction,
//! * [`place`] — per-die placement (distances for the timing model),
//! * [`sta`] — static timing analysis (the PrimeTime substitute),
//! * [`atpg`] — test generation and fault simulation (the commercial-ATPG
//!   substitute),
//! * [`dataflow`] — fixpoint static analysis (ternary constant/X
//!   propagation, SCOAP testability, untestable-boundary checks),
//! * [`dft`] — scan insertion and wrapper-cell hardware,
//! * [`wcm`] — the paper's contribution: timing-aware wrapper-cell
//!   minimization via clique partitioning, plus all prior-art baselines.
//!
//! # Quickstart
//!
//! ```
//! use prebond3d::netlist::itc99;
//! use prebond3d::place::{place, PlaceConfig};
//! use prebond3d::celllib::Library;
//! use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};
//!
//! // One die of the b11 benchmark, per the paper's Table II.
//! let spec = itc99::circuit("b11").expect("known benchmark");
//! let die = itc99::generate_die(&spec.dies[0]);
//! let placement = place(&die, &PlaceConfig::default(), 1);
//! let library = Library::nangate45_like();
//!
//! // Run the paper's method in the area-optimized scenario.
//! let result = run_flow(&die, &placement, &library,
//!                       &FlowConfig::area_optimized(Method::Ours))
//!     .expect("flow succeeds");
//! println!("reused {} scan FFs, inserted {} wrapper cells",
//!          result.reused_scan_ffs, result.additional_wrapper_cells);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use prebond3d_atpg as atpg;
pub use prebond3d_celllib as celllib;
pub use prebond3d_dataflow as dataflow;
pub use prebond3d_dft as dft;
pub use prebond3d_netlist as netlist;
pub use prebond3d_partition as partition;
pub use prebond3d_place as place;
pub use prebond3d_sta as sta;
pub use prebond3d_wcm as wcm;

//! The full 3D flow, end to end: flat netlist → FM partitioning → per-die
//! placement → wrapper-cell minimization → pre-bond ATPG sign-off.
//!
//! This is the scenario the paper's introduction motivates: a designer has
//! a flat design, splits it across a 4-die stack, and must make every die
//! pre-bond testable at minimal area cost.
//!
//! ```text
//! cargo run --release --example prebond_flow
//! ```

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::TestAccess;
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::partition::{fm, tsv, PartitionSpec};
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A flat design (no TSVs yet): 2 000 gates, 160 registers.
    let flat = itc99::generate_flat("soc", 2000, 160, 24, 24, 42);
    println!("flat design: {}", flat.stats());

    // --- 3D partitioning (the 3D-Craft substitute) ----------------------
    let spec = PartitionSpec::new(4);
    let assignment = fm::partition(&flat, &spec, 7);
    println!(
        "FM partition: cut = {} TSVs (random would be ~{})",
        assignment.cut_size(&flat),
        prebond3d::partition::random::partition(&flat, &spec, 7).cut_size(&flat)
    );
    let stack = tsv::extract_dies(&flat, &assignment)?;

    // --- Per-die pre-bond DFT -------------------------------------------
    let library = Library::nangate45_like();
    let mut total_reused = 0usize;
    let mut total_added = 0usize;
    for die in &stack.dies {
        let placement = place(die, &PlaceConfig::default(), 1);

        // Before wrapping: floating TSVs depress coverage.
        let bare = run_stuck_at(die, &TestAccess::full_scan(die), &AtpgConfig::fast());

        // The paper's flow under tight timing.
        let result = run_flow(
            die,
            &placement,
            &library,
            &FlowConfig::performance_optimized(Method::Ours),
        )?;
        let access = prebond_access(&result.testable);
        let wrapped = run_stuck_at(&result.testable.netlist, &access, &AtpgConfig::fast());

        println!(
            "{:<10} {:>3} in / {:>3} out TSVs | coverage {:>6.2}% → {:>6.2}% | \
             reused {:>3} FFs, +{:>3} cells | timing {}",
            die.name(),
            die.stats().inbound_tsvs,
            die.stats().outbound_tsvs,
            100.0 * bare.test_coverage(),
            100.0 * wrapped.test_coverage(),
            result.reused_scan_ffs,
            result.additional_wrapper_cells,
            if result.timing_violation {
                "VIOLATED"
            } else {
                "met"
            },
        );
        total_reused += result.reused_scan_ffs;
        total_added += result.additional_wrapper_cells;
    }
    println!(
        "stack total: {} TSVs wrapped with {} added cells ({} scan FFs reused)",
        stack.tsvs.len(),
        total_added,
        total_reused
    );
    Ok(())
}

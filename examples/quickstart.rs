//! Quickstart: wrap one benchmark die with the paper's method and print
//! what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};
use prebond3d::wcm::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The workload: die 0 of ITC'99 b11, with the paper's published
    //    population counts (14 scan FFs, 120 gates, 30 TSVs).
    let spec = itc99::circuit("b11").expect("known benchmark");
    let die = itc99::generate_die(&spec.dies[0]);
    println!("die `{}`: {}", die.name(), die.stats());

    // 2. Physical design: placement gives the distances the timing model
    //    consumes.
    let placement = place(&die, &PlaceConfig::default(), 1);
    let library = Library::nangate45_like();

    // 3. The paper's flow (Fig. 6), area-optimized scenario.
    let result = run_flow(
        &die,
        &placement,
        &library,
        &FlowConfig::area_optimized(Method::Ours),
    )?;
    println!("{}", report::result_row(die.name(), &result));
    print!("{}", report::phase_summary(&result));

    // 4. Verify testability with the ATPG engine on the wrapped die.
    let access = prebond_access(&result.testable);
    let atpg = run_stuck_at(&result.testable.netlist, &access, &AtpgConfig::fast());
    println!(
        "stuck-at test coverage {:.2}% with {} patterns",
        100.0 * atpg.test_coverage(),
        atpg.pattern_count()
    );

    // 5. Compare against the naive bound: one dedicated cell per TSV.
    println!(
        "naive wrapping would need {} cells; the flow inserted {} (+{} reused FFs)",
        die.stats().tsvs(),
        result.additional_wrapper_cells,
        result.reused_scan_ffs,
    );
    Ok(())
}

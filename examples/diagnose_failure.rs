//! Yield-learning demo: a wrapped die comes back from the pre-bond tester
//! with failing patterns — locate the defect.
//!
//! We wrap a die with the paper's flow, build the production test set,
//! then play defective die: inject a random stuck-at fault, record which
//! patterns fail on the "tester" (the fault simulator), and ask the fault
//! dictionary who the culprit is.
//!
//! ```text
//! cargo run --release --example diagnose_failure
//! ```

use prebond3d::atpg::diagnosis::FaultDictionary;
use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::atpg::faultsim::FaultSimulator;
use prebond3d::atpg::FaultList;
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Wrap b11 die 1 with the paper's method.
    let spec = itc99::circuit("b11").expect("known benchmark");
    let die = itc99::generate_die(&spec.dies[1]);
    let placement = place(&die, &PlaceConfig::default(), 1);
    let library = Library::nangate45_like();
    let flow = run_flow(
        &die,
        &placement,
        &library,
        &FlowConfig::performance_optimized(Method::Ours),
    )?;
    let netlist = &flow.testable.netlist;
    let access = prebond_access(&flow.testable);

    // Production test set + fault dictionary.
    let atpg = run_stuck_at(netlist, &access, &AtpgConfig::thorough());
    println!(
        "test set: {} patterns, {:.2}% test coverage",
        atpg.pattern_count(),
        100.0 * atpg.test_coverage()
    );
    let universe = FaultList::collapsed(netlist);
    let dictionary = FaultDictionary::build(netlist, &access, &universe.faults, &atpg.patterns);
    println!(
        "dictionary: {} faults, diagnostic resolution {:.1}%",
        dictionary.len(),
        100.0 * dictionary.resolution()
    );

    // Play three defective dies.
    let mut fs = FaultSimulator::new(netlist);
    for (label, step) in [("die A", 101usize), ("die B", 463), ("die C", 977)] {
        let defect = universe.faults[step % universe.len()];
        // The tester observes this die's failing patterns.
        let mut observed = prebond3d::atpg::Signature::new(atpg.pattern_count());
        for (chunk_no, window) in atpg.patterns.chunks(64).enumerate() {
            let masks = fs
                .simulate_batch(netlist, &access, window, &[defect], &[true])
                .expect("diagnosis window holds at most 64 patterns");
            let mut m = masks[0];
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                observed.set(chunk_no * 64 + bit);
                m &= m - 1;
            }
        }
        if observed.fail_count() == 0 {
            println!(
                "{label}: defect {} escapes this test set",
                defect.describe(netlist)
            );
            continue;
        }
        let candidates = dictionary.diagnose(&observed, 3);
        println!(
            "{label}: {} failing patterns; injected {}",
            observed.fail_count(),
            defect.describe(netlist)
        );
        for (rank, (fault, dist)) in candidates.iter().enumerate() {
            let marker = if *fault == defect {
                "  ← injected"
            } else {
                ""
            };
            println!(
                "   #{} {} (distance {}){}",
                rank + 1,
                fault.describe(netlist),
                dist,
                marker
            );
        }
    }
    Ok(())
}

//! Sweep the paper's testability thresholds (`cov_th`, `p_th`) and watch
//! the area-vs-testability trade-off of overlapped-cone sharing: looser
//! thresholds admit more sharing edges (fewer wrapper cells) at a measured
//! fault-coverage cost.
//!
//! ```text
//! cargo run --release --example testability_tradeoff
//! ```

use prebond3d::atpg::engine::{run_stuck_at, AtpgConfig};
use prebond3d::celllib::Library;
use prebond3d::dft::prebond_access;
use prebond3d::dft::{testable, WrapAssignment, WrapPlan, WrapperSource};
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::sta::whatif::ReuseKind;
use prebond3d::sta::{analyze, StaConfig};
use prebond3d::wcm::{clique, graph, MergePolicy, StructuralProbe, Thresholds, TimingModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = itc99::circuit("b12").expect("known benchmark");
    let die = itc99::generate_die(&spec.dies[1]);
    let placement = place(&die, &PlaceConfig::default(), 1);
    let library = Library::nangate45_like();
    let report = analyze(&die, &placement, &library, &StaConfig::relaxed());
    let model = TimingModel::new(&die, &placement, &library, &report, &report, true);
    let probe = StructuralProbe::default();

    println!("die `{}`: {}", die.name(), die.stats());
    println!(
        "{:>8} {:>6} | {:>7} {:>13} | {:>8} {:>10} {:>9}",
        "cov_th", "p_th", "edges", "overlap edges", "+cells", "coverage", "patterns"
    );

    for (cov_th, p_th) in [
        (0.0, 0),    // overlap sharing off (Agrawal-style restriction)
        (0.001, 2),  // very strict
        (0.005, 10), // the paper's setting
        (0.02, 40),  // loose
        (0.10, 200), // anything goes
    ] {
        let mut th = Thresholds::area_optimized(&library);
        th.cov_th = cov_th;
        th.p_th = p_th;

        // Build the plan over both phases.
        let mut plan = WrapPlan::default();
        let mut available = die.flip_flops();
        let mut edges = 0usize;
        let mut overlap_edges = 0usize;
        for direction in [ReuseKind::Outbound, ReuseKind::Inbound] {
            let tsvs = match direction {
                ReuseKind::Inbound => die.inbound_tsvs(),
                ReuseKind::Outbound => die.outbound_tsvs(),
            };
            let g = graph::build(&model, &th, &probe, &available, &tsvs, direction);
            edges += g.edge_count;
            overlap_edges += g.overlap_edges;
            let partition = clique::partition(&g, &model, &th, MergePolicy::Accurate);
            for c in &partition.cliques {
                if c.tsv_count() == 0 {
                    continue;
                }
                let members: Vec<_> = c
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| Some(m) != c.ff)
                    .collect();
                let (inbound, outbound) = match direction {
                    ReuseKind::Inbound => (members, vec![]),
                    ReuseKind::Outbound => (vec![], members),
                };
                let source = match c.ff {
                    Some(ff) => {
                        available.retain(|&f| f != ff);
                        WrapperSource::ReusedScanFf(ff)
                    }
                    None => WrapperSource::Dedicated,
                };
                plan.assignments.push(WrapAssignment {
                    source,
                    inbound,
                    outbound,
                });
            }
            for &t in &g.ineligible_tsvs {
                let (inbound, outbound) = match direction {
                    ReuseKind::Inbound => (vec![t], vec![]),
                    ReuseKind::Outbound => (vec![], vec![t]),
                };
                plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound,
                    outbound,
                });
            }
        }

        // Measure the consequences with real ATPG.
        let wrapped = testable::apply(&die, &plan)?;
        let access = prebond_access(&wrapped);
        let atpg = run_stuck_at(&wrapped.netlist, &access, &AtpgConfig::fast());
        println!(
            "{:>7.3}% {:>6} | {:>7} {:>13} | {:>8} {:>9.2}% {:>9}",
            100.0 * cov_th,
            p_th,
            edges,
            overlap_edges,
            plan.additional_wrapper_cells(),
            100.0 * atpg.test_coverage(),
            atpg.pattern_count(),
        );
    }
    Ok(())
}

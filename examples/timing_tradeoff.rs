//! Sweep the sharing-distance threshold `d_th` and watch the paper's
//! area-vs-timing trade-off: short thresholds forgo reuse (more wrapper
//! cells, comfortable slack), long thresholds reuse aggressively until the
//! wire delay starts eating the margin.
//!
//! ```text
//! cargo run --release --example timing_tradeoff
//! ```

use prebond3d::celllib::{Distance, Library, Time};
use prebond3d::netlist::itc99;
use prebond3d::place::{place, PlaceConfig};
use prebond3d::sta::analysis::analyze_with_statics;
use prebond3d::sta::whatif::ReuseKind;
use prebond3d::sta::StaConfig;
use prebond3d::wcm::flow::calibrate_tight_period;
use prebond3d::wcm::flow::{run_flow, FlowConfig, Method};
use prebond3d::wcm::{clique, graph, MergePolicy, StructuralProbe, Thresholds, TimingModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = itc99::circuit("b12").expect("known benchmark");
    let die = itc99::generate_die(&spec.dies[2]);
    let placement = place(&die, &PlaceConfig::default(), 1);
    let library = Library::nangate45_like();

    let clock = calibrate_tight_period(&die, &placement, &library)?;
    println!(
        "die `{}` @ calibrated clock {} (die scale {})",
        die.name(),
        clock,
        placement.scale()
    );
    println!(
        "{:>10} {:>8} {:>8} {:>7} {:>12} {:>10}",
        "d_th (µm)", "edges", "reused", "+cells", "wns (ps)", "violation"
    );

    // The graph/partition machinery exposed directly: sweep d_th by hand.
    let sta = StaConfig::with_period(clock);
    let report = analyze_with_statics(&die, &placement, &library, &sta, &[]);
    for factor in [0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6] {
        let d_th = Distance(placement.scale().0 * factor);
        let mut th = Thresholds::performance_optimized(&library, d_th);
        th.s_th = Time(5.0);
        let model = TimingModel::new(&die, &placement, &library, &report, &report, true);
        let probe = StructuralProbe::default();
        let mut edges = 0usize;
        let mut reused = 0usize;
        let mut additional = 0usize;
        let mut available = die.flip_flops();
        for direction in [ReuseKind::Inbound, ReuseKind::Outbound] {
            let tsvs = match direction {
                ReuseKind::Inbound => die.inbound_tsvs(),
                ReuseKind::Outbound => die.outbound_tsvs(),
            };
            let g = graph::build(&model, &th, &probe, &available, &tsvs, direction);
            edges += g.edge_count;
            let p = clique::partition(&g, &model, &th, MergePolicy::Accurate);
            reused += p.reused();
            additional += p.additional() + g.ineligible_tsvs.len();
            for c in &p.cliques {
                if let (Some(ff), true) = (c.ff, c.tsv_count() > 0) {
                    available.retain(|&f| f != ff);
                }
            }
        }
        println!(
            "{:>10.1} {:>8} {:>8} {:>7} {:>12} {:>10}",
            d_th.0, edges, reused, additional, "-", "-"
        );
    }

    // And the packaged scenarios for reference.
    for (label, config) in [
        ("area", FlowConfig::area_optimized(Method::Ours)),
        ("tight", FlowConfig::performance_optimized(Method::Ours)),
        (
            "agrawal",
            FlowConfig::performance_optimized(Method::Agrawal),
        ),
    ] {
        let r = run_flow(&die, &placement, &library, &config)?;
        // Post-insertion STA at the scenario clock.
        let post = analyze_with_statics(
            &r.testable.netlist,
            &r.placement,
            &library,
            &StaConfig::with_period(r.clock_period),
            &[r.testable.test_en],
        );
        println!(
            "flow[{label:>7}]: reused {:>3}, +{:>3} cells, wns {}, violation {}",
            r.reused_scan_ffs, r.additional_wrapper_cells, post.wns, r.timing_violation
        );
    }
    Ok(())
}

//! The paper's tunable thresholds and the two evaluation scenarios.

use prebond3d_celllib::{Capacitance, Distance, Library, Time};

/// Algorithm 1 / Algorithm 2 thresholds.
///
/// * `cap_th` — maximum load a shared wrapper cell may drive (node
///   eligibility for inbound TSVs and Algorithm 2's merge check);
/// * `s_th` — minimum slack an outbound TSV must have to be a node, and
///   the slack floor any reuse must preserve;
/// * `d_th` — maximum Manhattan distance between two nodes for an edge
///   (prevents long reuse wires and routing congestion);
/// * `cov_th` — tolerated fault-coverage loss for overlapped-cone sharing
///   (the paper uses 0.5 %);
/// * `p_th` — tolerated test-pattern-count increase (the paper uses 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Max wrapper-cell load.
    pub cap_th: Capacitance,
    /// Min acceptable slack.
    pub s_th: Time,
    /// Max sharing distance.
    pub d_th: Distance,
    /// Max coverage loss fraction (0.005 = 0.5 %).
    pub cov_th: f64,
    /// Max extra test patterns.
    pub p_th: usize,
}

impl Thresholds {
    /// The paper's area-optimized scenario: "extremely loose timing
    /// constraint, i.e. no timing constraint at all". Capacitance limits
    /// still come from the library (a cell physically cannot drive more
    /// than its max load), but slack and distance are unconstrained.
    pub fn area_optimized(library: &Library) -> Self {
        Thresholds {
            cap_th: library.default_cap_th(),
            s_th: Time(f64::NEG_INFINITY),
            d_th: Distance(f64::INFINITY),
            cov_th: 0.005,
            p_th: 10,
        }
    }

    /// The paper's performance-optimized scenario: tight timing. The
    /// slack floor is zero (no violation tolerated) and sharing distance
    /// is capped at `d_th`.
    pub fn performance_optimized(library: &Library, d_th: Distance) -> Self {
        Thresholds {
            cap_th: library.default_cap_th(),
            s_th: Time(0.0),
            d_th,
            cov_th: 0.005,
            p_th: 10,
        }
    }

    /// Disable overlapped-cone sharing by refusing any testability cost
    /// (used for the Table V / Fig. 7 ablation and the Agrawal baseline).
    pub fn without_overlap(mut self) -> Self {
        self.cov_th = 0.0;
        self.p_th = 0;
        self
    }

    /// `true` when the thresholds admit overlapped-cone sharing at all.
    pub fn allows_overlap(&self) -> bool {
        self.cov_th > 0.0 || self.p_th > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_differ_as_expected() {
        let lib = Library::nangate45_like();
        let area = Thresholds::area_optimized(&lib);
        let perf = Thresholds::performance_optimized(&lib, Distance(150.0));
        assert!(area.s_th < perf.s_th);
        assert!(area.d_th > perf.d_th);
        assert_eq!(area.cap_th, perf.cap_th);
        assert!(area.allows_overlap());
        assert!(!area.without_overlap().allows_overlap());
    }
}

//! Whole-stack orchestration: run the wrapper flow over every die of a
//! partitioned 3D stack and aggregate the results.
//!
//! This is the level at which a user of the library actually operates —
//! the paper evaluates per die, but a known-good-die decision is made per
//! stack design.

use prebond3d_celllib::Library;
use prebond3d_partition::DieStack;
use prebond3d_place::{place, PlaceConfig};

use crate::flow::{run_flow, FlowConfig, FlowResult};

/// Per-die flow outcome with its identity.
#[derive(Debug, Clone)]
pub struct DieOutcome {
    /// Die name (from the partitioner).
    pub name: String,
    /// The flow result.
    pub result: FlowResult,
}

/// Aggregated outcome over a stack.
#[derive(Debug, Clone)]
pub struct StackResult {
    /// Per-die outcomes in die order.
    pub dies: Vec<DieOutcome>,
}

impl StackResult {
    /// Total scan flip-flops reused across the stack.
    pub fn reused_scan_ffs(&self) -> usize {
        self.dies.iter().map(|d| d.result.reused_scan_ffs).sum()
    }

    /// Total additional wrapper cells across the stack.
    pub fn additional_wrapper_cells(&self) -> usize {
        self.dies
            .iter()
            .map(|d| d.result.additional_wrapper_cells)
            .sum()
    }

    /// Dies that miss their timing scenario.
    pub fn violations(&self) -> usize {
        self.dies
            .iter()
            .filter(|d| d.result.timing_violation)
            .count()
    }

    /// One text row per die plus a stack summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.dies {
            let _ = writeln!(out, "{}", crate::report::result_row(&d.name, &d.result));
        }
        let _ = writeln!(
            out,
            "stack: reused {} scan FFs, {} additional wrapper cells, {} timing violations",
            self.reused_scan_ffs(),
            self.additional_wrapper_cells(),
            self.violations()
        );
        out
    }
}

/// Run `config` over every die of `stack` (placing each die with
/// `place_config` and `seed`).
///
/// # Errors
///
/// Propagates the first per-die flow failure.
pub fn wrap_stack(
    stack: &DieStack,
    library: &Library,
    config: &FlowConfig,
    place_config: &PlaceConfig,
    seed: u64,
) -> Result<StackResult, Box<dyn std::error::Error>> {
    let mut dies = Vec::with_capacity(stack.dies.len());
    for die in &stack.dies {
        let placement = place(die, place_config, seed);
        let result = run_flow(die, &placement, library, config)?;
        dies.push(DieOutcome {
            name: die.name().to_string(),
            result,
        });
    }
    Ok(StackResult { dies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Method;
    use prebond3d_netlist::itc99;
    use prebond3d_partition::{fm, tsv, PartitionSpec};

    #[test]
    fn stack_wrapping_aggregates_per_die_results() {
        let flat = itc99::generate_flat("stack", 600, 48, 10, 10, 5);
        let asg = fm::partition(&flat, &PartitionSpec::new(3), 2);
        let stack = tsv::extract_dies(&flat, &asg).expect("valid");
        let lib = Library::nangate45_like();
        let result = wrap_stack(
            &stack,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
            &PlaceConfig::default(),
            1,
        )
        .expect("stack wraps");
        assert_eq!(result.dies.len(), 3);
        assert_eq!(result.violations(), 0, "ours meets timing per die");
        // Every TSV endpoint is covered by some die's plan.
        let planned: usize = result
            .dies
            .iter()
            .zip(stack.dies.iter())
            .map(|(out, die)| {
                out.result.plan.validate(die).expect("valid per die");
                die.stats().tsvs()
            })
            .sum();
        assert_eq!(planned, 2 * stack.tsvs.len(), "each link has two endpoints");
        let text = result.render();
        assert!(text.contains("stack: reused"));
    }
}

//! Testability pricing of overlapped-cone sharing.
//!
//! Algorithm 1 (lines 21–22) admits an edge between nodes with overlapped
//! fan-in/fan-out cones only when the measured fault-coverage drop stays
//! below `cov_th` and the pattern-count increase below `p_th`. The paper
//! queries a commercial ATPG tool for these numbers; this module provides
//! two interchangeable probes:
//!
//! * [`StructuralProbe`] — a fast estimator from cone-intersection sizes
//!   (the risk is proportional to the logic that sees *correlated* control
//!   values or *aliased* observation). Used by default — graph
//!   construction evaluates thousands of pairs.
//! * [`AtpgProbe`] — the measured answer: wrap the candidate pair shared
//!   vs. dedicated, run the real ATPG engine on the faults in the affected
//!   cones, and diff coverage/pattern counts. Expensive; used by tests and
//!   the calibration ablation to validate the structural estimate.

use std::collections::HashMap;
use std::sync::Mutex;

use prebond3d_atpg::engine::{run_stuck_at, run_stuck_at_on, AtpgConfig};
use prebond3d_atpg::{FaultList, TestAccess};
use prebond3d_dft::{
    prebond_access, testable, TestableDie, WrapAssignment, WrapPlan, WrapperSource,
};
use prebond3d_netlist::{cone::ConeSet, BitSet, GateId, GateKind, Netlist};
use prebond3d_obs as obs;

/// Predicted/measured impact of letting two nodes share a wrapper cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestabilityCost {
    /// Fault-coverage loss as a fraction (0.004 = 0.4 %).
    pub coverage_loss: f64,
    /// Additional test patterns needed.
    pub extra_patterns: usize,
}

impl TestabilityCost {
    /// Zero cost (disjoint cones).
    pub const FREE: TestabilityCost = TestabilityCost {
        coverage_loss: 0.0,
        extra_patterns: 0,
    };

    /// `true` when within the paper's thresholds.
    pub fn within(&self, cov_th: f64, p_th: usize) -> bool {
        self.coverage_loss < cov_th && self.extra_patterns < p_th
    }
}

/// A source of sharing-cost estimates.
///
/// `Sync` is a supertrait because graph construction shares one probe
/// across the pool's row-scan workers; probes are pure pricing functions
/// over shared read-only state, so this costs implementations nothing.
pub trait TestabilityProbe: Sync {
    /// Price the sharing of one wrapper cell by nodes `a` and `b` (each a
    /// scan flip-flop or TSV endpoint) whose cones overlap.
    fn sharing_cost(
        &self,
        netlist: &Netlist,
        cones: &ConeSet,
        a: GateId,
        b: GateId,
    ) -> TestabilityCost;
}

/// Cone-intersection estimator.
///
/// *Correlated control*: gates in both fan-out cones receive values driven
/// from one shared cell in test mode and lose input combinations.
/// *Aliased observation*: gates in both fan-in cones can inject identical
/// fault effects into both taps of the shared observation XOR, cancelling.
/// The risk is scored per overlapping gate and normalized by die size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralProbe {
    /// Coverage-loss weight per overlapping gate (relative to die size).
    pub loss_per_gate: f64,
    /// Extra patterns per overlapping gate.
    pub patterns_per_gate: f64,
}

impl Default for StructuralProbe {
    /// Calibrated so that only *marginal* cone overlaps (a handful of
    /// shared gates) pass the paper's `cov_th = 0.5 %` / `p_th = 10`
    /// thresholds, which reproduces the scale of the paper's Fig. 7
    /// solution-space growth (~3 %); see the `probe_calibration` test for
    /// the agreement check against the measured [`AtpgProbe`].
    fn default() -> Self {
        StructuralProbe {
            loss_per_gate: 0.6,
            patterns_per_gate: 0.25,
        }
    }
}

impl TestabilityProbe for StructuralProbe {
    fn sharing_cost(
        &self,
        netlist: &Netlist,
        cones: &ConeSet,
        a: GateId,
        b: GateId,
    ) -> TestabilityCost {
        let fanin_overlap = cones.try_fanin_overlap_count(a, b).unwrap_or(0);
        let fanout_overlap = cones.try_fanout_overlap_count(a, b).unwrap_or(0);
        let overlap = (fanin_overlap + fanout_overlap) as f64;
        TestabilityCost {
            coverage_loss: self.loss_per_gate * overlap / netlist.len().max(1) as f64,
            extra_patterns: (self.patterns_per_gate * overlap).round() as usize,
        }
    }
}

/// The measured probe: runs real ATPG with the pair wrapped shared vs.
/// dedicated.
///
/// Only (scan-FF, TSV) and (TSV, TSV) pairs are meaningful; other node
/// pairs return [`TestabilityCost::FREE`].
///
/// Unless `PREBOND3D_NO_CACHE=1` is set, three hot-path optimizations are
/// active (see DESIGN.md §11):
///
/// * every `(pair, shared)` measurement is memoized under a deterministic
///   cone-signature key (`probe.cache_hits` / `probe.cache_misses`),
/// * the canonical dedicated-wrapper die (identical for every probed pair)
///   is built, collapsed, and access-modeled once per netlist,
/// * each ATPG run is restricted to the faults whose propagation root lies
///   inside the pair's union cone (or in the wrapper logic itself) —
///   faults outside the union cone behave identically in the shared and
///   dedicated configurations, so they cancel out of the reported deltas.
///   Coverage is still normalized by the full collapsed universe.
#[derive(Debug)]
pub struct AtpgProbe {
    /// ATPG effort for each probe run.
    pub config: AtpgConfig,
    /// Memoized `(pair, shared)`-cone-signature → (coverage, patterns).
    cache: Mutex<HashMap<u64, (f64, usize)>>,
    /// Per-netlist canonical dedicated-wrapper context.
    dedicated: Mutex<Option<DedicatedCtx>>,
}

/// The dedicated-wrapper baseline shared by every probed pair of one
/// netlist: the wrapped die, its test access, and its full collapsed fault
/// universe are computed once and reused.
#[derive(Debug)]
struct DedicatedCtx {
    sig: u64,
    die: TestableDie,
    access: TestAccess,
    full: FaultList,
}

impl DedicatedCtx {
    /// Coarse heap estimate: the wrapped netlist dominates (gates, fanout
    /// adjacency, name index), followed by the collapsed fault universe.
    fn approx_bytes(&self) -> usize {
        const PER_GATE: usize = 160;
        self.die.netlist.len() * PER_GATE + self.full.approx_bytes()
    }
}

impl Default for AtpgProbe {
    fn default() -> Self {
        AtpgProbe::with_config(AtpgConfig::fast())
    }
}

/// FNV-1a over a byte slice, folded into `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Signature of a netlist for cache keying.
///
/// Delegates to [`Netlist::signature`], a *content* hash over gate kinds
/// and wiring. The first cut here hashed only name + length, which let a
/// mutated netlist with a colliding module name silently hit stale memo
/// entries — fatal once probes outlive a single batch run (the serve
/// daemon keeps warm probes across requests).
fn netlist_sig(netlist: &Netlist) -> u64 {
    netlist.signature()
}

/// Faults of `full` whose propagation root lies inside `union` or inside
/// the wrapper logic appended past `original_len`.
fn restrict_to_cone(full: &FaultList, union: &BitSet, original_len: usize) -> FaultList {
    FaultList {
        faults: full
            .faults
            .iter()
            .copied()
            .filter(|f| {
                let r = f.site.propagation_root().index();
                r >= original_len || union.contains(r)
            })
            .collect(),
    }
}

impl AtpgProbe {
    /// Probe with explicit ATPG effort and cold caches.
    pub fn with_config(config: AtpgConfig) -> Self {
        AtpgProbe {
            config,
            cache: Mutex::new(HashMap::new()),
            dedicated: Mutex::new(None),
        }
    }

    /// Number of memoized `(pair, shared)` measurements.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Approximate heap footprint of the warm state (memo table plus the
    /// dedicated-baseline context), in bytes. Intentionally coarse — the
    /// serve LRU uses it for byte-budget eviction, where a consistent
    /// estimate matters more than an exact one.
    pub fn approx_bytes(&self) -> usize {
        // One memo entry: u64 key + (f64, usize) value + hash-table slot
        // overhead.
        const MEMO_ENTRY: usize = 48;
        let memo = self.cache.lock().unwrap().len() * MEMO_ENTRY;
        let ded = self
            .dedicated
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, DedicatedCtx::approx_bytes);
        memo + ded
    }

    /// Wrap plan that covers every TSV dedicated, except the probed nodes,
    /// which share one cell (reusing `ff` when one of them is a scan FF).
    fn plan_for(&self, netlist: &Netlist, a: GateId, b: GateId, shared: bool) -> WrapPlan {
        let mut plan = WrapPlan::default();
        let mut shared_assignment = WrapAssignment {
            source: WrapperSource::Dedicated,
            inbound: vec![],
            outbound: vec![],
        };
        let mut probed: Vec<GateId> = Vec::new();
        for &n in &[a, b] {
            match netlist.gate(n).kind {
                GateKind::ScanDff => {
                    shared_assignment.source = WrapperSource::ReusedScanFf(n);
                }
                GateKind::TsvIn => {
                    probed.push(n);
                    shared_assignment.inbound.push(n);
                }
                GateKind::TsvOut => {
                    probed.push(n);
                    shared_assignment.outbound.push(n);
                }
                _ => {}
            }
        }
        if shared {
            plan.assignments.push(shared_assignment);
        } else {
            for &t in &shared_assignment.inbound {
                plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![t],
                    outbound: vec![],
                });
            }
            for &t in &shared_assignment.outbound {
                plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![],
                    outbound: vec![t],
                });
            }
        }
        // Every other TSV: dedicated.
        for t in netlist.inbound_tsvs() {
            if !probed.contains(&t) {
                plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![t],
                    outbound: vec![],
                });
            }
        }
        for t in netlist.outbound_tsvs() {
            if !probed.contains(&t) {
                plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![],
                    outbound: vec![t],
                });
            }
        }
        plan
    }

    /// Canonical dedicated plan: every TSV wrapped dedicated, in netlist
    /// order. Pair-independent by construction, which is what lets one
    /// dedicated baseline serve every probed pair.
    fn dedicated_plan(netlist: &Netlist) -> WrapPlan {
        let mut plan = WrapPlan::default();
        for t in netlist.inbound_tsvs() {
            plan.assignments.push(WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound: vec![t],
                outbound: vec![],
            });
        }
        for t in netlist.outbound_tsvs() {
            plan.assignments.push(WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound: vec![],
                outbound: vec![t],
            });
        }
        plan
    }

    /// The pre-memoization reference measurement: build the wrapped die and
    /// run ATPG over its full collapsed universe. This is the exact
    /// `PREBOND3D_NO_CACHE=1` semantics.
    fn measure_full(&self, netlist: &Netlist, a: GateId, b: GateId, shared: bool) -> (f64, usize) {
        let plan = self.plan_for(netlist, a, b, shared);
        let die = testable::apply(netlist, &plan).expect("probe plan is valid");
        let access = prebond_access(&die);
        let result = run_stuck_at(&die.netlist, &access, &self.config);
        (result.coverage(), result.pattern_count())
    }

    /// Memoized, cone-restricted measurement. `union` is the union of both
    /// nodes' fan-in and fan-out cones over the original netlist.
    fn measure_cached(
        &self,
        netlist: &Netlist,
        union: &BitSet,
        a: GateId,
        b: GateId,
        shared: bool,
    ) -> (f64, usize) {
        let mut key = netlist_sig(netlist);
        fnv1a(&mut key, &[shared as u8]);
        if shared {
            // The shared plan wires the wrapper to these exact nodes; the
            // dedicated plan is pair-independent, so its key is not.
            fnv1a(&mut key, &a.0.to_le_bytes());
            fnv1a(&mut key, &b.0.to_le_bytes());
        }
        for &w in union.words() {
            fnv1a(&mut key, &w.to_le_bytes());
        }
        if let Some(&hit) = self.cache.lock().unwrap().get(&key) {
            obs::count("probe.cache_hits", 1);
            // Hit/miss stream as a 0/1 histogram: the summary's p50/p95
            // read directly as "mostly hits" vs "mostly misses", and the
            // sample values are deterministic (exempt from stable-ms
            // zeroing, unlike `_ns` hists).
            obs::hist("probe.cache_stream", 1);
            return hit;
        }
        obs::count("probe.cache_misses", 1);
        obs::hist("probe.cache_stream", 0);
        let measured = if shared {
            let plan = self.plan_for(netlist, a, b, true);
            let die = testable::apply(netlist, &plan).expect("probe plan is valid");
            let access = prebond_access(&die);
            let full = FaultList::collapsed(&die.netlist);
            let restricted = restrict_to_cone(&full, union, netlist.len());
            let r = run_stuck_at_on(&die.netlist, &access, &self.config, &restricted);
            (
                r.detected as f64 / full.len().max(1) as f64,
                r.pattern_count(),
            )
        } else {
            let sig = netlist_sig(netlist);
            let mut ded = self.dedicated.lock().unwrap();
            if ded.as_ref().map(|c| c.sig) != Some(sig) {
                let plan = Self::dedicated_plan(netlist);
                let die = testable::apply(netlist, &plan).expect("dedicated plan is valid");
                let access = prebond_access(&die);
                let full = FaultList::collapsed(&die.netlist);
                *ded = Some(DedicatedCtx {
                    sig,
                    die,
                    access,
                    full,
                });
            }
            let ctx = ded.as_ref().expect("just ensured");
            let restricted = restrict_to_cone(&ctx.full, union, netlist.len());
            let r = run_stuck_at_on(&ctx.die.netlist, &ctx.access, &self.config, &restricted);
            (
                r.detected as f64 / ctx.full.len().max(1) as f64,
                r.pattern_count(),
            )
        };
        self.cache.lock().unwrap().insert(key, measured);
        measured
    }
}

impl TestabilityProbe for AtpgProbe {
    fn sharing_cost(
        &self,
        netlist: &Netlist,
        cones: &ConeSet,
        a: GateId,
        b: GateId,
    ) -> TestabilityCost {
        // One latency sample per pair probed: the count is the number of
        // probe calls (thread-invariant), the values wall-clock.
        let probe_t0 = obs::is_active().then(std::time::Instant::now);
        let cached = prebond3d_netlist::tuning::cache_enabled();
        let union = if cached {
            match (
                cones.fanin(a),
                cones.fanout(a),
                cones.fanin(b),
                cones.fanout(b),
            ) {
                (Some(fia), Some(foa), Some(fib), Some(fob)) => {
                    let mut u = fia.clone();
                    u.union_with(foa);
                    u.union_with(fib);
                    u.union_with(fob);
                    Some(u)
                }
                _ => None, // node not a cone root: no restriction possible
            }
        } else {
            None
        };
        let (cov_shared, pat_shared, cov_sep, pat_sep) = match &union {
            Some(u) => {
                let (cs, ps) = self.measure_cached(netlist, u, a, b, true);
                let (cd, pd) = self.measure_cached(netlist, u, a, b, false);
                (cs, ps, cd, pd)
            }
            None => {
                let (cs, ps) = self.measure_full(netlist, a, b, true);
                let (cd, pd) = self.measure_full(netlist, a, b, false);
                (cs, ps, cd, pd)
            }
        };
        if let Some(t0) = probe_t0 {
            obs::hist("probe.latency_ns", t0.elapsed().as_nanos() as u64);
        }
        TestabilityCost {
            coverage_loss: (cov_sep - cov_shared).max(0.0),
            extra_patterns: pat_shared.saturating_sub(pat_sep),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;

    fn small_die() -> Netlist {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 10,
            gates: 140,
            inbound_tsvs: 6,
            outbound_tsvs: 6,
            primary_inputs: 4,
            primary_outputs: 3,
            seed: 5,
        };
        itc99::generate_die(&spec)
    }

    #[test]
    fn structural_cost_scales_with_overlap() {
        let die = small_die();
        let probe = StructuralProbe::default();
        let ffs = die.flip_flops();
        let tsvs = die.inbound_tsvs();
        let mut roots = ffs.clone();
        roots.extend(&tsvs);
        let cones = ConeSet::compute(&die, &roots);
        // Disjoint-cone pairs are free; overlapped pairs cost something.
        let mut free = 0;
        let mut costly = 0;
        for &ff in &ffs {
            for &t in &tsvs {
                let c = probe.sharing_cost(&die, &cones, ff, t);
                if cones.cones_overlap(ff, t) {
                    assert!(c.coverage_loss > 0.0 || c.extra_patterns > 0);
                    costly += 1;
                } else {
                    assert_eq!(c, TestabilityCost::FREE);
                    free += 1;
                }
            }
        }
        assert!(costly > 0, "the instance should have overlapped pairs");
        let _ = free;
    }

    #[test]
    fn within_thresholds_logic() {
        let c = TestabilityCost {
            coverage_loss: 0.004,
            extra_patterns: 9,
        };
        assert!(c.within(0.005, 10));
        assert!(!c.within(0.004, 10));
        assert!(!c.within(0.005, 9));
        assert!(TestabilityCost::FREE.within(1e-9, 1));
    }

    #[test]
    fn atpg_probe_measures_pairs() {
        let die = small_die();
        let probe = AtpgProbe::default();
        let roots: Vec<GateId> = die
            .flip_flops()
            .into_iter()
            .chain(die.inbound_tsvs())
            .chain(die.outbound_tsvs())
            .collect();
        let cones = ConeSet::compute(&die, &roots);
        // A scan FF + inbound TSV pair: cost is finite and non-negative.
        let ff = die.flip_flops()[0];
        let t = die.inbound_tsvs()[0];
        let cost = probe.sharing_cost(&die, &cones, ff, t);
        assert!(cost.coverage_loss >= 0.0);
        assert!(
            cost.coverage_loss < 0.5,
            "sharing one pair cannot halve coverage"
        );
    }

    /// The cache-lifetime fix: two netlists with the *same* name and gate
    /// count but different wiring must key distinct memo entries. The old
    /// name+length signature collided here, so the second die's probes
    /// would have returned the first die's measurements.
    #[test]
    fn mutated_netlist_with_colliding_name_misses_cache() {
        let die_a = small_die();
        // Same name, same shape parameters, different seed: structurally
        // different logic behind an identical identity-by-name.
        let spec_b = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 10,
            gates: 140,
            inbound_tsvs: 6,
            outbound_tsvs: 6,
            primary_inputs: 4,
            primary_outputs: 3,
            seed: 6,
        };
        let die_b = itc99::generate_die(&spec_b);
        assert_eq!(die_a.name(), die_b.name());
        assert_eq!(die_a.len(), die_b.len());
        assert_ne!(die_a.signature(), die_b.signature());

        let probe = AtpgProbe::default();
        let cones_a = {
            let mut roots = die_a.flip_flops();
            roots.extend(die_a.inbound_tsvs());
            ConeSet::compute(&die_a, &roots)
        };
        let ff = die_a.flip_flops()[0];
        let t = die_a.inbound_tsvs()[0];
        probe.sharing_cost(&die_a, &cones_a, ff, t);
        let after_a = probe.cache_len();
        assert!(after_a > 0, "first die must populate the memo table");
        // Re-probing the same pair on the same die adds no entries (hit)…
        probe.sharing_cost(&die_a, &cones_a, ff, t);
        assert_eq!(probe.cache_len(), after_a);
        // …but the mutated die must MISS and grow the table, even for the
        // same (ff, tsv) ids and an identical module name.
        let cones_b = {
            let mut roots = die_b.flip_flops();
            roots.extend(die_b.inbound_tsvs());
            ConeSet::compute(&die_b, &roots)
        };
        let ff_b = die_b.flip_flops()[0];
        let t_b = die_b.inbound_tsvs()[0];
        probe.sharing_cost(&die_b, &cones_b, ff_b, t_b);
        assert!(
            probe.cache_len() > after_a,
            "colliding-name netlist must not hit the first die's entries"
        );
        assert!(probe.approx_bytes() > 0);
    }

    /// Calibration check: the structural probe must be *conservative*
    /// relative to the measured probe — whenever it accepts a pair at the
    /// paper's thresholds, real ATPG must agree that the coverage cost is
    /// acceptable. (The converse does not hold: the estimator deliberately
    /// rejects marginal pairs that measurement would allow, standing in
    /// for the paper's much sparser cone-overlap structure.)
    #[test]
    fn probe_calibration() {
        let die = small_die();
        let structural = StructuralProbe::default();
        let atpg = AtpgProbe::default();
        let roots: Vec<GateId> = die
            .flip_flops()
            .into_iter()
            .chain(die.inbound_tsvs())
            .collect();
        let cones = ConeSet::compute(&die, &roots);
        let ffs = die.flip_flops();
        let tsvs = die.inbound_tsvs();
        let mut false_accepts = 0usize;
        let mut accepted = 0usize;
        for &ff in ffs.iter().take(3) {
            for &t in tsvs.iter().take(3) {
                if !cones.cones_overlap(ff, t) {
                    continue;
                }
                let est = structural.sharing_cost(&die, &cones, ff, t);
                if !est.within(0.005, 10) {
                    continue;
                }
                accepted += 1;
                let real = atpg.sharing_cost(&die, &cones, ff, t);
                // Allow measurement noise of one pattern / a hair of
                // coverage beyond the thresholds.
                if !real.within(0.01, 14) {
                    false_accepts += 1;
                }
            }
        }
        assert_eq!(
            false_accepts, 0,
            "structural probe must not accept pairs ATPG rejects ({false_accepts}/{accepted})"
        );
    }
}

//! Algorithm 1: sharing-graph construction.
//!
//! Nodes are the available scan flip-flops plus the *eligible* TSVs of the
//! phase's direction (inbound TSVs under the `cap_th` load check, outbound
//! TSVs under the `s_th` slack check). An edge means "these two nodes can
//! share one wrapper cell":
//!
//! * within the distance threshold `d_th`,
//! * timing-safe per the [`TimingModel`] (pin caps, and — in the accurate
//!   model — wire delay),
//! * cones disjoint, **or** overlapped with a testability cost inside
//!   (`cov_th`, `p_th`) — the paper's solution-space expansion (Fig. 7).
//!
//! No scan-flip-flop pair is ever connected (a clique may use at most one
//! reused cell), which the clique construction then preserves for free.

use prebond3d_netlist::{cone::ConeSet, Csr, GateId, Netlist};
use prebond3d_obs as obs;
use prebond3d_pool as pool;
use prebond3d_sta::whatif::ReuseKind;

use crate::testability::TestabilityProbe;
use crate::thresholds::Thresholds;
use crate::timing_model::TimingModel;

/// Role of a node in the sharing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An available scan flip-flop.
    ScanFf,
    /// An eligible TSV of the phase's direction.
    Tsv,
}

/// The sharing graph for one phase (one TSV direction).
#[derive(Debug, Clone)]
pub struct SharingGraph {
    /// Direction this graph was built for.
    pub direction: ReuseKind,
    /// Node payloads (netlist gate ids).
    pub nodes: Vec<GateId>,
    /// Node roles, parallel to `nodes`.
    pub kinds: Vec<NodeKind>,
    /// CSR adjacency over local node indices (DESIGN.md §11): one flat
    /// edge arena instead of one heap allocation per node.
    adj: Csr,
    /// Total undirected edges.
    pub edge_count: usize,
    /// Edges admitted through the overlapped-cone testability branch.
    pub overlap_edges: usize,
    /// TSVs excluded by node-eligibility checks (they must fall back to
    /// dedicated wrapper cells).
    pub ineligible_tsvs: Vec<GateId>,
}

impl SharingGraph {
    /// Neighbors of local node `i`, sorted ascending — a borrowed slice
    /// of the CSR edge arena, so iterating never clones a row.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        self.adj.neighbors(i)
    }

    /// Degree of local node `i` in O(1).
    pub fn degree(&self, i: usize) -> usize {
        self.adj.degree(i)
    }

    /// Iterate every undirected edge once, as `(i, j)` with `i < j`, in
    /// ascending node order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .arcs()
            .filter(|&(i, j)| i < j)
            .map(|(i, j)| (i as usize, j as usize))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Local index of the first node holding `gate`, if present.
    pub fn index_of(&self, gate: GateId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == gate)
    }
}

/// Build the sharing graph for one phase.
///
/// `ffs` are the scan flip-flops still available; `tsvs` the TSVs of
/// `direction`. `probe` prices overlapped-cone sharing (ignored when the
/// thresholds forbid overlap).
pub fn build(
    model: &TimingModel<'_>,
    thresholds: &Thresholds,
    probe: &dyn TestabilityProbe,
    ffs: &[GateId],
    tsvs: &[GateId],
    direction: ReuseKind,
) -> SharingGraph {
    let _span = obs::span("graph_build");
    let netlist: &Netlist = model.netlist();

    // --- Node construction (Algorithm 1 lines 1–14) -----------------------
    let mut nodes: Vec<GateId> = Vec::new();
    let mut kinds: Vec<NodeKind> = Vec::new();
    let mut ineligible = Vec::new();
    for &ff in ffs {
        nodes.push(ff);
        kinds.push(NodeKind::ScanFf);
    }
    for &t in tsvs {
        let eligible = match direction {
            ReuseKind::Inbound => model.inbound_eligible(t, thresholds),
            ReuseKind::Outbound => model.outbound_eligible(t, thresholds),
        };
        if eligible {
            nodes.push(t);
            kinds.push(NodeKind::Tsv);
        } else {
            ineligible.push(t);
        }
    }

    let cones = ConeSet::compute(netlist, &nodes);

    // --- Edge construction (Algorithm 1 lines 16–26) ----------------------
    // Each pair's admission — the timing what-if plus the cone-overlap /
    // testability pricing — reads only shared immutable state, so the
    // O(n²) scan is partitioned by row across the pool. Workers return
    // each row's admitted edges; the replay below applies them serially
    // in ascending (i, j) order, which reproduces the serial double
    // loop's adjacency-list push order (and counters) exactly for any
    // thread count — `PREBOND3D_THREADS=1` short-circuits to an inline
    // loop inside the pool itself.
    let n = nodes.len();
    let kinds_ref = &kinds;
    let nodes_ref = &nodes;
    let cones_ref = &cones;
    let scan_row = |i: usize| -> (usize, Vec<(usize, bool)>) {
        let mut pairs = 0usize;
        let mut admitted: Vec<(usize, bool)> = Vec::new();
        for j in (i + 1)..n {
            // At least one endpoint must be a TSV.
            if kinds_ref[i] == NodeKind::ScanFf && kinds_ref[j] == NodeKind::ScanFf {
                continue;
            }
            pairs += 1;
            let (a, b) = (nodes_ref[i], nodes_ref[j]);
            // Timing admission (distance + cap/slack what-if).
            let timing_ok = match (kinds_ref[i], kinds_ref[j]) {
                (NodeKind::ScanFf, NodeKind::Tsv) => {
                    model.reuse_is_safe(a, b, direction, thresholds)
                }
                (NodeKind::Tsv, NodeKind::ScanFf) => {
                    model.reuse_is_safe(b, a, direction, thresholds)
                }
                _ => model.tsv_pair_is_safe(a, b, direction, thresholds),
            };
            if !timing_ok {
                continue;
            }
            // Cone admission. Overlapped-cone sharing is the paper's
            // Fig. 4 scenario — a *scan flip-flop* serving a TSV whose
            // cones overlap its own; TSV–TSV grouping keeps the strict
            // disjointness rule (correlated test values across two TSV
            // fanouts compound, and admitting them mostly destabilizes
            // the clique heuristic).
            let overlapped = cones_ref.cones_overlap(a, b);
            let ff_pair = kinds_ref[i] == NodeKind::ScanFf || kinds_ref[j] == NodeKind::ScanFf;
            let admit = if !overlapped {
                true
            } else if ff_pair && thresholds.allows_overlap() {
                probe
                    .sharing_cost(netlist, cones_ref, a, b)
                    .within(thresholds.cov_th, thresholds.p_th)
            } else {
                false
            };
            if admit {
                admitted.push((j, overlapped));
            }
        }
        (pairs, admitted)
    };
    let rows = pool::par_range_map(n, scan_row);

    // Submission-order replay: deterministic merge of the parallel scan.
    // Both arc directions are pushed in ascending (i, j) order, which the
    // stable CSR fill turns into ascending neighbor slices — the same row
    // contents the old per-row `Vec` pushes produced.
    let mut arcs: Vec<(u32, u32)> = Vec::new();
    let mut edge_count = 0usize;
    let mut overlap_edges = 0usize;
    let mut pairs_considered = 0usize;
    for (i, (pairs, admitted)) in rows.into_iter().enumerate() {
        pairs_considered += pairs;
        for (j, overlapped) in admitted {
            arcs.push((i as u32, j as u32));
            arcs.push((j as u32, i as u32));
            edge_count += 1;
            if overlapped {
                overlap_edges += 1;
            }
        }
    }
    let adj = Csr::from_arcs(n, &arcs);

    // One emission per build keeps the probes out of the O(n²) inner loop.
    obs::count("graph.nodes", n as u64);
    obs::count("graph.pairs_considered", pairs_considered as u64);
    obs::count("graph.edges", edge_count as u64);
    obs::count("graph.overlap_edges", overlap_edges as u64);
    obs::count("graph.ineligible_tsvs", ineligible.len() as u64);
    obs::count("graph.cone_word_ops", cones.word_ops());

    SharingGraph {
        direction,
        nodes,
        kinds,
        adj,
        edge_count,
        overlap_edges,
        ineligible_tsvs: ineligible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testability::StructuralProbe;
    use prebond3d_celllib::{Library, Time};
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_sta::{analyze, StaConfig};

    struct Rig {
        die: Netlist,
        placement: prebond3d_place::Placement,
        library: Library,
        report: prebond3d_sta::analysis::TimingReport,
    }

    fn rig() -> Rig {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 16,
            gates: 250,
            inbound_tsvs: 10,
            outbound_tsvs: 10,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 5,
        };
        let die = itc99::generate_die(&spec);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let library = Library::nangate45_like();
        let report = analyze(
            &die,
            &placement,
            &library,
            &StaConfig::with_period(Time(3000.0)),
        );
        Rig {
            die,
            placement,
            library,
            report,
        }
    }

    #[test]
    fn graph_has_no_ff_ff_edges() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let th = Thresholds::area_optimized(&r.library);
        let g = build(
            &model,
            &th,
            &StructuralProbe::default(),
            &r.die.flip_flops(),
            &r.die.inbound_tsvs(),
            ReuseKind::Inbound,
        );
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(
                    g.kinds[i] == NodeKind::Tsv || g.kinds[j as usize] == NodeKind::Tsv,
                    "FF–FF edge found"
                );
            }
            assert_eq!(g.degree(i), g.neighbors(i).len());
            assert!(g.neighbors(i).is_sorted(), "CSR rows stay sorted");
        }
        assert!(g.edge_count > 0, "area mode should admit edges");
        // The edge iterator visits each undirected edge exactly once.
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count);
        assert!(edges.iter().all(|&(i, j)| i < j));
    }

    #[test]
    fn overlap_allowance_expands_the_graph() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let th = Thresholds::area_optimized(&r.library);
        let probe = StructuralProbe::default();
        let with = build(
            &model,
            &th,
            &probe,
            &r.die.flip_flops(),
            &r.die.inbound_tsvs(),
            ReuseKind::Inbound,
        );
        let without = build(
            &model,
            &th.without_overlap(),
            &probe,
            &r.die.flip_flops(),
            &r.die.inbound_tsvs(),
            ReuseKind::Inbound,
        );
        assert!(with.edge_count >= without.edge_count);
        assert_eq!(without.overlap_edges, 0);
        assert_eq!(with.edge_count - without.edge_count, with.overlap_edges);
    }

    #[test]
    fn distance_threshold_prunes_edges() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let loose = Thresholds::area_optimized(&r.library);
        let tight = Thresholds {
            d_th: prebond3d_celllib::Distance(20.0),
            ..loose
        };
        let probe = StructuralProbe::default();
        let g_loose = build(
            &model,
            &loose,
            &probe,
            &r.die.flip_flops(),
            &r.die.outbound_tsvs(),
            ReuseKind::Outbound,
        );
        let g_tight = build(
            &model,
            &tight,
            &probe,
            &r.die.flip_flops(),
            &r.die.outbound_tsvs(),
            ReuseKind::Outbound,
        );
        assert!(g_tight.edge_count < g_loose.edge_count);
    }

    #[test]
    fn ineligible_tsvs_are_reported() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        // Impossible slack floor: every outbound TSV is ineligible.
        let th = Thresholds {
            s_th: Time(f64::INFINITY),
            ..Thresholds::area_optimized(&r.library)
        };
        let g = build(
            &model,
            &th,
            &StructuralProbe::default(),
            &r.die.flip_flops(),
            &r.die.outbound_tsvs(),
            ReuseKind::Outbound,
        );
        assert_eq!(g.ineligible_tsvs.len(), r.die.outbound_tsvs().len());
        assert!(g.nodes.iter().all(|n| !r.die.outbound_tsvs().contains(n)));
    }
}

//! # prebond3d-wcm
//!
//! Timing-aware wrapper-cell minimization for pre-bond testing of 3D-ICs —
//! the core contribution of the reproduced SOCC 2019 paper.
//!
//! Pre-bond, a die's TSVs float: inbound TSVs cannot be controlled,
//! outbound TSVs cannot be observed, and the die's fault coverage drops.
//! Wrapper cells repair this but cost area. This crate minimizes the
//! number of *additional* wrapper cells by reusing existing scan
//! flip-flops, formulated as minimal clique partitioning (after Agrawal et
//! al., TCAD 2015) and enhanced with the paper's three ideas:
//!
//! 1. **TSV-set ordering** ([`ordering`]) — process the larger of the
//!    inbound/outbound sets first so it gets first claim on scan
//!    flip-flops (the paper's Table I motivation);
//! 2. **an accurate timing model** ([`timing_model`]) — capacitance *and*
//!    Elmore wire delay from the placement, with a distance threshold
//!    `d_th`, so no reuse decision ever creates a timing violation
//!    (Table III);
//! 3. **overlapped-cone sharing under testability constraints**
//!    ([`testability`], [`graph`]) — a scan flip-flop may wrap a TSV whose
//!    fan-in/fan-out cones overlap its own if the estimated fault-coverage
//!    loss stays below `cov_th` and the pattern-count increase below
//!    `p_th` (Tables IV/V, Fig. 7).
//!
//! The full flow ([`flow::run_flow`]) mirrors the paper's Fig. 6 and the
//! prior-art baselines live in [`baseline`].
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_place::{place, PlaceConfig};
//! use prebond3d_celllib::Library;
//! use prebond3d_wcm::flow::{run_flow, FlowConfig, Method};
//!
//! let spec = itc99::circuit("b11").expect("known circuit");
//! let die = itc99::generate_die(&spec.dies[0]);
//! let placement = place(&die, &PlaceConfig::default(), 1);
//! let lib = Library::nangate45_like();
//! let config = FlowConfig::area_optimized(Method::Ours);
//! let result = run_flow(&die, &placement, &lib, &config).expect("flow runs");
//! assert!(result.plan.reused_scan_ffs() + result.plan.additional_wrapper_cells() > 0);
//! ```

pub mod baseline;
pub mod clique;
pub mod exact;
pub mod flow;
pub mod graph;
pub mod ordering;
pub mod report;
pub mod stack;
pub mod testability;
pub mod thresholds;
pub mod timing_model;

pub use clique::{CliquePartition, MergePolicy};
pub use flow::{run_flow, FlowConfig, FlowError, FlowResult, Method};
pub use graph::{NodeKind, SharingGraph};
pub use ordering::OrderingPolicy;
pub use testability::{StructuralProbe, TestabilityCost, TestabilityProbe};
pub use thresholds::Thresholds;
pub use timing_model::TimingModel;

//! TSV-set ordering (the paper's Table I insight).
//!
//! The flow processes one TSV direction at a time; flip-flops consumed by
//! the first phase are gone for the second. Starting from the **larger**
//! set lets the set with more demand claim flip-flops first, which the
//! paper shows improves both fault coverage and wrapper-cell count.

use prebond3d_netlist::Netlist;
use prebond3d_sta::whatif::ReuseKind;

/// Which TSV set to process first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingPolicy {
    /// The paper's choice: larger set first (ties → inbound).
    LargerFirst,
    /// Always inbound first (Agrawal's implicit order).
    InboundFirst,
    /// Always outbound first.
    OutboundFirst,
}

impl OrderingPolicy {
    /// The two phases in processing order for `die`.
    pub fn phases(self, die: &Netlist) -> [ReuseKind; 2] {
        match self {
            OrderingPolicy::InboundFirst => [ReuseKind::Inbound, ReuseKind::Outbound],
            OrderingPolicy::OutboundFirst => [ReuseKind::Outbound, ReuseKind::Inbound],
            OrderingPolicy::LargerFirst => {
                let stats = die.stats();
                if stats.outbound_tsvs > stats.inbound_tsvs {
                    [ReuseKind::Outbound, ReuseKind::Inbound]
                } else {
                    [ReuseKind::Inbound, ReuseKind::Outbound]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;

    #[test]
    fn larger_first_follows_counts() {
        let spec = itc99::DieSpec {
            name: "d".into(),
            scan_flip_flops: 8,
            gates: 120,
            inbound_tsvs: 4,
            outbound_tsvs: 9,
            primary_inputs: 3,
            primary_outputs: 3,
            seed: 1,
        };
        let die = itc99::generate_die(&spec);
        assert_eq!(
            OrderingPolicy::LargerFirst.phases(&die),
            [ReuseKind::Outbound, ReuseKind::Inbound]
        );
        assert_eq!(
            OrderingPolicy::InboundFirst.phases(&die),
            [ReuseKind::Inbound, ReuseKind::Outbound]
        );
        assert_eq!(
            OrderingPolicy::OutboundFirst.phases(&die),
            [ReuseKind::Outbound, ReuseKind::Inbound]
        );
    }

    #[test]
    fn ties_go_inbound() {
        let spec = itc99::DieSpec {
            name: "d".into(),
            scan_flip_flops: 8,
            gates: 120,
            inbound_tsvs: 6,
            outbound_tsvs: 6,
            primary_inputs: 3,
            primary_outputs: 3,
            seed: 1,
        };
        let die = itc99::generate_die(&spec);
        assert_eq!(
            OrderingPolicy::LargerFirst.phases(&die),
            [ReuseKind::Inbound, ReuseKind::Outbound]
        );
    }
}

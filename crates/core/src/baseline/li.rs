//! Li & Xiang (ICCD 2010): reuse each scan flip-flop at most once.
//!
//! Greedy matching: every TSV tries to claim the nearest still-unused scan
//! flip-flop whose fan-in/fan-out cones do not overlap its own and whose
//! reuse is timing-admissible. Unmatched TSVs get dedicated wrapper cells.
//! No wrapper cell ever serves two TSVs — the restriction Agrawal's WCM
//! formulation later lifted.

use prebond3d_dft::{WrapAssignment, WrapPlan, WrapperSource};
use prebond3d_netlist::{cone::ConeSet, GateId};
use prebond3d_sta::whatif::ReuseKind;

use crate::thresholds::Thresholds;
use crate::timing_model::TimingModel;

/// Build the Li-style plan.
pub fn plan(model: &TimingModel<'_>, thresholds: &Thresholds) -> WrapPlan {
    let die = model.netlist();
    let inbound = die.inbound_tsvs();
    let outbound = die.outbound_tsvs();
    let ffs = die.flip_flops();

    let mut roots: Vec<GateId> = ffs.clone();
    roots.extend(&inbound);
    roots.extend(&outbound);
    let cones = ConeSet::compute(die, &roots);

    let mut used = vec![false; ffs.len()];
    let mut plan = WrapPlan::default();

    let assign = |tsvs: &[GateId], kind: ReuseKind, used: &mut [bool], plan: &mut WrapPlan| {
        for &t in tsvs {
            // Nearest admissible unused FF.
            let mut best: Option<(f64, usize)> = None;
            for (i, &ff) in ffs.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if cones.cones_overlap(ff, t) {
                    continue;
                }
                if !model.reuse_is_safe(ff, t, kind, thresholds) {
                    continue;
                }
                let d = model.distance(ff, t).0;
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
            let (inb, outb) = match kind {
                ReuseKind::Inbound => (vec![t], vec![]),
                ReuseKind::Outbound => (vec![], vec![t]),
            };
            match best {
                Some((_, i)) => {
                    used[i] = true;
                    plan.assignments.push(WrapAssignment {
                        source: WrapperSource::ReusedScanFf(ffs[i]),
                        inbound: inb,
                        outbound: outb,
                    });
                }
                None => plan.assignments.push(WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: inb,
                    outbound: outb,
                }),
            }
        }
    };

    assign(&inbound, ReuseKind::Inbound, &mut used, &mut plan);
    assign(&outbound, ReuseKind::Outbound, &mut used, &mut plan);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_celllib::{Library, Time};
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_sta::{analyze, StaConfig};

    #[test]
    fn li_plan_is_valid_and_single_use() {
        let spec = itc99::circuit("b11").expect("known");
        let die = itc99::generate_die(&spec.dies[1]);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let library = Library::nangate45_like();
        let report = analyze(
            &die,
            &placement,
            &library,
            &StaConfig::with_period(Time(4000.0)),
        );
        let model = TimingModel::new(&die, &placement, &library, &report, &report, false);
        let th = Thresholds::area_optimized(&library);
        let p = plan(&model, &th);
        p.validate(&die).expect("valid");
        // Single TSV per assignment by construction.
        for a in &p.assignments {
            assert_eq!(a.tsv_count(), 1);
        }
        assert!(p.reused_scan_ffs() > 0, "some reuse should happen");
    }
}

//! Prior-art baselines.
//!
//! * **Agrawal et al.** is not a separate implementation: it is the same
//!   clique flow run with [`crate::clique::MergePolicy::CapacitanceOnly`],
//!   inbound-first ordering and no overlapped-cone sharing — see
//!   [`crate::flow::Method::Agrawal`]. Keeping one code path for both
//!   makes the comparison an ablation rather than an implementation-
//!   quality contest.
//! * [`li`] — Li & Xiang's single-reuse greedy matching.
//! * The naive all-dedicated plan is
//!   [`prebond3d_dft::WrapPlan::all_dedicated`].

pub mod li;

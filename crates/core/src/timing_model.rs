//! The timing model behind node eligibility and edge pricing.
//!
//! The paper's key claim is that Agrawal's capacitance-only model is not
//! enough: a reused scan flip-flop far from its TSV adds a long wire whose
//! delay (and capacitance) must be charged to the affected functional
//! paths. [`TimingModel`] wraps an STA report and prices every decision
//! the graph construction makes, in two fidelities:
//!
//! * `include_wire = true` — the paper's accurate model (cap + Elmore
//!   wire delay + distance threshold);
//! * `include_wire = false` — Agrawal's model (pin capacitance only),
//!   used by the baseline to reproduce its timing violations.

use std::collections::HashMap;

use prebond3d_celllib::{Capacitance, Distance, Library, Time};
use prebond3d_netlist::{GateId, GateKind, Netlist};
use prebond3d_place::Placement;
use prebond3d_sta::analysis::TimingReport;
use prebond3d_sta::whatif::ReuseKind;

use crate::thresholds::Thresholds;

/// Pricing facade over (netlist, placement, library, STA reports).
///
/// Two reports feed the model:
///
/// * `report` — the **baseline**: an analysis of the die wrapped with
///   all-dedicated cells (original gate ids are preserved by DFT
///   insertion, so the original nodes index into it directly). All slack
///   and load queries price reuse *differentially* against the hardware
///   every method must insert anyway.
/// * `fanout_report` — an analysis of the bare die, used only where the
///   pre-DFT fanout matters: the Algorithm 1 `capacity_load(n) < cap_th`
///   eligibility check asks what load a wrapper's test mux must drive,
///   which in the baseline netlist has already been moved onto the mux.
#[derive(Debug, Clone)]
pub struct TimingModel<'a> {
    netlist: &'a Netlist,
    placement: &'a Placement,
    library: &'a Library,
    report: &'a TimingReport,
    fanout_report: &'a TimingReport,
    /// Dedicated wrapper cell per TSV in the baseline netlist, when one
    /// was built; lets inbound pricing read the *test-path* slack at the
    /// wrapper's launch point rather than the (much earlier) raw TSV arc.
    wrapper_of: HashMap<GateId, GateId>,
    /// `true` for the paper's model, `false` for capacitance-only.
    pub include_wire: bool,
}

impl<'a> TimingModel<'a> {
    /// Build the model. Pass the same report twice when no dedicated
    /// baseline is available (tests, quick estimates).
    pub fn new(
        netlist: &'a Netlist,
        placement: &'a Placement,
        library: &'a Library,
        report: &'a TimingReport,
        fanout_report: &'a TimingReport,
        include_wire: bool,
    ) -> Self {
        TimingModel {
            netlist,
            placement,
            library,
            report,
            fanout_report,
            wrapper_of: HashMap::new(),
            include_wire,
        }
    }

    /// Attach the TSV → dedicated-wrapper-cell map of the baseline
    /// netlist (ids valid in the baseline report's index space).
    pub fn with_wrapper_map(mut self, wrapper_of: HashMap<GateId, GateId>) -> Self {
        self.wrapper_of = wrapper_of;
        self
    }

    /// Elmore wire flight with a finiteness guard (and the `timing.elmore`
    /// chaos site). A non-finite delay — injected or a genuine model
    /// blow-up — must not poison downstream comparisons with NaN: it
    /// degrades to an infinite penalty, which conservatively rejects the
    /// reuse under test, and the degradation is recorded.
    fn elmore(&self, dist: Distance, load: Capacitance) -> Time {
        let raw = self.library.wire().elmore_delay(dist, load).0;
        let v = prebond3d_resilience::chaos::perturb("timing.elmore", raw);
        if v.is_finite() {
            Time(v)
        } else {
            prebond3d_resilience::degrade::record(
                "timing",
                "infinite_penalty",
                format!(
                    "non-finite Elmore delay at distance {:.1} µm treated as +inf",
                    dist.0
                ),
            );
            Time(f64::INFINITY)
        }
    }

    /// Baseline slack available at an inbound TSV's test-path launch: the
    /// dedicated wrapper cell's Q slack when known, else the raw TSV arc.
    pub fn inbound_anchor_slack(&self, tsv: GateId) -> Time {
        match self.wrapper_of.get(&tsv) {
            Some(&w) => self.report.slack(w),
            None => self.report.slack(tsv),
        }
    }

    /// Baseline slack of an outbound TSV's tap driver — its required time
    /// already reflects the dedicated wrapper's capture setup.
    pub fn outbound_tap_slack(&self, tsv: GateId) -> Time {
        let driver = self.netlist.gate(tsv).inputs[0];
        self.report.slack(driver)
    }

    /// Exact insertion delay of the Fig. 3b capture hardware on a reused
    /// flip-flop's functional D path: observation XOR driving the capture
    /// mux, driving the flip-flop's D pin — intrinsic plus load-dependent
    /// terms, as the signoff STA will compute them.
    pub fn capture_insertion_delay(&self) -> Time {
        let xor = self.library.timing(GateKind::Xor);
        let mux = self.library.timing(GateKind::Mux2);
        let ff_pin = self.library.timing(GateKind::ScanDff).input_cap;
        xor.intrinsic
            + xor.drive_resistance * mux.input_cap
            + mux.intrinsic
            + mux.drive_resistance * ff_pin
    }

    /// Extra drive delay the flip-flop's functional D *driver* pays after
    /// capture-hardware insertion: it now feeds the observation XOR and
    /// the capture mux instead of the flip-flop pin directly.
    pub fn capture_driver_penalty(&self, d_driver: GateId) -> Time {
        let xor = self.library.timing(GateKind::Xor);
        let mux = self.library.timing(GateKind::Mux2);
        let ff_pin = self.library.timing(GateKind::ScanDff).input_cap;
        let rd = self
            .library
            .timing(self.netlist.gate(d_driver).kind)
            .drive_resistance;
        let delta = xor.input_cap + mux.input_cap - ff_pin;
        Time((rd * delta).0.max(0.0))
    }

    /// Exact per-stage delay of one observation-chain XOR: intrinsic plus
    /// drive into the next stage's pin, plus the (accurate model) wire
    /// flight of the tap.
    pub fn chain_stage_delay(&self, dist: Distance) -> Time {
        let xor = self.library.timing(GateKind::Xor);
        let stage = xor.intrinsic + xor.drive_resistance * xor.input_cap;
        if self.include_wire {
            stage + self.elmore(dist, xor.input_cap)
        } else {
            stage
        }
    }

    /// The analyzed netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The library in use.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// The STA report.
    pub fn report(&self) -> &TimingReport {
        self.report
    }

    /// Manhattan distance between two nodes (µm); zero under the
    /// capacitance-only model, which is blind to geometry.
    pub fn distance(&self, a: GateId, b: GateId) -> Distance {
        self.placement.distance(a, b)
    }

    /// Algorithm 1 line 6: an inbound TSV is a node only if the load its
    /// wrapper must take over stays below `cap_th`.
    pub fn inbound_eligible(&self, tsv: GateId, th: &Thresholds) -> bool {
        self.fanout_report.load(tsv) < th.cap_th
    }

    /// Algorithm 1 line 11: an outbound TSV is a node only if its slack
    /// exceeds `s_th` (there must be headroom for the observation tap).
    pub fn outbound_eligible(&self, tsv: GateId, th: &Thresholds) -> bool {
        self.outbound_tap_slack(tsv) > th.s_th
    }

    /// Load a shared wrapper cell's Q net takes on per wrapped inbound
    /// TSV at `dist`: the test mux's pin capacitance plus — in the
    /// accurate model — the (buffered) wire to it, exactly as the signoff
    /// STA will charge it. Agrawal's model sees the pin only; the unseen
    /// wire capacitance is one of the two mechanisms behind his Table III
    /// violations.
    pub fn drive_contribution(&self, dist: Distance) -> Capacitance {
        let pin = self.library.reuse().mux_input_cap;
        if self.include_wire {
            pin + self.library.wire().driver_load(dist)
        } else {
            pin
        }
    }

    /// Is reusing scan flip-flop `ff` for `tsv` timing-safe under the
    /// thresholds?
    ///
    /// All delay terms are priced *differentially* against the dedicated
    /// baseline: inbound reuse swaps the local wrapper's launch for the
    /// flip-flop's heavier, wire-delayed launch; outbound reuse swaps the
    /// adjacent capture for a wire + XOR + mux path into the flip-flop.
    pub fn reuse_is_safe(&self, ff: GateId, tsv: GateId, kind: ReuseKind, th: &Thresholds) -> bool {
        let dist = self.distance(ff, tsv);
        if self.include_wire && dist >= th.d_th {
            return false;
        }
        let reuse = self.library.reuse();
        let wire = self.library.wire();
        let eff_dist = if self.include_wire {
            dist
        } else {
            Distance(0.0)
        };
        match kind {
            ReuseKind::Inbound => {
                let extra = reuse.mux_input_cap + wire.driver_load(eff_dist);
                let new_load = self.report.load(ff) + extra;
                if new_load > th.cap_th {
                    return false;
                }
                let rd = self
                    .library
                    .timing(self.netlist.gate(ff).kind)
                    .drive_resistance;
                let rd_w = self.library.timing(GateKind::Wrapper).drive_resistance;
                // The flip-flop's own fanout paths slow by the extra drive.
                let drive_penalty = rd * extra;
                if self.report.slack(ff) - drive_penalty < th.s_th {
                    return false;
                }
                // Test-path launch: FF drive into its whole load plus the
                // wire flight, versus the wrapper's drive into one mux pin.
                let launch_penalty = (rd * new_load - rd_w * reuse.mux_input_cap
                    + self.elmore(eff_dist, reuse.mux_input_cap))
                .max(Time(0.0));
                self.inbound_anchor_slack(tsv) - launch_penalty >= th.s_th
            }
            ReuseKind::Outbound => {
                let driver = self.netlist.gate(tsv).inputs[0];
                let extra = reuse.xor_input_cap + wire.driver_load(eff_dist);
                let rd = self
                    .library
                    .timing(self.netlist.gate(driver).kind)
                    .drive_resistance;
                let drive_penalty = rd * extra;
                // Capture path into the reused flip-flop: wire flight +
                // XOR + mux replace the dedicated wrapper's adjacent
                // capture (exact cell delays, as signoff will see them).
                let insertion = self.capture_insertion_delay();
                let series = insertion + self.elmore(eff_dist, reuse.xor_input_cap);
                // The flip-flop's functional D path gains the same
                // hardware, plus its driver's extra pin loads.
                let d_driver = self.netlist.gate(ff).inputs[0];
                let ff_penalty = insertion + self.capture_driver_penalty(d_driver);
                self.outbound_tap_slack(tsv) - drive_penalty - series >= th.s_th
                    && self.report.slack(d_driver) - ff_penalty >= th.s_th
            }
        }
    }

    /// Can two TSVs of the same direction share one wrapper cell? The
    /// shared cell sits at one TSV; the other pays the inter-TSV wire.
    pub fn tsv_pair_is_safe(
        &self,
        t1: GateId,
        t2: GateId,
        kind: ReuseKind,
        th: &Thresholds,
    ) -> bool {
        let dist = self.distance(t1, t2);
        if self.include_wire && dist >= th.d_th {
            return false;
        }
        match kind {
            ReuseKind::Inbound => {
                // One shared cell drives both test-mux pins plus (accurate
                // model) the wire between the anchors; its mission launch
                // also drifts by the wire flight, priced against both
                // TSVs' baseline test-path slack.
                let cap_ok = self.drive_contribution(dist) + self.drive_contribution(Distance(0.0))
                    <= th.cap_th;
                if !self.include_wire {
                    return cap_ok;
                }
                let reuse = self.library.reuse();
                let flight = self.elmore(dist, reuse.mux_input_cap);
                cap_ok
                    && self.inbound_anchor_slack(t1) - flight >= th.s_th
                    && self.inbound_anchor_slack(t2) - flight >= th.s_th
            }
            ReuseKind::Outbound => {
                // Both taps chain into one capture cell: each path must
                // absorb an XOR (+ wire for the distant one).
                let reuse = self.library.reuse();
                let wire_d = if self.include_wire {
                    self.elmore(dist, reuse.xor_input_cap)
                } else {
                    Time(0.0)
                };
                // Both taps chain into one capture cell; their baseline
                // (tap-driver) slacks already include the dedicated
                // wrapper's capture setup, so only the extra XOR + wire
                // is new.
                let penalty = reuse.xor_delay + wire_d;
                self.outbound_tap_slack(t1) - penalty >= th.s_th
                    && self.outbound_tap_slack(t2) - penalty >= th.s_th
            }
        }
    }

    /// Remaining drive headroom of a scan flip-flop: `cap_th` minus its
    /// present load.
    pub fn ff_headroom(&self, ff: GateId, th: &Thresholds) -> Capacitance {
        th.cap_th - self.report.load(ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_sta::{analyze, StaConfig};

    struct Rig {
        die: Netlist,
        placement: Placement,
        library: Library,
        report: TimingReport,
    }

    fn rig() -> Rig {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 20,
            gates: 300,
            inbound_tsvs: 12,
            outbound_tsvs: 12,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 5,
        };
        let die = itc99::generate_die(&spec);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let library = Library::nangate45_like();
        let report = analyze(
            &die,
            &placement,
            &library,
            &StaConfig::with_period(Time(2000.0)),
        );
        Rig {
            die,
            placement,
            library,
            report,
        }
    }

    #[test]
    fn wire_model_is_distance_sensitive() {
        let r = rig();
        let accurate =
            TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let blind = TimingModel::new(
            &r.die,
            &r.placement,
            &r.library,
            &r.report,
            &r.report,
            false,
        );
        let far = Distance(500.0);
        // The accurate model charges the wire; Agrawal's cannot see it.
        assert!(accurate.drive_contribution(far) > blind.drive_contribution(far));
        assert_eq!(
            blind.drive_contribution(far),
            blind.drive_contribution(Distance(0.0))
        );
    }

    #[test]
    fn distance_threshold_gates_reuse() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let th_tight = Thresholds {
            d_th: Distance(0.0),
            ..Thresholds::area_optimized(&r.library)
        };
        let ff = r.die.flip_flops()[0];
        let tsv = r.die.inbound_tsvs()[0];
        assert!(!model.reuse_is_safe(ff, tsv, ReuseKind::Inbound, &th_tight));
        let th_loose = Thresholds::area_optimized(&r.library);
        // With no slack floor and a huge d_th the only barrier is cap.
        let safe = model.reuse_is_safe(ff, tsv, ReuseKind::Inbound, &th_loose);
        let _ = safe; // value depends on the instance; the call must not panic
    }

    #[test]
    fn eligibility_follows_report() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let th = Thresholds::area_optimized(&r.library);
        for t in r.die.inbound_tsvs() {
            assert_eq!(model.inbound_eligible(t, &th), r.report.load(t) < th.cap_th);
        }
        for t in r.die.outbound_tsvs() {
            assert_eq!(model.outbound_eligible(t, &th), r.report.slack(t) > th.s_th);
        }
    }

    #[test]
    fn headroom_shrinks_with_load() {
        let r = rig();
        let model = TimingModel::new(&r.die, &r.placement, &r.library, &r.report, &r.report, true);
        let th = Thresholds::area_optimized(&r.library);
        for ff in r.die.flip_flops() {
            let h = model.ff_headroom(ff, &th);
            assert!((h + r.report.load(ff) - th.cap_th).0.abs() < 1e-9);
        }
    }
}

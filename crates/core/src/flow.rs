//! The full design flow (the paper's Fig. 6).
//!
//! ```text
//! netlist → TSV analysis (ordering) → graph construction (Alg. 1)
//!        → clique partitioning (Alg. 2) → testable netlist (DFT insert)
//!        → ATPG check / STA check
//! ```
//!
//! [`run_flow`] executes the flow for the paper's method and for the
//! prior-art baselines ([`Method`]), under the paper's two evaluation
//! scenarios ([`Scenario`]). It returns the wrapper plan, per-phase graph
//! statistics, the materialized testable die and the post-insertion STA
//! verdict — everything the experiment harness needs for Tables I/III/IV/V
//! and Fig. 7.

use prebond3d_celllib::{Distance, Library, Time};
use prebond3d_dft::{testable, TestableDie, WrapAssignment, WrapPlan, WrapperSource};
use prebond3d_netlist::{GateId, Netlist};
use prebond3d_obs as obs;
use prebond3d_place::Placement;
use prebond3d_sta::whatif::ReuseKind;
use prebond3d_sta::{analyze, StaConfig};

use crate::baseline;
use crate::clique::{self, MergePolicy};
use crate::graph;
use crate::ordering::OrderingPolicy;
use crate::testability::StructuralProbe;
use crate::thresholds::Thresholds;
use crate::timing_model::TimingModel;

/// A typed flow failure.
///
/// Replaces the old `Box<dyn Error>` so drivers and the panic-isolation
/// recovery in the bench harness can map causes to exit codes and report
/// entries without matching on error strings.
#[derive(Debug)]
pub enum FlowError {
    /// DFT insertion rejected the wrapper plan (a bug in the produced
    /// plan, surfaced rather than panicked on). `stage` names the flow
    /// step that applied the plan.
    Dft {
        /// Flow step (`baseline_dft`, `dft_insert`, `calibrate`).
        stage: &'static str,
        /// The underlying plan-validation message.
        message: String,
    },
    /// The post-flow lint gate found Error-severity diagnostics
    /// (constructed by the bench harness, not by `run_flow` itself).
    LintGate {
        /// The experiment cell label.
        label: String,
        /// The rendered lint report.
        report: String,
    },
    /// A report or checkpoint write failed; the path names the file.
    Io {
        /// The file being written.
        path: std::path::PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The ATPG pattern-batch machinery rejected a malformed batch
    /// (oversized for its lane bundle, or width-mismatched patterns).
    /// Carries the typed `SimError` so callers degrade instead of
    /// tripping the panic-isolation path.
    Sim {
        /// The underlying batch-formation error.
        source: prebond3d_atpg::SimError,
    },
}

impl FlowError {
    /// The process exit code a driver should map this cause to. Distinct
    /// from `0` (success), `2` (bad circuit selection) and `3` (partial
    /// failure: some units failed but the sweep completed).
    pub fn exit_code(&self) -> i32 {
        match self {
            FlowError::Dft { .. } => 4,
            FlowError::LintGate { .. } => 1,
            FlowError::Io { .. } => 4,
            FlowError::Sim { .. } => 4,
        }
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Dft { stage, message } => {
                write!(f, "DFT insertion failed during {stage}: {message}")
            }
            FlowError::LintGate { label, report } => {
                write!(f, "lint gate failed after flow `{label}`:\n{report}")
            }
            FlowError::Io { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
            FlowError::Sim { source } => {
                write!(f, "fault-simulation batch rejected: {source}")
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Io { source, .. } => Some(source),
            FlowError::Sim { source } => Some(source),
            _ => None,
        }
    }
}

impl From<prebond3d_atpg::SimError> for FlowError {
    fn from(source: prebond3d_atpg::SimError) -> Self {
        FlowError::Sim { source }
    }
}

/// Which algorithm produces the wrapper plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's method: larger-set-first ordering, accurate timing
    /// model, overlapped-cone sharing under testability constraints.
    Ours,
    /// Agrawal et al. (TCAD 2015): clique partitioning with a
    /// capacitance-only model, inbound-first, no overlapped sharing.
    Agrawal,
    /// Li & Xiang (ICCD 2010): each scan flip-flop reused at most once,
    /// for at most one TSV, cones disjoint.
    Li,
    /// Marinissen-style baseline: a dedicated wrapper cell on every TSV.
    Naive,
}

impl Method {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Method::Ours => "Ours",
            Method::Agrawal => "Agrawal",
            Method::Li => "Li",
            Method::Naive => "Naive",
        }
    }
}

/// The paper's two evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// "No timing constraint at all" (area-optimized).
    Area,
    /// Tight timing: clock calibrated just above the wrapped critical
    /// path (performance-optimized).
    Tight,
}

/// Flow configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// The algorithm to run.
    pub method: Method,
    /// The timing scenario.
    pub scenario: Scenario,
    /// Force a TSV-set ordering (defaults to the method's own policy).
    pub ordering: Option<OrderingPolicy>,
    /// Force overlapped-cone sharing on/off (defaults to the method's
    /// policy; used by the Table V / Fig. 7 ablation).
    pub allow_overlap: Option<bool>,
}

impl FlowConfig {
    /// Area-optimized scenario defaults.
    pub fn area_optimized(method: Method) -> Self {
        FlowConfig {
            method,
            scenario: Scenario::Area,
            ordering: None,
            allow_overlap: None,
        }
    }

    /// Performance-optimized (tight-timing) scenario defaults.
    pub fn performance_optimized(method: Method) -> Self {
        FlowConfig {
            method,
            scenario: Scenario::Tight,
            ordering: None,
            allow_overlap: None,
        }
    }
}

/// Per-phase graph statistics (feeds Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase direction.
    pub direction: ReuseKind,
    /// Node count (available FFs + eligible TSVs).
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Edges admitted via overlapped-cone sharing.
    pub overlap_edges: usize,
}

/// The outcome of one flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The wrapper plan.
    pub plan: WrapPlan,
    /// Scan flip-flops reused as wrapper cells.
    pub reused_scan_ffs: usize,
    /// Additional (dedicated) wrapper cells inserted.
    pub additional_wrapper_cells: usize,
    /// Per-phase graph statistics (empty for Li/Naive).
    pub phases: Vec<PhaseStats>,
    /// The DFT-inserted die.
    pub testable: TestableDie,
    /// Placement extended over the testable die.
    pub placement: Placement,
    /// Post-insertion worst slack at the scenario clock.
    pub wns_after: Time,
    /// `true` when the testable die misses the scenario clock.
    pub timing_violation: bool,
    /// The clock period the scenario used.
    pub clock_period: Time,
}

/// Calibrate the tight-timing clock: the die wrapped with all-dedicated
/// cells (the minimum hardware any method must insert) must just meet
/// timing, with a 0.5 % guard band. Reuse decisions that add long wires or
/// deep XOR chains then stand out as violations.
pub fn calibrate_tight_period(
    die: &Netlist,
    placement: &Placement,
    library: &Library,
) -> Result<Time, FlowError> {
    let plan = WrapPlan::all_dedicated(die);
    let wrapped = testable::apply(die, &plan).map_err(|e| FlowError::Dft {
        stage: "calibrate",
        message: e.to_string(),
    })?;
    let p = wrapped.placement_for(placement);
    let relaxed = StaConfig::relaxed();
    let report = prebond3d_sta::analysis::analyze_with_statics(
        &wrapped.netlist,
        &p,
        library,
        &relaxed,
        &[wrapped.test_en],
    );
    let critical = relaxed.clock_period - report.wns;
    Ok(critical * 1.005)
}

/// Execute the flow.
///
/// # Errors
///
/// Propagates DFT-insertion and netlist validation failures (a bug in the
/// produced plan, surfaced rather than panicked on).
pub fn run_flow(
    die: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    run_flow_with_probe(die, placement, library, config, &StructuralProbe::default())
}

/// [`run_flow`] with an explicit testability probe.
///
/// The default flow prices cone sharing with the structural estimator; a
/// caller that keeps a warm [`crate::testability::AtpgProbe`] across runs
/// (the serve daemon) injects it here so its memo tables survive and pay
/// off on repeat jobs.
///
/// # Errors
///
/// Same contract as [`run_flow`].
pub fn run_flow_with_probe(
    die: &Netlist,
    placement: &Placement,
    library: &Library,
    config: &FlowConfig,
    probe: &dyn crate::testability::TestabilityProbe,
) -> Result<FlowResult, FlowError> {
    let _flow_span = obs::span("flow");

    // --- Baseline hardware: the all-dedicated wrapped die ----------------
    // Every method must insert at least this hardware; the timing model
    // prices reuse decisions against it, and the tight clock is calibrated
    // on it.
    let (dedicated, dedicated_placement) = {
        let _s = obs::span("baseline_dft");
        let dedicated =
            testable::apply(die, &WrapPlan::all_dedicated(die)).map_err(|e| FlowError::Dft {
                stage: "baseline_dft",
                message: e.to_string(),
            })?;
        let dedicated_placement = dedicated.placement_for(placement);
        (dedicated, dedicated_placement)
    };

    // --- Scenario: clock + thresholds -----------------------------------
    let clock = match config.scenario {
        Scenario::Area => StaConfig::relaxed().clock_period,
        Scenario::Tight => {
            let _s = obs::span("calibrate");
            let relaxed = StaConfig::relaxed();
            let r = prebond3d_sta::analysis::analyze_with_statics(
                &dedicated.netlist,
                &dedicated_placement,
                library,
                &relaxed,
                &[dedicated.test_en],
            );
            (relaxed.clock_period - r.wns) * 1.005
        }
    };
    let sta = StaConfig::with_period(clock);
    let (baseline_report, fanout_report) = {
        let _s = obs::span("baseline_sta");
        let baseline_report = prebond3d_sta::analysis::analyze_with_statics(
            &dedicated.netlist,
            &dedicated_placement,
            library,
            &sta,
            &[dedicated.test_en],
        );
        let fanout_report = analyze(die, placement, library, &sta);
        (baseline_report, fanout_report)
    };

    let mut thresholds = match config.scenario {
        Scenario::Area => Thresholds::area_optimized(library),
        Scenario::Tight => {
            // d_th: a fifth of the die half-perimeter. s_th stays at zero:
            // the calibrated clock already absorbs the dedicated-wrapper
            // overhead, so any reuse whose *additional* penalty fits the
            // remaining slack is safe.
            let d_th = Distance(placement.scale().0 * 0.4);
            let mut th = Thresholds::performance_optimized(library, d_th);
            // A small positive slack floor absorbs the model's wire/anchor
            // approximations (the paper's s_th is likewise user-tuned).
            th.s_th = Time(5.0);
            th
        }
    };
    let allow_overlap = config
        .allow_overlap
        .unwrap_or(matches!(config.method, Method::Ours));
    if !allow_overlap {
        thresholds = thresholds.without_overlap();
    }
    if matches!(config.method, Method::Agrawal | Method::Li) {
        // The prior-art models know only pin capacitance: they have no
        // slack or distance information to constrain themselves with, even
        // when the scenario is timing-critical — that blindness is what
        // Table III's violation column exposes.
        thresholds.s_th = Time(f64::NEG_INFINITY);
        thresholds.d_th = Distance(f64::INFINITY);
    }

    // --- Method wiring ----------------------------------------------------
    let (include_wire, merge_policy, default_ordering) = match config.method {
        Method::Ours => (true, MergePolicy::Accurate, OrderingPolicy::LargerFirst),
        Method::Agrawal => (
            false,
            MergePolicy::CapacitanceOnly,
            OrderingPolicy::InboundFirst,
        ),
        Method::Li | Method::Naive => (
            false,
            MergePolicy::CapacitanceOnly,
            OrderingPolicy::InboundFirst,
        ),
    };
    let ordering = config.ordering.unwrap_or(default_ordering);
    // TSV → dedicated wrapper cell in the baseline netlist, so the model
    // can read test-path slacks at the right launch points.
    let dedicated_plan = WrapPlan::all_dedicated(die);
    let mut wrapper_of = std::collections::HashMap::new();
    for (assignment, &cell) in dedicated_plan
        .assignments
        .iter()
        .zip(dedicated.cells.iter())
    {
        for &t in assignment.inbound.iter().chain(assignment.outbound.iter()) {
            wrapper_of.insert(t, cell);
        }
    }
    let model = {
        let _s = obs::span("timing_model");
        TimingModel::new(
            die,
            placement,
            library,
            &baseline_report,
            &fanout_report,
            include_wire,
        )
        .with_wrapper_map(wrapper_of)
    };

    // --- Plan construction --------------------------------------------------
    let _plan_span = obs::span("plan");
    let (plan, phases) = match config.method {
        Method::Naive => (WrapPlan::all_dedicated(die), Vec::new()),
        Method::Li => (baseline::li::plan(&model, &thresholds), Vec::new()),
        Method::Ours | Method::Agrawal => {
            let (plan, phases) =
                clique_flow(die, &model, &thresholds, merge_policy, ordering, probe);
            // Overlapped-cone expansion is an *offer*, not a commitment:
            // the greedy partitioner is not monotone in edge count (extra
            // edges can also deplete flip-flops early and starve the
            // second phase), so solve the restricted problem too and keep
            // the globally better plan.
            if thresholds.allows_overlap() && phases.iter().any(|p| p.overlap_edges > 0) {
                let strict = thresholds.without_overlap();
                let (plan2, phases2) =
                    clique_flow(die, &model, &strict, merge_policy, ordering, probe);
                let better = (
                    plan2.additional_wrapper_cells(),
                    std::cmp::Reverse(plan2.reused_scan_ffs()),
                ) < (
                    plan.additional_wrapper_cells(),
                    std::cmp::Reverse(plan.reused_scan_ffs()),
                );
                if better {
                    // Keep the expanded graph's statistics for Fig. 7 but
                    // the restricted plan's hardware.
                    (plan2, phases)
                } else {
                    let _ = phases2;
                    (plan, phases)
                }
            } else {
                (plan, phases)
            }
        }
    };

    drop(_plan_span);

    // --- DFT insertion + post-insertion STA ---------------------------------
    let reused = plan.reused_scan_ffs();
    let additional = plan.additional_wrapper_cells();
    obs::gauge("flow.reused_scan_ffs", reused as u64);
    obs::gauge("flow.additional_wrapper_cells", additional as u64);
    let (testable_die, testable_placement) = {
        let _s = obs::span("dft_insert");
        let testable_die = testable::apply(die, &plan).map_err(|e| FlowError::Dft {
            stage: "dft_insert",
            message: e.to_string(),
        })?;
        let testable_placement = testable_die.placement_for(placement);
        (testable_die, testable_placement)
    };
    let post = {
        let _s = obs::span("post_sta");
        prebond3d_sta::analysis::analyze_with_statics(
            &testable_die.netlist,
            &testable_placement,
            library,
            &sta,
            &[testable_die.test_en],
        )
    };

    Ok(FlowResult {
        plan,
        reused_scan_ffs: reused,
        additional_wrapper_cells: additional,
        phases,
        testable: testable_die,
        placement: testable_placement,
        wns_after: post.wns,
        timing_violation: post.has_violation(),
        clock_period: clock,
    })
}

/// The two-phase clique flow shared by Ours and the Agrawal baseline.
fn clique_flow(
    die: &Netlist,
    model: &TimingModel<'_>,
    thresholds: &Thresholds,
    merge_policy: MergePolicy,
    ordering: OrderingPolicy,
    probe: &dyn crate::testability::TestabilityProbe,
) -> (WrapPlan, Vec<PhaseStats>) {
    let mut available: Vec<GateId> = die.flip_flops();
    let mut plan = WrapPlan::default();
    let mut phases = Vec::with_capacity(2);

    for direction in ordering.phases(die) {
        let tsvs = match direction {
            ReuseKind::Inbound => die.inbound_tsvs(),
            ReuseKind::Outbound => die.outbound_tsvs(),
        };
        let g = graph::build(model, thresholds, probe, &available, &tsvs, direction);
        let partition = clique::partition(&g, model, thresholds, merge_policy);
        phases.push(PhaseStats {
            direction,
            nodes: g.len(),
            edges: g.edge_count,
            overlap_edges: g.overlap_edges,
        });

        for c in &partition.cliques {
            if c.tsv_count() == 0 {
                continue; // an unused flip-flop
            }
            let members: Vec<GateId> = c
                .members
                .iter()
                .copied()
                .filter(|&m| Some(m) != c.ff)
                .collect();
            let (inbound, outbound) = match direction {
                ReuseKind::Inbound => (members, Vec::new()),
                ReuseKind::Outbound => (Vec::new(), members),
            };
            let source = match c.ff {
                Some(ff) => {
                    available.retain(|&f| f != ff);
                    WrapperSource::ReusedScanFf(ff)
                }
                None => WrapperSource::Dedicated,
            };
            plan.assignments.push(WrapAssignment {
                source,
                inbound,
                outbound,
            });
        }
        // TSVs that failed node eligibility: dedicated wrapper each.
        for &t in &g.ineligible_tsvs {
            let (inbound, outbound) = match direction {
                ReuseKind::Inbound => (vec![t], Vec::new()),
                ReuseKind::Outbound => (Vec::new(), vec![t]),
            };
            plan.assignments.push(WrapAssignment {
                source: WrapperSource::Dedicated,
                inbound,
                outbound,
            });
        }
    }
    (plan, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    fn rig() -> (Netlist, Placement, Library) {
        let spec = itc99::circuit("b11").expect("known");
        let die = itc99::generate_die(&spec.dies[0]);
        let placement = place(&die, &PlaceConfig::default(), 1);
        (die, placement, Library::nangate45_like())
    }

    #[test]
    fn every_method_produces_a_valid_plan() {
        let (die, placement, lib) = rig();
        for method in [Method::Ours, Method::Agrawal, Method::Li, Method::Naive] {
            let config = FlowConfig::area_optimized(method);
            let result = run_flow(&die, &placement, &lib, &config).expect("flow runs");
            result.plan.validate(&die).expect("plan covers all TSVs");
            let total_tsvs = die.stats().tsvs();
            assert!(
                result.reused_scan_ffs + result.additional_wrapper_cells <= total_tsvs,
                "{method:?}"
            );
        }
    }

    #[test]
    fn ours_beats_or_matches_agrawal_on_cells() {
        let (die, placement, lib) = rig();
        let ours = run_flow(
            &die,
            &placement,
            &lib,
            &FlowConfig::area_optimized(Method::Ours),
        )
        .unwrap();
        let agrawal = run_flow(
            &die,
            &placement,
            &lib,
            &FlowConfig::area_optimized(Method::Agrawal),
        )
        .unwrap();
        assert!(
            ours.additional_wrapper_cells <= agrawal.additional_wrapper_cells,
            "ours {} vs agrawal {}",
            ours.additional_wrapper_cells,
            agrawal.additional_wrapper_cells
        );
    }

    #[test]
    fn clique_methods_beat_naive_and_li() {
        let (die, placement, lib) = rig();
        let cells = |m: Method| {
            run_flow(&die, &placement, &lib, &FlowConfig::area_optimized(m))
                .unwrap()
                .additional_wrapper_cells
        };
        let ours = cells(Method::Ours);
        let li = cells(Method::Li);
        let naive = cells(Method::Naive);
        assert_eq!(naive, die.stats().tsvs());
        assert!(li <= naive);
        assert!(ours <= li, "ours {ours} vs li {li}");
    }

    #[test]
    fn tight_scenario_ours_meets_timing() {
        let (die, placement, lib) = rig();
        let ours = run_flow(
            &die,
            &placement,
            &lib,
            &FlowConfig::performance_optimized(Method::Ours),
        )
        .unwrap();
        assert!(
            !ours.timing_violation,
            "the accurate model must not violate: wns {}",
            ours.wns_after
        );
    }

    #[test]
    fn area_scenario_never_violates() {
        let (die, placement, lib) = rig();
        for method in [Method::Ours, Method::Agrawal] {
            let r = run_flow(&die, &placement, &lib, &FlowConfig::area_optimized(method)).unwrap();
            assert!(!r.timing_violation, "{method:?}");
        }
    }

    #[test]
    fn ordering_override_is_respected() {
        let (die, placement, lib) = rig();
        let mut config = FlowConfig::area_optimized(Method::Agrawal);
        config.ordering = Some(OrderingPolicy::OutboundFirst);
        let r = run_flow(&die, &placement, &lib, &config).unwrap();
        assert_eq!(r.phases[0].direction, ReuseKind::Outbound);
    }
}

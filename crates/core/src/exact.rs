//! Exact minimal clique partitioning by branch-and-bound.
//!
//! The WCM is NP-hard, so the paper (like Agrawal et al.) solves it with
//! the Algorithm 2 heuristic. For *small* instances an exact optimum is
//! affordable, which lets the test suite and the ablation benches measure
//! the heuristic's optimality gap instead of taking it on faith.
//!
//! The solver enumerates nodes in a fixed order and assigns each either to
//! an existing clique it is fully adjacent to, or to a fresh clique,
//! pruning branches that cannot beat the incumbent. An at-most-one
//! flip-flop-per-clique rule is inherited for free from the graph (no
//! FF–FF edges exist, and clique membership requires full adjacency).

use crate::graph::SharingGraph;

/// Result of the exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactPartition {
    /// Clique membership: `cliques[c]` lists local node indices.
    pub cliques: Vec<Vec<usize>>,
    /// Number of branch-and-bound nodes explored.
    pub explored: usize,
    /// `true` if the search finished (always, unless `node_budget` hit).
    pub optimal: bool,
}

impl ExactPartition {
    /// Number of cliques in the optimum.
    pub fn count(&self) -> usize {
        self.cliques.len()
    }
}

/// Exact minimum clique partition of `graph`.
///
/// `node_budget` bounds the branch-and-bound tree; when exhausted the
/// incumbent is returned with `optimal = false`. Instances up to roughly
/// 40 nodes solve instantly; the experiment dies are far larger, which is
/// exactly why the paper uses the heuristic.
pub fn partition(graph: &SharingGraph, node_budget: usize) -> ExactPartition {
    let n = graph.len();
    // Adjacency as bit rows for O(1) full-adjacency tests (n ≤ 64 words).
    let words = n.div_ceil(64);
    let mut adj = vec![vec![0u64; words]; n];
    for (i, row) in adj.iter_mut().enumerate() {
        for &j in graph.neighbors(i) {
            let j = j as usize;
            row[j / 64] |= 1 << (j % 64);
        }
    }

    // Order nodes by descending degree: constrained nodes first shrink the
    // search tree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.degree(i)));

    struct Search<'a> {
        adj: &'a [Vec<u64>],
        order: &'a [usize],
        // Clique members (as bit rows) and member lists.
        clique_bits: Vec<Vec<u64>>,
        clique_members: Vec<Vec<usize>>,
        best: Option<Vec<Vec<usize>>>,
        best_count: usize,
        explored: usize,
        budget: usize,
        words: usize,
        deadline: prebond3d_resilience::Deadline,
        timed_out: bool,
    }

    impl Search<'_> {
        fn fully_adjacent(&self, node: usize, clique: usize) -> bool {
            let row = &self.adj[node];
            self.clique_bits[clique]
                .iter()
                .zip(row.iter())
                .all(|(&m, &a)| m & !a == 0)
        }

        fn recurse(&mut self, depth: usize) {
            if self.explored >= self.budget {
                return;
            }
            // Phase budget: poll the clock every 512 nodes; on expiry,
            // collapse the node budget so every open frame unwinds and the
            // incumbent is returned with `optimal = false`.
            if self.explored.is_multiple_of(512) && self.deadline.expired() {
                prebond3d_resilience::degrade::record(
                    "clique.exact",
                    "best_so_far",
                    format!(
                        "search stopped after {} nodes at phase budget",
                        self.explored
                    ),
                );
                self.timed_out = true;
                self.budget = self.explored;
                return;
            }
            self.explored += 1;
            if self.clique_bits.len() >= self.best_count {
                return; // cannot beat the incumbent
            }
            if depth == self.order.len() {
                self.best_count = self.clique_bits.len();
                self.best = Some(self.clique_members.clone());
                return;
            }
            let node = self.order[depth];
            // Try existing cliques.
            for c in 0..self.clique_bits.len() {
                if self.fully_adjacent(node, c) {
                    self.clique_bits[c][node / 64] |= 1 << (node % 64);
                    self.clique_members[c].push(node);
                    self.recurse(depth + 1);
                    self.clique_members[c].pop();
                    self.clique_bits[c][node / 64] &= !(1 << (node % 64));
                }
            }
            // Open a fresh clique.
            let mut bits = vec![0u64; self.words];
            bits[node / 64] |= 1 << (node % 64);
            self.clique_bits.push(bits);
            self.clique_members.push(vec![node]);
            self.recurse(depth + 1);
            self.clique_members.pop();
            self.clique_bits.pop();
        }
    }

    let mut search = Search {
        adj: &adj,
        order: &order,
        clique_bits: Vec::new(),
        clique_members: Vec::new(),
        best: None,
        best_count: n + 1,
        explored: 0,
        budget: node_budget,
        words,
        deadline: prebond3d_resilience::Deadline::for_phase(),
        timed_out: false,
    };
    search.recurse(0);

    let optimal = search.explored < node_budget && !search.timed_out;
    let cliques = search.best.unwrap_or_else(|| {
        // Degenerate: budget exhausted before any leaf — singletons.
        (0..n).map(|i| vec![i]).collect()
    });
    ExactPartition {
        cliques,
        explored: search.explored,
        optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::{self, MergePolicy};
    use crate::graph;
    use crate::testability::StructuralProbe;
    use crate::thresholds::Thresholds;
    use crate::timing_model::TimingModel;
    use prebond3d_celllib::{Capacitance, Library, Time};
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_sta::whatif::ReuseKind;
    use prebond3d_sta::{analyze, StaConfig};

    fn small_graph(seed: u64) -> (SharingGraph, prebond3d_netlist::Netlist) {
        let spec = itc99::DieSpec {
            name: "exact_die".into(),
            scan_flip_flops: 6,
            gates: 120,
            inbound_tsvs: 8,
            outbound_tsvs: 4,
            primary_inputs: 3,
            primary_outputs: 3,
            seed,
        };
        let die = itc99::generate_die(&spec);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let library = Library::nangate45_like();
        let report = analyze(&die, &placement, &library, &StaConfig::relaxed());
        let model = TimingModel::new(&die, &placement, &library, &report, &report, true);
        let th = Thresholds::area_optimized(&library);
        let g = graph::build(
            &model,
            &th,
            &StructuralProbe::default(),
            &die.flip_flops(),
            &die.inbound_tsvs(),
            ReuseKind::Inbound,
        );
        (g, die)
    }

    fn is_valid_partition(graph: &SharingGraph, cliques: &[Vec<usize>]) -> bool {
        let mut seen = vec![false; graph.len()];
        for clique in cliques {
            for &m in clique {
                if seen[m] {
                    return false;
                }
                seen[m] = true;
            }
            // All pairs adjacent.
            for (a, &x) in clique.iter().enumerate() {
                for &y in clique.iter().skip(a + 1) {
                    if !graph.neighbors(x).contains(&(y as u32)) {
                        return false;
                    }
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn exact_result_is_a_valid_partition() {
        for seed in [1u64, 2, 3] {
            let (g, _) = small_graph(seed);
            let exact = partition(&g, 5_000_000);
            assert!(exact.optimal, "budget should suffice for tiny graphs");
            assert!(is_valid_partition(&g, &exact.cliques));
        }
    }

    #[test]
    fn heuristic_never_beats_the_optimum() {
        let lib = Library::nangate45_like();
        // Unlimited physical budgets: compare pure clique structure.
        let th = Thresholds {
            cap_th: Capacitance(f64::INFINITY),
            s_th: Time(f64::NEG_INFINITY),
            ..Thresholds::area_optimized(&lib)
        };
        for seed in [1u64, 2, 3, 4] {
            let (g, die) = small_graph(seed);
            let placement = place(&die, &PlaceConfig::default(), 1);
            let report = analyze(&die, &placement, &lib, &StaConfig::relaxed());
            let model = TimingModel::new(&die, &placement, &lib, &report, &report, true);
            let heur = clique::partition(&g, &model, &th, MergePolicy::Accurate);
            let exact = partition(&g, 5_000_000);
            assert!(exact.optimal);
            assert!(
                heur.cliques.len() >= exact.count(),
                "seed {seed}: heuristic {} cliques vs optimum {}",
                heur.cliques.len(),
                exact.count()
            );
            // The heuristic should be reasonably close on these sizes.
            assert!(
                heur.cliques.len() <= exact.count() + g.len() / 3,
                "seed {seed}: gap too large ({} vs {})",
                heur.cliques.len(),
                exact.count()
            );
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (g, _) = small_graph(1);
        let exact = partition(&g, 3);
        assert!(!exact.optimal);
        assert!(is_valid_partition(&g, &exact.cliques) || exact.cliques.len() == g.len());
    }
}

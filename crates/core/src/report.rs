//! Plain-text rendering of flow results (paper-style rows).

use std::fmt::Write as _;

use crate::flow::FlowResult;

/// One row of a Table III-style comparison.
pub fn result_row(die_name: &str, result: &FlowResult) -> String {
    format!(
        "{:<12} reused={:<4} additional={:<4} wns={:>10} violation={}",
        die_name,
        result.reused_scan_ffs,
        result.additional_wrapper_cells,
        result.wns_after.to_string(),
        if result.timing_violation { "X" } else { "-" },
    )
}

/// Multi-line phase summary (graph sizes per direction).
pub fn phase_summary(result: &FlowResult) -> String {
    let mut out = String::new();
    for p in &result.phases {
        let _ = writeln!(
            out,
            "  {:?}: {} nodes, {} edges ({} via overlapped cones)",
            p.direction, p.nodes, p.edges, p.overlap_edges
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::flow::{run_flow, FlowConfig, Method};
    use prebond3d_celllib::Library;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    #[test]
    fn rows_render() {
        let spec = itc99::circuit("b11").expect("known");
        let die = itc99::generate_die(&spec.dies[0]);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let lib = Library::nangate45_like();
        let r = run_flow(
            &die,
            &placement,
            &lib,
            &FlowConfig::area_optimized(Method::Ours),
        )
        .unwrap();
        let row = super::result_row("b11_die0", &r);
        assert!(row.contains("reused="));
        let phases = super::phase_summary(&r);
        assert!(phases.contains("nodes"));
    }
}

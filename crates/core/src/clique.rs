//! Algorithm 2: the heuristic clique-partitioning solver.
//!
//! All nodes start as singleton cliques. Repeatedly take the lowest-degree
//! node `n1` and its lowest-degree neighbour `n2`; if the merged clique's
//! wrapper cell would stay within its budgets, merge them (the new node
//! inherits the *common* neighbours, preserving clique-ness); otherwise
//! delete the edge. Terminates when no edges remain.
//!
//! The budget check is the paper's `cap < cap_th` guard made concrete, in
//! two fidelities:
//!
//! * [`MergePolicy::CapacitanceOnly`] (Agrawal) — only the accumulated pin
//!   capacitance on the shared cell is bounded;
//! * [`MergePolicy::Accurate`] (the paper) — additionally the *delay*
//!   consequences are bounded against the members' slack: the drive-delay
//!   growth of the shared cell's Q net plus wire delay for inbound
//!   cliques, and the XOR-chain depth plus wire delay for outbound
//!   cliques. This clique-level accumulation is what pairwise edge checks
//!   alone cannot see, and skipping it is precisely how Agrawal's method
//!   ends up violating timing in Table III.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prebond3d_celllib::{Capacitance, Distance, Time};
use prebond3d_netlist::{GateId, GateKind};
use prebond3d_obs as obs;
use prebond3d_sta::whatif::ReuseKind;

use crate::graph::{NodeKind, SharingGraph};
use crate::thresholds::Thresholds;
use crate::timing_model::TimingModel;

/// How merges are priced (the ablation lever between the paper's model and
/// Agrawal's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Capacitance + wire delay + slack accumulation (paper).
    Accurate,
    /// Capacitance only (Agrawal).
    CapacitanceOnly,
}

/// One clique of the final partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Clique {
    /// Member gate ids (TSVs, plus at most one scan flip-flop).
    pub members: Vec<GateId>,
    /// The reused scan flip-flop, if the clique has one.
    pub ff: Option<GateId>,
    /// Accumulated drive load on the shared cell (inbound phases).
    pub drive_load: Capacitance,
    /// Accumulated observation-chain delay (outbound phases).
    pub capture_delay: Time,
    /// Physical anchor: the flip-flop if present, else the first TSV.
    pub anchor: GateId,
    /// Worst member slack (headroom for accumulated delays).
    pub min_slack: Time,
}

impl Clique {
    /// Number of TSVs in the clique.
    pub fn tsv_count(&self) -> usize {
        self.members.len() - usize::from(self.ff.is_some())
    }
}

/// The result of the partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct CliquePartition {
    /// Final cliques (singletons included).
    pub cliques: Vec<Clique>,
    /// Merges performed.
    pub merges: usize,
    /// Merge attempts rejected by the load/slack budget.
    pub rejected: usize,
}

impl CliquePartition {
    /// Cliques that reuse a scan flip-flop for at least one TSV.
    pub fn reused(&self) -> usize {
        self.cliques
            .iter()
            .filter(|c| c.ff.is_some() && c.tsv_count() > 0)
            .count()
    }

    /// Cliques of TSVs with no flip-flop: each needs one additional
    /// wrapper cell.
    pub fn additional(&self) -> usize {
        self.cliques
            .iter()
            .filter(|c| c.ff.is_none() && c.tsv_count() > 0)
            .count()
    }
}

/// Internal clique state during partitioning.
#[derive(Clone)]
struct State {
    members: Vec<usize>,
    ff: Option<GateId>,
    /// Pin + wire capacitance the shared cell's Q must drive.
    drive_load: Capacitance,
    /// Baseline load already absorbed by calibration (the flip-flop's
    /// pre-existing fanout, or a dedicated cell's single adjacent mux).
    base_load: Capacitance,
    /// Accumulated wire delay on the drive side (inbound).
    wire_delay: Time,
    /// Accumulated observation-chain delay (outbound).
    capture_delay: Time,
    anchor: GateId,
    /// Worst slack among TSV members (the paths the penalties land on).
    min_slack: Time,
    /// Q-side slack of the reused flip-flop (its functional fanout paths
    /// absorb the drive-delay growth); `INFINITY` when no FF.
    q_slack: Time,
}

/// Remove `x` from the sorted list `v`; no-op when absent.
fn remove_sorted(v: &mut Vec<usize>, x: usize) {
    if let Ok(p) = v.binary_search(&x) {
        v.remove(p);
    }
}

/// Candidate score of node `j` — (carries a flip-flop, degree) — through
/// the generation-stamped cache. A cached value is valid while no merge
/// or rejection has touched `j`'s neighborhood since it was computed;
/// with the cache off every read recomputes. Either way the answer is a
/// pure function of the current state, so the modes are byte-identical.
#[allow(clippy::too_many_arguments)]
fn candidate_score(
    j: usize,
    cache_on: bool,
    generation: u64,
    states: &[State],
    neighbors: &[Vec<usize>],
    touch_gen: &[u64],
    score_gen: &mut [u64],
    score_val: &mut [(bool, usize)],
    rescores: &mut u64,
) -> (bool, usize) {
    if cache_on && score_gen[j] >= touch_gen[j] {
        return score_val[j];
    }
    *rescores += 1;
    let s = (states[j].ff.is_some(), neighbors[j].len());
    score_val[j] = s;
    score_gen[j] = generation;
    s
}

/// Combine two clique states across a wire of length `dist`.
fn merge_states(
    a: &State,
    b: &State,
    dist: Distance,
    include_wire: bool,
    model: &TimingModel<'_>,
) -> State {
    let library = model.library();
    let reuse = library.reuse();
    let wire_cap = if include_wire {
        library.wire().driver_load(dist)
    } else {
        Capacitance::ZERO
    };
    let wire_delay_step = if include_wire {
        library.wire().elmore_delay(dist, reuse.mux_input_cap)
    } else {
        Time(0.0)
    };
    let xor_step = model.chain_stage_delay(dist);
    let (base_load, q_slack, anchor, ff) = if a.ff.is_some() {
        (a.base_load, a.q_slack, a.anchor, a.ff)
    } else if b.ff.is_some() {
        (b.base_load, b.q_slack, b.anchor, b.ff)
    } else {
        (a.base_load, a.q_slack.min(b.q_slack), a.anchor, None)
    };
    State {
        members: a.members.iter().chain(b.members.iter()).copied().collect(),
        ff,
        // The shared cell's load accumulates pins plus (accurate model)
        // buffered wire segments — the same charges the signoff STA makes.
        drive_load: a.drive_load + b.drive_load + wire_cap,
        base_load,
        wire_delay: a.wire_delay.max(b.wire_delay) + wire_delay_step,
        capture_delay: a.capture_delay.max(b.capture_delay) + xor_step,
        anchor,
        min_slack: a.min_slack.min(b.min_slack),
        q_slack,
    }
}

/// Run Algorithm 2 on `graph`.
pub fn partition(
    graph: &SharingGraph,
    model: &TimingModel<'_>,
    thresholds: &Thresholds,
    policy: MergePolicy,
) -> CliquePartition {
    let _span = obs::span("clique_partition");
    let n = graph.len();
    let report = model.report();
    let library = model.library();
    let netlist = model.netlist();
    let rd = library.timing(GateKind::ScanDff).drive_resistance;
    let include_wire = policy == MergePolicy::Accurate;

    // Candidate scoring: each node's initial budget state is an
    // independent set of timing-model queries (loads, slacks, anchor
    // contributions), so it runs on the pool; `par_range_map` returns the
    // states in node order, identical to the serial loop. The merge loop
    // below is inherently sequential — each merge decision depends on the
    // partition produced by all previous ones.
    let mut states: Vec<State> = prebond3d_pool::par_range_map(n, |i| {
        let gate = graph.nodes[i];
        match graph.kinds[i] {
            NodeKind::ScanFf => {
                // For outbound sharing the relevant flip-flop slack is
                // the D-side (capture) path; for inbound it is the Q
                // side. Track both.
                let d_driver = netlist.gate(gate).inputs[0];
                State {
                    members: vec![i],
                    ff: Some(gate),
                    drive_load: report.load(gate),
                    base_load: report.load(gate),
                    wire_delay: Time(0.0),
                    capture_delay: Time(0.0),
                    anchor: gate,
                    min_slack: match graph.direction {
                        ReuseKind::Inbound => Time(f64::INFINITY),
                        ReuseKind::Outbound => report.slack(d_driver),
                    },
                    q_slack: report.slack(gate),
                }
            }
            NodeKind::Tsv => State {
                members: vec![i],
                ff: None,
                // The shared cell pays one mux pin per inbound TSV; a
                // dedicated cell's baseline (one adjacent mux) is
                // already absorbed by the tight-clock calibration.
                drive_load: match graph.direction {
                    ReuseKind::Inbound => model.drive_contribution(Distance(0.0)),
                    ReuseKind::Outbound => Capacitance::ZERO,
                },
                base_load: match graph.direction {
                    ReuseKind::Inbound => model.drive_contribution(Distance(0.0)),
                    ReuseKind::Outbound => Capacitance::ZERO,
                },
                wire_delay: Time(0.0),
                capture_delay: Time(0.0),
                anchor: gate,
                min_slack: match graph.direction {
                    ReuseKind::Inbound => model.inbound_anchor_slack(gate),
                    ReuseKind::Outbound => model.outbound_tap_slack(gate),
                },
                q_slack: Time(f64::INFINITY),
            },
        }
    });

    // Sorted neighbor vectors (CSR rows are already ascending): binary
    // search for removal, two-pointer walks for intersection — no
    // per-node tree allocations.
    let mut neighbors: Vec<Vec<usize>> = (0..n)
        .map(|i| graph.neighbors(i).iter().map(|&j| j as usize).collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    // (degree, node) min-heap with lazy invalidation.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = (0..n)
        .filter(|&i| !neighbors[i].is_empty())
        .map(|i| Reverse((neighbors[i].len(), i)))
        .collect();

    // Incremental candidate scoring (DESIGN.md §11): a node's selection
    // score — (carries a flip-flop, current degree) — is cached under a
    // generation stamp and recomputed only after a merge or rejection
    // touched that node's neighborhood, instead of on every read the way
    // the `PREBOND3D_NO_CACHE=1` reference mode does. Recomputes are
    // tallied as `clique.candidate_rescores`.
    let score_cache_on = prebond3d_netlist::tuning::cache_enabled();
    let mut generation: u64 = 1;
    let mut touch_gen: Vec<u64> = vec![1; n];
    let mut score_gen: Vec<u64> = vec![0; n];
    let mut score_val: Vec<(bool, usize)> = vec![(false, 0); n];
    let mut rescores = 0u64;

    let mut merges = 0usize;
    let mut rejected = 0usize;
    // Phase budget: each merge decision is independent of time, so the
    // partition built so far is always valid — on expiry we simply stop
    // merging and emit the current (coarser) partition.
    let deadline = prebond3d_resilience::Deadline::for_phase();

    while let Some(Reverse((deg, n1))) = heap.pop() {
        if deadline.expired() {
            prebond3d_resilience::degrade::record(
                "clique",
                "stop_merging",
                format!(
                    "{merges} merges done, {} candidates dropped at phase budget",
                    heap.len()
                ),
            );
            break;
        }
        if n1 >= alive.len() || !alive[n1] || neighbors[n1].len() != deg || deg == 0 {
            continue; // stale entry
        }
        // Lowest-degree live neighbour, preferring one that brings a
        // (cost-free) reused flip-flop into the clique: the WCM objective
        // counts only flip-flop-less cliques, so gluing TSVs onto
        // flip-flop cliques first converts would-be dedicated cells into
        // reuse.
        let n1_has_ff = states[n1].ff.is_some();
        let mut best: Option<((usize, usize, usize), usize)> = None;
        for idx in 0..neighbors[n1].len() {
            let j = neighbors[n1][idx];
            if !alive[j] {
                continue;
            }
            let (has_ff, deg) = candidate_score(
                j,
                score_cache_on,
                generation,
                &states,
                &neighbors,
                &touch_gen,
                &mut score_gen,
                &mut score_val,
                &mut rescores,
            );
            let brings_ff = !n1_has_ff && has_ff;
            let key = (usize::from(!brings_ff), deg, j);
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, j));
            }
        }
        let n2 = match best {
            Some((_, j)) => j,
            None => continue,
        };

        // --- Merge feasibility (`cap < cap_th`, plus the accurate model's
        // delay accumulation) -------------------------------------------------
        let (a, b) = (&states[n1], &states[n2]);
        let dist = if include_wire {
            model.distance(a.anchor, b.anchor)
        } else {
            Distance(0.0)
        };
        let merged = merge_states(a, b, dist, include_wire, model);
        let feasible = match graph.direction {
            ReuseKind::Inbound => {
                let cap_ok = merged.drive_load <= thresholds.cap_th;
                if !include_wire {
                    cap_ok
                } else {
                    // Drive-delay growth beyond the baseline lands on every
                    // path from the shared cell and on every member TSV's
                    // functional path (plus its wire).
                    let drive_penalty = rd * (merged.drive_load - merged.base_load);
                    cap_ok
                        && merged.min_slack - drive_penalty - merged.wire_delay >= thresholds.s_th
                        && merged.q_slack - drive_penalty >= thresholds.s_th
                }
            }
            ReuseKind::Outbound => {
                if !include_wire {
                    // Agrawal bounds only the XOR tap capacitance, which is
                    // constant per member — nothing accumulates in his
                    // model, so any merge passes.
                    true
                } else {
                    // Tap-driver slacks already include the capture setup;
                    // the capture-hardware insertion (XOR + mux, exact
                    // delays) sits on top of the XOR chain.
                    let capture_overhead = model.capture_insertion_delay();
                    merged.min_slack - merged.capture_delay - capture_overhead >= thresholds.s_th
                }
            }
        };

        if !feasible {
            rejected += 1;
            generation += 1;
            remove_sorted(&mut neighbors[n1], n2);
            remove_sorted(&mut neighbors[n2], n1);
            touch_gen[n1] = generation;
            touch_gen[n2] = generation;
            if !neighbors[n1].is_empty() {
                heap.push(Reverse((neighbors[n1].len(), n1)));
            }
            if !neighbors[n2].is_empty() {
                heap.push(Reverse((neighbors[n2].len(), n2)));
            }
            continue;
        }

        // --- Merge ---------------------------------------------------------
        merges += 1;
        generation += 1;
        // Common live neighbors by a two-pointer walk over the sorted rows.
        let (row1, row2) = (&neighbors[n1], &neighbors[n2]);
        let mut common: Vec<usize> = Vec::with_capacity(row1.len().min(row2.len()));
        let (mut p, mut q) = (0usize, 0usize);
        while p < row1.len() && q < row2.len() {
            match row1[p].cmp(&row2[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    if alive[row1[p]] {
                        common.push(row1[p]);
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
        let new_id = states.len();
        states.push(merged);
        alive.push(true);
        neighbors.push(common.clone());
        touch_gen.push(generation);
        score_gen.push(0);
        score_val.push((false, 0));
        for &c in &common {
            // `new_id` exceeds every existing index, so push keeps the
            // row sorted.
            neighbors[c].push(new_id);
            touch_gen[c] = generation;
        }
        // Retire n1, n2.
        for &old in &[n1, n2] {
            alive[old] = false;
            let olds = std::mem::take(&mut neighbors[old]);
            for j in olds {
                remove_sorted(&mut neighbors[j], old);
                touch_gen[j] = generation;
                if alive[j] && !neighbors[j].is_empty() {
                    heap.push(Reverse((neighbors[j].len(), j)));
                }
            }
        }
        if !neighbors[new_id].is_empty() {
            heap.push(Reverse((neighbors[new_id].len(), new_id)));
        }
    }

    let cliques = states
        .iter()
        .zip(alive.iter())
        .filter(|(_, &a)| a)
        .map(|(s, _)| Clique {
            members: s.members.iter().map(|&i| graph.nodes[i]).collect(),
            ff: s.ff,
            drive_load: s.drive_load,
            capture_delay: s.capture_delay,
            anchor: s.anchor,
            min_slack: s.min_slack,
        })
        .collect();

    // Aggregated per partition() call — the merge loop stays probe-free.
    obs::count("clique.merge_attempts", (merges + rejected) as u64);
    obs::count("clique.merges", merges as u64);
    obs::count("clique.rejected", rejected as u64);
    obs::count("clique.candidate_rescores", rescores);

    CliquePartition {
        cliques,
        merges,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::testability::StructuralProbe;
    use prebond3d_celllib::Library;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_sta::{analyze, StaConfig};

    fn run(direction: ReuseKind) -> (CliquePartition, usize, usize) {
        let spec = itc99::DieSpec {
            name: "die".into(),
            scan_flip_flops: 16,
            gates: 250,
            inbound_tsvs: 12,
            outbound_tsvs: 12,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 5,
        };
        let die = itc99::generate_die(&spec);
        let placement = place(&die, &PlaceConfig::default(), 1);
        let library = Library::nangate45_like();
        let report = analyze(
            &die,
            &placement,
            &library,
            &StaConfig::with_period(Time(3000.0)),
        );
        let model = TimingModel::new(&die, &placement, &library, &report, &report, true);
        let th = Thresholds::area_optimized(&library);
        let tsvs = match direction {
            ReuseKind::Inbound => die.inbound_tsvs(),
            ReuseKind::Outbound => die.outbound_tsvs(),
        };
        let g = graph::build(
            &model,
            &th,
            &StructuralProbe::default(),
            &die.flip_flops(),
            &tsvs,
            direction,
        );
        let p = partition(&g, &model, &th, MergePolicy::Accurate);
        (p, die.flip_flops().len(), tsvs.len())
    }

    #[test]
    fn partition_covers_every_node_once() {
        for direction in [ReuseKind::Inbound, ReuseKind::Outbound] {
            let (p, ffs, tsvs) = run(direction);
            let total_members: usize = p.cliques.iter().map(|c| c.members.len()).sum();
            assert_eq!(total_members, ffs + tsvs, "{direction:?}");
            // At most one FF per clique.
            for c in &p.cliques {
                let ff_members = c.members.iter().filter(|&&m| Some(m) == c.ff).count();
                assert!(ff_members <= 1);
            }
        }
    }

    #[test]
    fn merging_reduces_wrapper_cells_vs_naive() {
        let (p, _, tsvs) = run(ReuseKind::Inbound);
        // The paper's cost metric is *additional* wrapper cells: reused
        // scan flip-flops are free. Naive inserts one cell per TSV.
        assert!(
            p.additional() < tsvs,
            "reuse should beat the naive bound: {} vs {tsvs}",
            p.additional()
        );
        assert!(p.merges > 0);
        assert!(p.reused() > 0);
    }

    #[test]
    fn inbound_cliques_respect_cap_threshold() {
        let (p, _, _) = run(ReuseKind::Inbound);
        let lib = Library::nangate45_like();
        let th = Thresholds::area_optimized(&lib);
        for c in &p.cliques {
            assert!(
                c.drive_load <= th.cap_th,
                "clique load {} exceeds cap_th {}",
                c.drive_load,
                th.cap_th
            );
        }
    }

    #[test]
    fn outbound_cliques_track_chain_delay() {
        let (p, _, _) = run(ReuseKind::Outbound);
        let lib = Library::nangate45_like();
        for c in &p.cliques {
            if c.tsv_count() >= 2 {
                // A k-member chain has at least k-1 XOR stages of delay.
                let floor = lib.reuse().xor_delay * (c.tsv_count() as f64 - 1.0);
                assert!(
                    c.capture_delay >= floor,
                    "chain delay {} below floor {}",
                    c.capture_delay,
                    floor
                );
            }
        }
    }
}

//! # prebond3d-dataflow
//!
//! A zero-dependency monotone-framework fixpoint engine over the netlist
//! DAG, plus the three concrete analyses the flow consumes (DESIGN.md
//! §14):
//!
//! 1. **Ternary constant propagation** ([`constprop`]) on the value-set
//!    lattice `℘({0,1,X})`: flags provably-constant nets, dead gates, and
//!    — combined with [`reach`] — provably-untestable stuck-at faults.
//! 2. **X-propagation** (the same fixpoint, read through
//!    [`constprop::Constants::x_only_nets`]): cones dominated by unscanned
//!    state elements and floating TSVs that pre-bond test cannot control.
//! 3. **SCOAP-style scoring** ([`scoring`]): controllability and
//!    observability costs per net, formula-compatible with the ATPG
//!    crate's PODEM guidance.
//!
//! [`boundary::check`] composes the analyses into the wrapper-boundary
//! admission gate used by `prebond3d-serve` and the `P3805` lint.
//!
//! ## Determinism
//!
//! The solver ([`solver::solve`]) iterates in Jacobi rounds and relies on
//! the pool's order-preserving merge, so every fact vector — and the
//! round/evaluation statistics — is **byte-identical at any
//! `PREBOND3D_THREADS`**. Downstream consumers (ATPG pruning, P38xx
//! diagnostics, the serve gate) inherit that contract.

pub mod boundary;
pub mod constprop;
pub mod lattice;
pub mod reach;
pub mod scoring;
pub mod solver;

pub use boundary::BoundaryIssue;
pub use constprop::{Constants, SourceModel};
pub use lattice::{eval_set, eval_tv, Tv, ValueSet};
pub use scoring::{AccessView, Scores};
pub use solver::{solve, Fixpoint, Framework};

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;
    use prebond3d_pool as pool;

    /// The headline determinism contract: every analysis produces
    /// byte-identical results at any thread count.
    #[test]
    fn analyses_are_byte_identical_across_thread_counts() {
        let spec = itc99::DieSpec {
            name: "df".into(),
            scan_flip_flops: 16,
            gates: 400,
            inbound_tsvs: 8,
            outbound_tsvs: 8,
            primary_inputs: 5,
            primary_outputs: 5,
            seed: 0xD47A,
        };
        let die = itc99::generate_die(&spec);
        let run = || {
            let consts = Constants::compute(&die, &SourceModel::pre_bond(&die));
            let scores = Scores::compute(&die, &AccessView::pre_bond(&die));
            let issues = boundary::check(&die);
            (consts, scores, issues)
        };
        let base = pool::with_threads(1, run);
        for t in [4, 8] {
            let got = pool::with_threads(t, run);
            assert_eq!(got.0, base.0, "constprop differs at {t} threads");
            assert_eq!(got.1, base.1, "scoring differs at {t} threads");
            assert_eq!(got.2, base.2, "boundary differs at {t} threads");
        }
    }

    /// The fixpoint must agree with a plain topological evaluation on the
    /// DAG (the solver's generality is for ordering-freedom, not for a
    /// different answer).
    #[test]
    fn fixpoint_matches_topological_reference() {
        let die = itc99::generate_flat("df", 300, 12, 6, 6, 7);
        let model = SourceModel::pre_bond(&die);
        let consts = Constants::compute(&die, &model);
        let order = prebond3d_netlist::traverse::combinational_order(&die);
        let mut reference = vec![ValueSet::EMPTY; die.len()];
        for id in order {
            let gate = die.gate(id);
            reference[id.index()] = match gate.kind {
                prebond3d_netlist::GateKind::Const0 => ValueSet::ZERO,
                prebond3d_netlist::GateKind::Const1 => ValueSet::ONE,
                kind if kind.is_combinational() => {
                    let inputs: Vec<ValueSet> =
                        gate.inputs.iter().map(|&i| reference[i.index()]).collect();
                    eval_set(kind, &inputs)
                }
                _ => model.source(id),
            };
        }
        assert_eq!(consts.sets, reference);
    }
}

//! Structural observability reachability.
//!
//! `observable[n]` answers: *can a value difference at net `n` reach an
//! observation point within one test frame?* — following exactly the
//! fault simulator's event propagation rule: a difference crosses from a
//! net into a fanout gate only when that gate is combinational and not a
//! frame-boundary marker (`Output`/`TsvOut`); observation happens at the
//! listed observed nets themselves (sink *drivers*, in the access model's
//! convention).
//!
//! `observable[n] = observed[n] ∨ ∃ fanout g: propagating(g) ∧ observable[g]`
//!
//! A `false` here is a structural proof that no pattern can ever turn a
//! fault effect at `n` into a miscompare — one of the two untestability
//! certificates the ATPG pruner uses.

use prebond3d_netlist::{GateId, GateKind, Netlist};

/// Does a difference propagate *through* a gate of this kind? Mirrors the
/// fault simulator's frame-boundary rule: sequential kinds capture (their
/// D pin is the observation point, not a through-path) and `Output` /
/// `TsvOut` terminate the frame.
pub fn propagates(kind: GateKind) -> bool {
    kind.is_combinational() && !matches!(kind, GateKind::Output | GateKind::TsvOut)
}

/// Backward reachability from `observed` nets over propagating gates.
/// `observed` is indexed by `GateId`; the result is too. Deterministic by
/// construction (pure set computation).
pub fn observable(netlist: &Netlist, observed: &[bool]) -> Vec<bool> {
    assert_eq!(observed.len(), netlist.len());
    let mut reach = observed.to_vec();
    // Seed with every observed net, then walk fan-in: a net n becomes
    // observable when some propagating fanout gate of n is observable.
    let mut stack: Vec<GateId> = netlist.ids().filter(|&id| reach[id.index()]).collect();
    while let Some(id) = stack.pop() {
        // A difference enters `id`'s inputs only if `id` evaluates, i.e.
        // `id` is a propagating gate. (Observed source nets are ends of
        // the walk: nothing upstream of a 0-arity gate.)
        if !propagates(netlist.gate(id).kind) {
            continue;
        }
        for &input in &netlist.gate(id).inputs {
            if !reach[input.index()] {
                reach[input.index()] = true;
                stack.push(input);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn cone_feeding_only_a_tsv_out_is_unobservable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.tsv_out(g, "to");
        let h = b.gate(GateKind::Buf, &[a], "h");
        b.output(h, "o");
        let n = b.finish().unwrap();
        // Observed set: drivers of Output sinks only (pre-bond, no wrap).
        let mut observed = vec![false; n.len()];
        observed[h.index()] = true;
        let reach = observable(&n, &observed);
        assert!(reach[h.index()]);
        assert!(reach[a.index()], "a reaches o through h");
        assert!(!reach[g.index()], "g only feeds the floating TSV");
    }

    #[test]
    fn propagation_stops_at_frame_boundaries() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let o = b.output(a, "o");
        let n = b.finish().unwrap();
        // Observing the *Output marker itself* (not its driver) must not
        // leak upstream: Output is a frame boundary, not a through-path.
        let mut observed = vec![false; n.len()];
        observed[o.index()] = true;
        let reach = observable(&n, &observed);
        assert!(!reach[a.index()]);
    }
}

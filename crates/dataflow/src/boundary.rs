//! Static testability of the wrapper boundary.
//!
//! The wrapper-cell reduction flow spends its ATPG budget proving which
//! TSV wrapper cells can be shared or dropped. That work is wasted — and
//! the resulting coverage tables silently skewed — when a boundary net is
//! *statically* untestable no matter how the die is wrapped:
//!
//! * an **outbound TSV whose driver can never toggle**: even with every
//!   inbound TSV wrapped (fully controllable), the captured value is a
//!   provable constant or a provable X — no pattern exercises the
//!   boundary;
//! * an **inbound TSV with a dead fanout cone**: the value a wrapper cell
//!   would inject can never reach any capture point (output, scan
//!   flip-flop, wrapper cell, or wrapped outbound TSV), so the inserted
//!   cell is unverifiable.
//!
//! [`check`] returns these findings in deterministic (ascending TSV id)
//! order; the serve daemon uses it as a submit-time admission gate and
//! the lint pass surfaces it as `P3805`.

use prebond3d_netlist::{GateId, GateKind, Netlist};

use crate::constprop::{Constants, SourceModel};
use crate::reach;

/// Why a boundary net is statically untestable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryIssue {
    /// The outbound TSV's driver is a provable constant.
    ConstantDriver {
        /// The outbound TSV endpoint.
        tsv: GateId,
        /// The driving net.
        driver: GateId,
        /// The constant value.
        value: bool,
    },
    /// The outbound TSV's driver is X on every pattern even with all
    /// inbound TSVs wrapped.
    UncontrollableDriver {
        /// The outbound TSV endpoint.
        tsv: GateId,
        /// The driving net.
        driver: GateId,
    },
    /// The inbound TSV's fanout cone reaches no capture point.
    DeadFanout {
        /// The inbound TSV endpoint.
        tsv: GateId,
    },
}

impl BoundaryIssue {
    /// The TSV endpoint this issue is about.
    pub fn tsv(&self) -> GateId {
        match *self {
            BoundaryIssue::ConstantDriver { tsv, .. }
            | BoundaryIssue::UncontrollableDriver { tsv, .. }
            | BoundaryIssue::DeadFanout { tsv } => tsv,
        }
    }

    /// Human-readable description naming the TSV by netlist name.
    pub fn describe(&self, netlist: &Netlist) -> String {
        match *self {
            BoundaryIssue::ConstantDriver { tsv, driver, value } => format!(
                "outbound TSV `{}` is driven by `{}` which is provably constant {}",
                netlist.gate(tsv).name,
                netlist.gate(driver).name,
                u8::from(value),
            ),
            BoundaryIssue::UncontrollableDriver { tsv, driver } => format!(
                "outbound TSV `{}` is driven by `{}` which is X on every pattern",
                netlist.gate(tsv).name,
                netlist.gate(driver).name,
            ),
            BoundaryIssue::DeadFanout { tsv } => format!(
                "inbound TSV `{}` has no path to any capture point",
                netlist.gate(tsv).name,
            ),
        }
    }
}

/// Statically check every TSV boundary net of `netlist`. Empty result ⇔
/// every boundary can, at least structurally, be exercised once wrapped.
pub fn check(netlist: &Netlist) -> Vec<BoundaryIssue> {
    // Controllability side: every inbound TSV modeled as wrapped.
    let consts = Constants::compute(netlist, &SourceModel::assume_wrapped(netlist));
    // Observability side: capture points assuming outbound TSVs are
    // wrapped too — their drivers become observable.
    let mut observed = vec![false; netlist.len()];
    for (_, gate) in netlist.iter() {
        if matches!(
            gate.kind,
            GateKind::Output | GateKind::ScanDff | GateKind::Wrapper | GateKind::TsvOut
        ) {
            observed[gate.inputs[0].index()] = true;
        }
    }
    let observable = reach::observable(netlist, &observed);

    let mut issues = Vec::new();
    for tsv in netlist.outbound_tsvs() {
        let driver = netlist.gate(tsv).inputs[0];
        let set = consts.set(driver);
        if let Some(value) = set.is_constant() {
            issues.push(BoundaryIssue::ConstantDriver { tsv, driver, value });
        } else if set.is_x_only() {
            issues.push(BoundaryIssue::UncontrollableDriver { tsv, driver });
        }
    }
    for tsv in netlist.inbound_tsvs() {
        if !observable[tsv.index()] {
            issues.push(BoundaryIssue::DeadFanout { tsv });
        }
    }
    issues.sort_by_key(BoundaryIssue::tsv);
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn healthy_boundary_is_clean() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::Xor, &[a, ti], "g");
        b.tsv_out(g, "to");
        b.output(g, "o");
        let n = b.finish().unwrap();
        assert!(check(&n).is_empty());
    }

    #[test]
    fn constant_driver_is_flagged() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c1 = b.gate(GateKind::Const1, &[], "c1");
        let g = b.gate(GateKind::Or, &[a, c1], "g"); // a | 1 ≡ 1
        let to = b.tsv_out(g, "to");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let issues = check(&n);
        assert_eq!(
            issues,
            vec![BoundaryIssue::ConstantDriver {
                tsv: to,
                driver: g,
                value: true
            }]
        );
        assert!(issues[0].describe(&n).contains("to"));
    }

    #[test]
    fn unscanned_state_makes_driver_uncontrollable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let q = b.dff(a, "q"); // plain (unscanned) flip-flop: X pre-bond
        let g = b.gate(GateKind::Buf, &[q], "g");
        let to = b.tsv_out(g, "to");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let issues = check(&n);
        assert_eq!(
            issues,
            vec![BoundaryIssue::UncontrollableDriver { tsv: to, driver: g }]
        );
    }

    #[test]
    fn dead_inbound_cone_is_flagged_and_wrapped_outbound_counts_as_capture() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        // ti1 feeds only an unscanned flip-flop: dead pre-bond cone.
        let ti1 = b.tsv_in("ti1");
        let g1 = b.gate(GateKind::And, &[ti1, a], "g1");
        b.dff(g1, "q");
        // ti2 feeds an outbound TSV: once both are wrapped this is a
        // perfectly testable through-path.
        let ti2 = b.tsv_in("ti2");
        let g2 = b.gate(GateKind::Not, &[ti2], "g2");
        b.tsv_out(g2, "to");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let issues = check(&n);
        assert_eq!(issues, vec![BoundaryIssue::DeadFanout { tsv: ti1 }]);
    }
}

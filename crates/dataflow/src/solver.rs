//! The monotone-framework worklist solver.
//!
//! ## Determinism contract
//!
//! The solver iterates in **rounds**. Every round evaluates the transfer
//! function of each frontier node against a frozen snapshot of the
//! previous round's facts (Jacobi iteration), then applies all updates in
//! ascending node order and seeds the next frontier with the sorted,
//! deduplicated dependents of the nodes that changed. Because transfer
//! evaluation within a round only reads the snapshot, the per-round
//! results are independent of how the frontier is split across threads —
//! [`prebond3d_pool::par_map`]'s submission-order merge then makes the
//! whole fixpoint **byte-identical at any `PREBOND3D_THREADS`**, including
//! the round and evaluation counts reported on the result.
//!
//! ## Termination
//!
//! Transfer functions must be monotone with respect to the fact lattice
//! and the lattice must have finite height. A node is re-evaluated only
//! when one of the facts it reads changed, so each node runs at most
//! `1 + height × indegree` times.

use prebond3d_obs as obs;
use prebond3d_pool as pool;

/// One dataflow problem: facts, initial assignment, transfer, dependency
/// edges. Nodes are dense `u32` indices (`0..len`), matching `GateId`.
pub trait Framework: Sync {
    /// The lattice element stored per node.
    type Fact: Clone + PartialEq + Send + Sync;

    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the framework is empty (no nodes).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The initial fact of `node` (bottom, or an injected source fact).
    fn initial(&self, node: u32) -> Self::Fact;

    /// Recompute `node`'s fact from the current assignment. Must be
    /// monotone: growing any read fact may only grow the result.
    fn transfer(&self, node: u32, facts: &[Self::Fact]) -> Self::Fact;

    /// Append the nodes whose transfer reads `node`'s fact.
    fn dependents(&self, node: u32, out: &mut Vec<u32>);
}

/// A solved fixpoint, with the deterministic iteration statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixpoint<F> {
    /// The stable fact per node.
    pub facts: Vec<F>,
    /// Number of rounds until stabilization.
    pub rounds: u32,
    /// Total transfer evaluations across all rounds.
    pub evals: u64,
}

/// Run the worklist solver to fixpoint.
pub fn solve<A: Framework>(problem: &A) -> Fixpoint<A::Fact> {
    let n = problem.len();
    let mut facts: Vec<A::Fact> = (0..n as u32).map(|i| problem.initial(i)).collect();
    let mut frontier: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0u32;
    let mut evals = 0u64;
    let mut deps = Vec::new();
    while !frontier.is_empty() {
        rounds += 1;
        evals += frontier.len() as u64;
        // Jacobi evaluation against the frozen snapshot; the pool merges
        // chunk results in index order, so any thread count produces the
        // same outputs vector.
        let outputs: Vec<A::Fact> =
            pool::par_map(&frontier, |&node| problem.transfer(node, &facts));
        let mut next: Vec<u32> = Vec::new();
        for (node, out) in frontier.iter().zip(outputs) {
            let slot = &mut facts[*node as usize];
            if *slot != out {
                *slot = out;
                deps.clear();
                problem.dependents(*node, &mut deps);
                next.extend_from_slice(&deps);
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    obs::count("dataflow.rounds", u64::from(rounds));
    obs::count("dataflow.evals", evals);
    Fixpoint {
        facts,
        rounds,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Longest-path length over a tiny DAG, as a max-lattice framework.
    struct Longest {
        preds: Vec<Vec<u32>>,
        succs: Vec<Vec<u32>>,
    }

    impl Framework for Longest {
        type Fact = u32;
        fn len(&self) -> usize {
            self.preds.len()
        }
        fn initial(&self, _node: u32) -> u32 {
            0
        }
        fn transfer(&self, node: u32, facts: &[u32]) -> u32 {
            self.preds[node as usize]
                .iter()
                .map(|&p| facts[p as usize] + 1)
                .max()
                .unwrap_or(0)
        }
        fn dependents(&self, node: u32, out: &mut Vec<u32>) {
            out.extend_from_slice(&self.succs[node as usize]);
        }
    }

    fn chain_with_shortcut() -> Longest {
        // 0 → 1 → 2 → 3, plus 0 → 3.
        Longest {
            preds: vec![vec![], vec![0], vec![1], vec![2, 0]],
            succs: vec![vec![1, 3], vec![2], vec![3], vec![]],
        }
    }

    #[test]
    fn reaches_the_expected_fixpoint() {
        let fx = solve(&chain_with_shortcut());
        assert_eq!(fx.facts, vec![0, 1, 2, 3]);
        assert!(fx.rounds >= 3, "deep node needs multiple rounds");
    }

    #[test]
    fn identical_at_any_thread_count() {
        let p = chain_with_shortcut();
        let base = prebond3d_pool::with_threads(1, || solve(&p));
        for t in [2, 4, 8] {
            let got = prebond3d_pool::with_threads(t, || solve(&p));
            assert_eq!(got, base, "threads={t}");
        }
    }

    #[test]
    fn empty_problem_terminates() {
        let fx = solve(&Longest {
            preds: vec![],
            succs: vec![],
        });
        assert!(fx.facts.is_empty());
        assert_eq!(fx.rounds, 0);
    }
}

//! SCOAP-style testability scoring on the dataflow framework.
//!
//! Classic Goldstein controllability/observability measures, computed as
//! two monotone fixpoints over the netlist graph (a forward min-cost pass
//! for `CC0`/`CC1`, a backward min-cost pass for `CO`) under the pre-bond
//! full-scan access view: primary inputs, scan flip-flops and wrapper
//! cells are controllable; sink *drivers* of outputs, scan flip-flops and
//! wrapper cells are observed; floating TSVs and unscanned flip-flops
//! saturate.
//!
//! The transfer functions mirror the ATPG crate's `Scoap` exactly, so the
//! lint-facing scores agree with what PODEM uses for backtrace guidance —
//! the alignment is locked down by a cross-check test in `prebond3d-atpg`.

use prebond3d_netlist::{GateId, GateKind, Netlist};

use crate::solver::{solve, Framework};

/// Saturating "unreachable" cost (identical to the ATPG crate's value).
pub const INF: u32 = u32::MAX / 4;

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(INF)
}

/// The pre-bond access view used by the scoring passes.
#[derive(Debug, Clone)]
pub struct AccessView {
    /// Scan-accessible (controllable) source nets.
    pub controllable: Vec<bool>,
    /// Observed nets (sink drivers).
    pub observed: Vec<bool>,
}

impl AccessView {
    /// Full-scan pre-bond access: `Input`/`ScanDff`/`Wrapper` control;
    /// drivers of `Output`/`ScanDff`/`Wrapper` observe.
    pub fn pre_bond(netlist: &Netlist) -> AccessView {
        let n = netlist.len();
        let mut controllable = vec![false; n];
        let mut observed = vec![false; n];
        for (id, gate) in netlist.iter() {
            match gate.kind {
                GateKind::Input | GateKind::ScanDff | GateKind::Wrapper => {
                    controllable[id.index()] = true;
                }
                _ => {}
            }
            if matches!(
                gate.kind,
                GateKind::Output | GateKind::ScanDff | GateKind::Wrapper
            ) {
                observed[gate.inputs[0].index()] = true;
            }
        }
        AccessView {
            controllable,
            observed,
        }
    }
}

/// Forward controllability framework. Fact = `(cc0, cc1)`, ordered by
/// pointwise ≤ with the *reversed* lattice (costs only decrease).
struct Controllability<'a> {
    netlist: &'a Netlist,
    access: &'a AccessView,
}

impl Framework for Controllability<'_> {
    type Fact = (u32, u32);

    fn len(&self) -> usize {
        self.netlist.len()
    }

    fn initial(&self, node: u32) -> (u32, u32) {
        let id = GateId(node);
        let gate = self.netlist.gate(id);
        if gate.kind.is_source() {
            match gate.kind {
                GateKind::Const0 => (0, INF),
                GateKind::Const1 => (INF, 0),
                _ if self.access.controllable[id.index()] => (1, 1),
                _ => (INF, INF),
            }
        } else {
            (INF, INF)
        }
    }

    fn transfer(&self, node: u32, facts: &[(u32, u32)]) -> (u32, u32) {
        let id = GateId(node);
        let gate = self.netlist.gate(id);
        if gate.kind.is_source() {
            return self.initial(node);
        }
        let in0: Vec<u32> = gate.inputs.iter().map(|x| facts[x.index()].0).collect();
        let in1: Vec<u32> = gate.inputs.iter().map(|x| facts[x.index()].1).collect();
        let (c0, c1) = match gate.kind {
            GateKind::Buf | GateKind::Output | GateKind::TsvOut => (in0[0], in1[0]),
            GateKind::Not => (in1[0], in0[0]),
            GateKind::And => (in0.iter().copied().min().unwrap(), sat_add(in1[0], in1[1])),
            GateKind::Nand => (sat_add(in1[0], in1[1]), in0.iter().copied().min().unwrap()),
            GateKind::Or => (sat_add(in0[0], in0[1]), in1.iter().copied().min().unwrap()),
            GateKind::Nor => (in1.iter().copied().min().unwrap(), sat_add(in0[0], in0[1])),
            GateKind::Xor => (
                sat_add(in0[0], in0[1]).min(sat_add(in1[0], in1[1])),
                sat_add(in0[0], in1[1]).min(sat_add(in1[0], in0[1])),
            ),
            GateKind::Xnor => (
                sat_add(in0[0], in1[1]).min(sat_add(in1[0], in0[1])),
                sat_add(in0[0], in0[1]).min(sat_add(in1[0], in1[1])),
            ),
            GateKind::Mux2 => {
                let c0 = sat_add(in0[2], in0[0]).min(sat_add(in1[2], in0[1]));
                let c1 = sat_add(in0[2], in1[0]).min(sat_add(in1[2], in1[1]));
                (c0, c1)
            }
            _ => (INF, INF),
        };
        (sat_add(c0, 1), sat_add(c1, 1))
    }

    fn dependents(&self, node: u32, out: &mut Vec<u32>) {
        for &fo in self.netlist.fanout(GateId(node)) {
            out.push(fo.0);
        }
    }
}

/// Backward observability framework. Fact = `co`, costs only decrease.
struct Observability<'a> {
    netlist: &'a Netlist,
    access: &'a AccessView,
    cc: &'a [(u32, u32)],
}

impl Observability<'_> {
    /// Cost of observing input pin `pin` of `gate` through it.
    fn side_cost(&self, gate: &prebond3d_netlist::Gate, pin: usize) -> u32 {
        let cc0 = |id: GateId| self.cc[id.index()].0;
        let cc1 = |id: GateId| self.cc[id.index()].1;
        match gate.kind {
            GateKind::Buf
            | GateKind::Not
            | GateKind::Output
            | GateKind::TsvOut
            | GateKind::Wrapper
            | GateKind::Dff
            | GateKind::ScanDff => 0,
            GateKind::And | GateKind::Nand => cc1(gate.inputs[1 - pin]),
            GateKind::Or | GateKind::Nor => cc0(gate.inputs[1 - pin]),
            GateKind::Xor | GateKind::Xnor => {
                let other = gate.inputs[1 - pin];
                cc0(other).min(cc1(other))
            }
            GateKind::Mux2 => match pin {
                0 => cc0(gate.inputs[2]),
                1 => cc1(gate.inputs[2]),
                _ => sat_add(
                    cc0(gate.inputs[0]).min(cc1(gate.inputs[0])),
                    cc0(gate.inputs[1]).min(cc1(gate.inputs[1])),
                ),
            },
            _ => INF,
        }
    }
}

impl Framework for Observability<'_> {
    type Fact = u32;

    fn len(&self) -> usize {
        self.netlist.len()
    }

    fn initial(&self, node: u32) -> u32 {
        if self.access.observed[node as usize] {
            0
        } else {
            INF
        }
    }

    fn transfer(&self, node: u32, facts: &[u32]) -> u32 {
        let id = GateId(node);
        let mut best = self.initial(node);
        for &fo in self.netlist.fanout(id) {
            let gate = self.netlist.gate(fo);
            // Capturing into an unobservable (unscanned) flip-flop
            // observes nothing within the test frame.
            if gate.kind.is_sequential() && !self.access.controllable[fo.index()] {
                continue;
            }
            let base = if gate.kind.is_sequential() {
                0
            } else {
                facts[fo.index()]
            };
            for (pin, &input) in gate.inputs.iter().enumerate() {
                if input != id {
                    continue;
                }
                let cost = sat_add(sat_add(base, self.side_cost(gate, pin)), 1);
                best = best.min(cost);
            }
        }
        best
    }

    fn dependents(&self, node: u32, out: &mut Vec<u32>) {
        // Backward: when co[node] changes, its *inputs* must recompute.
        for &input in &self.netlist.gate(GateId(node)).inputs {
            out.push(input.0);
        }
    }
}

/// SCOAP-style measures for every net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scores {
    /// Cost to force each net to 0.
    pub cc0: Vec<u32>,
    /// Cost to force each net to 1.
    pub cc1: Vec<u32>,
    /// Cost to observe each net.
    pub co: Vec<u32>,
}

impl Scores {
    /// Compute all three measures under `access`.
    pub fn compute(netlist: &Netlist, access: &AccessView) -> Scores {
        let cc = solve(&Controllability { netlist, access }).facts;
        let co = solve(&Observability {
            netlist,
            access,
            cc: &cc,
        })
        .facts;
        let (cc0, cc1) = cc.into_iter().unzip();
        Scores { cc0, cc1, co }
    }

    /// Combined difficulty of detecting a stuck-at fault at `id`.
    pub fn detect_cost(&self, id: GateId, stuck_at_one: bool) -> u32 {
        let cc = if stuck_at_one {
            self.cc0[id.index()]
        } else {
            self.cc1[id.index()]
        };
        sat_add(cc, self.co[id.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn and_gate_measures_match_goldstein() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let s = Scores::compute(&n, &AccessView::pre_bond(&n));
        assert_eq!(s.cc0[g.index()], 2);
        assert_eq!(s.cc1[g.index()], 3);
        assert_eq!(s.co[g.index()], 0);
        assert_eq!(s.co[a.index()], 2);
    }

    #[test]
    fn floating_tsv_saturates_both_directions() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let h = b.gate(GateKind::Not, &[a], "h");
        b.tsv_out(h, "to");
        let n = b.finish().unwrap();
        let s = Scores::compute(&n, &AccessView::pre_bond(&n));
        assert!(s.cc1[g.index()] >= INF, "needs ti=1");
        assert!(s.cc0[g.index()] < INF, "a=0 suffices");
        assert!(s.co[h.index()] >= INF, "only sink is an unwrapped TSV");
        assert!(s.detect_cost(h, true) >= INF);
    }

    #[test]
    fn scan_capture_observes_directly() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.scan_dff(g, "q");
        let n = b.finish().unwrap();
        let s = Scores::compute(&n, &AccessView::pre_bond(&n));
        assert_eq!(s.co[g.index()], 0);
        assert!(s.detect_cost(g, false) < INF);
    }
}

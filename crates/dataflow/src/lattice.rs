//! The ternary value-set lattice and its exact abstract transfer functions.
//!
//! Each net is abstracted by the **set of three-valued simulation values**
//! it can take across all test patterns: a subset of `{0, 1, X}`. The
//! abstraction is sound with respect to the dual-rail good-machine
//! simulator: if a concrete pattern produces value `v` on a net, `v` is a
//! member of the net's [`ValueSet`]. Transfer functions are computed as
//! the *image* of the scalar ternary gate evaluation over the cartesian
//! product of the input sets, so they are both sound and as precise as a
//! correlation-free abstraction can be.
//!
//! The join is set union; the bottom element is the empty set (used as the
//! initial fact for combinational nets before their drivers stabilize).
//! Lattice height per net is 3, which bounds fixpoint iteration.

use prebond3d_netlist::GateKind;

/// A scalar three-valued logic value, mirroring the simulator's dual-rail
/// encoding one bit at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tv {
    /// Known logic 0.
    Zero,
    /// Known logic 1.
    One,
    /// Unknown.
    X,
}

impl Tv {
    /// Build from a known boolean.
    pub fn from_bool(v: bool) -> Tv {
        if v {
            Tv::One
        } else {
            Tv::Zero
        }
    }
}

/// Scalar ternary gate evaluation, bit-for-bit equivalent to the rail
/// evaluation used by the fault simulator (`eval_rail` in `prebond3d-atpg`
/// evaluates exactly this function on each of its 64 lanes).
pub fn eval_tv(kind: GateKind, inputs: &[Tv]) -> Tv {
    use Tv::{One, Zero, X};
    match kind {
        GateKind::Buf | GateKind::Output | GateKind::TsvOut => inputs[0],
        GateKind::Not => match inputs[0] {
            Zero => One,
            One => Zero,
            X => X,
        },
        GateKind::And => match (inputs[0], inputs[1]) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        },
        GateKind::Or => match (inputs[0], inputs[1]) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        },
        GateKind::Nand => match (inputs[0], inputs[1]) {
            (Zero, _) | (_, Zero) => One,
            (One, One) => Zero,
            _ => X,
        },
        GateKind::Nor => match (inputs[0], inputs[1]) {
            (One, _) | (_, One) => Zero,
            (Zero, Zero) => One,
            _ => X,
        },
        GateKind::Xor => match (inputs[0], inputs[1]) {
            (X, _) | (_, X) => X,
            (a, b) => Tv::from_bool(a != b),
        },
        GateKind::Xnor => match (inputs[0], inputs[1]) {
            (X, _) | (_, X) => X,
            (a, b) => Tv::from_bool(a == b),
        },
        GateKind::Mux2 => {
            let (a, b, s) = (inputs[0], inputs[1], inputs[2]);
            match s {
                Zero => a,
                One => b,
                // Select unknown: the output is known only when both data
                // inputs agree on a known value (the simulator's consensus
                // term).
                X => {
                    if a == b && a != X {
                        a
                    } else {
                        X
                    }
                }
            }
        }
        _ => unreachable!("eval_tv on non-combinational {kind:?}"),
    }
}

/// A subset of `{0, 1, X}` — the possible three-valued simulation values
/// of one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueSet(u8);

const BIT_ZERO: u8 = 1;
const BIT_ONE: u8 = 2;
const BIT_X: u8 = 4;

impl ValueSet {
    /// Bottom: no value reached yet.
    pub const EMPTY: ValueSet = ValueSet(0);
    /// Exactly `{0}`.
    pub const ZERO: ValueSet = ValueSet(BIT_ZERO);
    /// Exactly `{1}`.
    pub const ONE: ValueSet = ValueSet(BIT_ONE);
    /// Exactly `{X}`.
    pub const X: ValueSet = ValueSet(BIT_X);
    /// `{0, 1}`: a fully controllable known net.
    pub const BOOL: ValueSet = ValueSet(BIT_ZERO | BIT_ONE);
    /// Top: `{0, 1, X}`.
    pub const TOP: ValueSet = ValueSet(BIT_ZERO | BIT_ONE | BIT_X);

    /// The singleton of a known boolean.
    pub fn of(v: bool) -> ValueSet {
        if v {
            ValueSet::ONE
        } else {
            ValueSet::ZERO
        }
    }

    /// The singleton of a scalar ternary value.
    pub fn of_tv(v: Tv) -> ValueSet {
        match v {
            Tv::Zero => ValueSet::ZERO,
            Tv::One => ValueSet::ONE,
            Tv::X => ValueSet::X,
        }
    }

    /// Set union (the lattice join).
    #[must_use]
    pub fn join(self, other: ValueSet) -> ValueSet {
        ValueSet(self.0 | other.0)
    }

    /// Does the set contain the known value `v`?
    pub fn contains(self, v: bool) -> bool {
        self.0 & if v { BIT_ONE } else { BIT_ZERO } != 0
    }

    /// Does the set contain X?
    pub fn contains_x(self) -> bool {
        self.0 & BIT_X != 0
    }

    /// No value at all (unreached code — only before fixpoint, or for
    /// nets downstream of an empty set).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `Some(v)` when the net provably carries the known constant `v` on
    /// every pattern.
    pub fn is_constant(self) -> Option<bool> {
        match self.0 {
            x if x == BIT_ZERO => Some(false),
            x if x == BIT_ONE => Some(true),
            _ => None,
        }
    }

    /// The net is X on every pattern: nothing pre-bond test can control.
    pub fn is_x_only(self) -> bool {
        self.0 == BIT_X
    }

    /// Iterate the members as scalar values, in the fixed order 0, 1, X.
    pub fn members(self) -> impl Iterator<Item = Tv> {
        [(BIT_ZERO, Tv::Zero), (BIT_ONE, Tv::One), (BIT_X, Tv::X)]
            .into_iter()
            .filter_map(move |(bit, tv)| (self.0 & bit != 0).then_some(tv))
    }

    /// Compact display for diagnostics: e.g. `{0}`, `{0,X}`, `{0,1,X}`.
    pub fn render(self) -> String {
        let parts: Vec<&str> = [(BIT_ZERO, "0"), (BIT_ONE, "1"), (BIT_X, "X")]
            .iter()
            .filter_map(|&(bit, s)| (self.0 & bit != 0).then_some(s))
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Abstract transfer: the image of [`eval_tv`] over the cartesian product
/// of the input sets. Any input with an empty set yields the empty set
/// (no concrete evaluation exists yet).
pub fn eval_set(kind: GateKind, inputs: &[ValueSet]) -> ValueSet {
    debug_assert_eq!(inputs.len(), kind.arity(), "arity mismatch for {kind:?}");
    let mut out = ValueSet::EMPTY;
    let mut combo = [Tv::X; 3];
    // Max arity is 3 and |set| ≤ 3, so this enumerates ≤ 27 combinations.
    match inputs.len() {
        1 => {
            for a in inputs[0].members() {
                combo[0] = a;
                out = out.join(ValueSet::of_tv(eval_tv(kind, &combo[..1])));
            }
        }
        2 => {
            for a in inputs[0].members() {
                for b in inputs[1].members() {
                    combo[0] = a;
                    combo[1] = b;
                    out = out.join(ValueSet::of_tv(eval_tv(kind, &combo[..2])));
                }
            }
        }
        3 => {
            for a in inputs[0].members() {
                for b in inputs[1].members() {
                    for s in inputs[2].members() {
                        combo[0] = a;
                        combo[1] = b;
                        combo[2] = s;
                        out = out.join(ValueSet::of_tv(eval_tv(kind, &combo[..3])));
                    }
                }
            }
        }
        _ => unreachable!("no 0-input combinational kinds"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_membership() {
        let s = ValueSet::ZERO.join(ValueSet::X);
        assert!(s.contains(false));
        assert!(!s.contains(true));
        assert!(s.contains_x());
        assert_eq!(s.render(), "{0,X}");
        assert_eq!(ValueSet::ONE.is_constant(), Some(true));
        assert_eq!(s.is_constant(), None);
        assert!(ValueSet::X.is_x_only());
        assert!(!s.is_x_only());
    }

    #[test]
    fn and_absorbs_zero_even_against_x() {
        // 0 & X = 0: the controlling value dominates the unknown.
        let out = eval_set(GateKind::And, &[ValueSet::ZERO, ValueSet::X]);
        assert_eq!(out, ValueSet::ZERO);
        // {0,1} & X = {0, X}.
        let out = eval_set(GateKind::And, &[ValueSet::BOOL, ValueSet::X]);
        assert_eq!(out, ValueSet::ZERO.join(ValueSet::X));
    }

    #[test]
    fn xor_loses_precision_on_x() {
        let out = eval_set(GateKind::Xor, &[ValueSet::BOOL, ValueSet::X]);
        assert_eq!(out, ValueSet::X);
        let out = eval_set(GateKind::Xor, &[ValueSet::ONE, ValueSet::ONE]);
        assert_eq!(out, ValueSet::ZERO);
    }

    #[test]
    fn mux_consensus_matches_the_simulator() {
        // sel=X but both data inputs constant 1 → output known 1.
        let out = eval_set(GateKind::Mux2, &[ValueSet::ONE, ValueSet::ONE, ValueSet::X]);
        assert_eq!(out, ValueSet::ONE);
        // sel=X, data disagree → X creeps in.
        let out = eval_set(
            GateKind::Mux2,
            &[ValueSet::ZERO, ValueSet::ONE, ValueSet::X],
        );
        assert_eq!(out, ValueSet::X);
        // sel constant 0 routes input a through untouched.
        let out = eval_set(
            GateKind::Mux2,
            &[ValueSet::BOOL, ValueSet::X, ValueSet::ZERO],
        );
        assert_eq!(out, ValueSet::BOOL);
    }

    #[test]
    fn empty_inputs_stay_empty() {
        let out = eval_set(GateKind::And, &[ValueSet::EMPTY, ValueSet::BOOL]);
        assert!(out.is_empty());
    }

    #[test]
    fn transfer_is_monotone_in_every_argument() {
        // Exhaustive: growing any input set can only grow the output set.
        let all: Vec<ValueSet> = (0u8..8).map(ValueSet).collect();
        let supersets = |s: ValueSet| all.iter().copied().filter(move |t| t.0 & s.0 == s.0);
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let arity = kind.arity();
            for &a in &all {
                for &b in &all {
                    let base = if arity == 1 {
                        eval_set(kind, &[a])
                    } else {
                        eval_set(kind, &[a, b])
                    };
                    for a2 in supersets(a) {
                        for b2 in supersets(b) {
                            let grown = if arity == 1 {
                                eval_set(kind, &[a2])
                            } else {
                                eval_set(kind, &[a2, b2])
                            };
                            assert_eq!(
                                grown.0 & base.0,
                                base.0,
                                "{kind:?} not monotone: {a:?},{b:?} → {base:?} vs {a2:?},{b2:?} → {grown:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

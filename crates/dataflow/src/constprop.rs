//! Ternary constant propagation: per-net value sets under a test-access
//! source model.
//!
//! A [`SourceModel`] fixes the abstract value of every *source* net
//! (primary inputs, constants, flip-flop outputs, TSV endpoints); the
//! fixpoint then derives the value set of every combinational net. The two
//! stock models mirror the simulator's pre-bond access semantics:
//!
//! * [`SourceModel::pre_bond`] — scan-accessible sources (`Input`,
//!   `ScanDff`, `Wrapper`) take `{0,1}`; floating TSVs and unscanned
//!   flip-flops take `{X}`; constants take their singleton.
//! * [`SourceModel::assume_wrapped`] — like `pre_bond`, but inbound TSVs
//!   are `{0,1}` (they *will* receive a wrapper cell), which is the right
//!   view for judging whether a wrapper boundary is testable at all.
//!
//! Custom models ([`SourceModel::with_source`]) let the ATPG layer mirror
//! its exact `TestAccess` — including pinned nodes — so the derived facts
//! are sound for the very patterns the engine simulates.

use prebond3d_netlist::{GateId, GateKind, Netlist};

use crate::lattice::{eval_set, ValueSet};
use crate::solver::{solve, Fixpoint, Framework};

/// Per-source abstract values; combinational nets are ignored.
#[derive(Debug, Clone)]
pub struct SourceModel {
    sets: Vec<ValueSet>,
}

fn base_model(netlist: &Netlist, tsv_in: ValueSet) -> Vec<ValueSet> {
    netlist
        .iter()
        .map(|(_, gate)| match gate.kind {
            GateKind::Const0 => ValueSet::ZERO,
            GateKind::Const1 => ValueSet::ONE,
            GateKind::Input | GateKind::ScanDff | GateKind::Wrapper => ValueSet::BOOL,
            GateKind::TsvIn => tsv_in,
            GateKind::Dff => ValueSet::X,
            // Combinational nets: derived by the fixpoint, not the model.
            _ => ValueSet::EMPTY,
        })
        .collect()
}

impl SourceModel {
    /// Pre-bond full-scan access: floating TSVs are uncontrollable.
    pub fn pre_bond(netlist: &Netlist) -> SourceModel {
        SourceModel {
            sets: base_model(netlist, ValueSet::X),
        }
    }

    /// Pre-bond access assuming every inbound TSV gets a wrapper cell.
    pub fn assume_wrapped(netlist: &Netlist) -> SourceModel {
        SourceModel {
            sets: base_model(netlist, ValueSet::BOOL),
        }
    }

    /// Override one source's abstract value (pinned test-enable nets,
    /// custom access models). Constants cannot be overridden — the
    /// simulator reasserts them on every evaluation — and overrides of
    /// combinational nets are ignored for the same reason.
    pub fn with_source(mut self, id: GateId, set: ValueSet) -> SourceModel {
        self.set_source(id, set);
        self
    }

    /// In-place variant of [`Self::with_source`].
    pub fn set_source(&mut self, id: GateId, set: ValueSet) {
        self.sets[id.index()] = set;
    }

    /// The modeled value of a source net.
    pub fn source(&self, id: GateId) -> ValueSet {
        self.sets[id.index()]
    }
}

struct ConstProp<'a> {
    netlist: &'a Netlist,
    model: &'a SourceModel,
}

impl Framework for ConstProp<'_> {
    type Fact = ValueSet;

    fn len(&self) -> usize {
        self.netlist.len()
    }

    fn initial(&self, node: u32) -> ValueSet {
        self.model.sets[node as usize]
    }

    fn transfer(&self, node: u32, facts: &[ValueSet]) -> ValueSet {
        let id = GateId(node);
        let gate = self.netlist.gate(id);
        match gate.kind {
            // Constants always win, matching the simulator's evaluation
            // order (they are reasserted inside the topological sweep).
            GateKind::Const0 => ValueSet::ZERO,
            GateKind::Const1 => ValueSet::ONE,
            kind if kind.is_combinational() => {
                let mut inputs = [ValueSet::EMPTY; 3];
                for (slot, &i) in inputs.iter_mut().zip(gate.inputs.iter()) {
                    *slot = facts[i.index()];
                }
                eval_set(kind, &inputs[..gate.inputs.len()])
            }
            // Sources and sequential Q pins hold their modeled value; the
            // D-pin side never feeds back within a test frame.
            _ => self.model.sets[node as usize],
        }
    }

    fn dependents(&self, node: u32, out: &mut Vec<u32>) {
        for &fo in self.netlist.fanout(GateId(node)) {
            out.push(fo.0);
        }
    }
}

/// The solved value set per net, with iteration statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constants {
    /// Value set per gate output, indexed by `GateId`.
    pub sets: Vec<ValueSet>,
    /// Rounds the fixpoint took (deterministic).
    pub rounds: u32,
    /// Transfer evaluations performed (deterministic).
    pub evals: u64,
}

impl Constants {
    /// Run the fixpoint under `model`.
    pub fn compute(netlist: &Netlist, model: &SourceModel) -> Constants {
        let Fixpoint {
            facts,
            rounds,
            evals,
        } = solve(&ConstProp { netlist, model });
        Constants {
            sets: facts,
            rounds,
            evals,
        }
    }

    /// The value set of one net.
    pub fn set(&self, id: GateId) -> ValueSet {
        self.sets[id.index()]
    }

    /// `Some(v)` when the net provably carries constant `v`.
    pub fn is_constant(&self, id: GateId) -> Option<bool> {
        self.sets[id.index()].is_constant()
    }

    /// The net is X on every pattern.
    pub fn is_x_only(&self, id: GateId) -> bool {
        self.sets[id.index()].is_x_only()
    }

    /// Derived-constant nets: combinational gates whose output is provably
    /// constant (explicit `Const0`/`Const1` cells are by definition
    /// constant and excluded). These are the dead gates of the netlist —
    /// their logic can never toggle under the modeled access.
    pub fn derived_constants(&self, netlist: &Netlist) -> Vec<(GateId, bool)> {
        netlist
            .iter()
            .filter(|(_, g)| {
                g.kind.is_combinational() && !matches!(g.kind, GateKind::Output | GateKind::TsvOut)
            })
            .filter_map(|(id, _)| self.is_constant(id).map(|v| (id, v)))
            .collect()
    }

    /// Nets that are X on every pattern: the cones pre-bond test cannot
    /// control. Source nets modeled as X (the roots) are included.
    pub fn x_only_nets(&self, netlist: &Netlist) -> Vec<GateId> {
        netlist.ids().filter(|&id| self.is_x_only(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn constants_propagate_through_logic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c0 = b.gate(GateKind::Const0, &[], "c0");
        let g = b.gate(GateKind::And, &[a, c0], "g"); // a & 0 = 0
        let h = b.gate(GateKind::Not, &[g], "h"); // ¬0 = 1
        b.output(h, "o");
        let n = b.finish().unwrap();
        let consts = Constants::compute(&n, &SourceModel::pre_bond(&n));
        assert_eq!(consts.is_constant(g), Some(false));
        assert_eq!(consts.is_constant(h), Some(true));
        assert_eq!(consts.is_constant(a), None);
        let dead = consts.derived_constants(&n);
        assert_eq!(dead, vec![(g, false), (h, true)]);
    }

    #[test]
    fn x_cones_grow_from_floating_tsvs_and_plain_dffs() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::Xor, &[ti, a], "g"); // X ^ a = X
        let h = b.gate(GateKind::And, &[g, a], "h"); // X & {0,1} = {0,X}
        b.output(h, "o");
        let n = b.finish().unwrap();
        let consts = Constants::compute(&n, &SourceModel::pre_bond(&n));
        assert!(consts.is_x_only(g));
        assert!(!consts.is_x_only(h));
        assert!(consts.set(h).contains_x());
        assert!(consts.set(h).contains(false));
        assert!(!consts.set(h).contains(true));
        assert_eq!(consts.x_only_nets(&n), vec![ti, g]);
    }

    #[test]
    fn assume_wrapped_recovers_tsv_cones() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::Not, &[ti], "g");
        b.tsv_out(g, "to");
        let n = b.finish().unwrap();
        let pre = Constants::compute(&n, &SourceModel::pre_bond(&n));
        assert!(pre.is_x_only(g));
        let wrapped = Constants::compute(&n, &SourceModel::assume_wrapped(&n));
        assert_eq!(wrapped.set(g), ValueSet::BOOL);
    }

    #[test]
    fn pinned_sources_narrow_the_model() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input("en");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[en, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let model = SourceModel::pre_bond(&n).with_source(en, ValueSet::ONE);
        let consts = Constants::compute(&n, &model);
        // en pinned to 1 → g ≡ a.
        assert_eq!(consts.set(g), ValueSet::BOOL);
        let model0 = SourceModel::pre_bond(&n).with_source(en, ValueSet::ZERO);
        let consts0 = Constants::compute(&n, &model0);
        assert_eq!(consts0.is_constant(g), Some(false));
    }
}

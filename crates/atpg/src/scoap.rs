//! SCOAP testability measures (Goldstein 1979), access-model aware.
//!
//! Controllability `CC0`/`CC1` counts how many assignments it takes to set
//! a line to 0/1; observability `CO` counts how many to propagate it to an
//! observation point. Uncontrollable sources and unobservable sinks get a
//! saturating "infinite" cost, so the measures directly express pre-bond
//! reachability.
//!
//! Uses inside the flow:
//!
//! * PODEM backtrace guidance (pick the cheapest input to justify),
//! * the *structural testability estimate* used to pre-screen
//!   overlapped-cone sharing candidates before spending ATPG effort.

use prebond3d_netlist::{GateId, GateKind, Netlist};

use crate::access::TestAccess;

/// Saturating "unreachable" cost.
pub const INF: u32 = u32::MAX / 4;

/// SCOAP measures for every gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoap {
    /// Cost to force each line to 0.
    pub cc0: Vec<u32>,
    /// Cost to force each line to 1.
    pub cc1: Vec<u32>,
    /// Cost to observe each line.
    pub co: Vec<u32>,
}

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(INF)
}

impl Scoap {
    /// Compute all three measures under `access`.
    pub fn compute(netlist: &Netlist, access: &TestAccess) -> Self {
        let n = netlist.len();
        let order = prebond3d_netlist::traverse::combinational_order(netlist);
        let mut cc0 = vec![INF; n];
        let mut cc1 = vec![INF; n];

        // --- Controllability (forward) --------------------------------
        for &id in &order {
            let gate = netlist.gate(id);
            let i = id.index();
            if gate.kind.is_source() {
                match gate.kind {
                    GateKind::Const0 => {
                        cc0[i] = 0;
                        cc1[i] = INF;
                    }
                    GateKind::Const1 => {
                        cc0[i] = INF;
                        cc1[i] = 0;
                    }
                    _ if access.rank_of(id).is_some() => {
                        cc0[i] = 1;
                        cc1[i] = 1;
                    }
                    _ => { /* uncontrollable: INF */ }
                }
                continue;
            }
            let in0: Vec<u32> = gate.inputs.iter().map(|x| cc0[x.index()]).collect();
            let in1: Vec<u32> = gate.inputs.iter().map(|x| cc1[x.index()]).collect();
            let (c0, c1) = match gate.kind {
                GateKind::Buf | GateKind::Output | GateKind::TsvOut => (in0[0], in1[0]),
                GateKind::Not => (in1[0], in0[0]),
                GateKind::And => (in0.iter().copied().min().unwrap(), sat_add(in1[0], in1[1])),
                GateKind::Nand => (sat_add(in1[0], in1[1]), in0.iter().copied().min().unwrap()),
                GateKind::Or => (sat_add(in0[0], in0[1]), in1.iter().copied().min().unwrap()),
                GateKind::Nor => (in1.iter().copied().min().unwrap(), sat_add(in0[0], in0[1])),
                GateKind::Xor => (
                    sat_add(in0[0], in0[1]).min(sat_add(in1[0], in1[1])),
                    sat_add(in0[0], in1[1]).min(sat_add(in1[0], in0[1])),
                ),
                GateKind::Xnor => (
                    sat_add(in0[0], in1[1]).min(sat_add(in1[0], in0[1])),
                    sat_add(in0[0], in0[1]).min(sat_add(in1[0], in1[1])),
                ),
                GateKind::Mux2 => {
                    // select=0 path via a, select=1 path via b.
                    let c0 = sat_add(in0[2], in0[0]).min(sat_add(in1[2], in0[1]));
                    let c1 = sat_add(in0[2], in1[0]).min(sat_add(in1[2], in1[1]));
                    (c0, c1)
                }
                _ => (INF, INF),
            };
            cc0[i] = sat_add(c0, 1);
            cc1[i] = sat_add(c1, 1);
        }

        // --- Observability (backward) -----------------------------------
        let mut co = vec![INF; n];
        for &id in access.observed() {
            co[id.index()] = 0;
        }
        for &id in order.iter().rev() {
            let gate = netlist.gate(id);
            // Cost to observe each *input* of this gate through it.
            if gate.kind.is_sequential() && access.rank_of(id).is_none() {
                // Capturing into an unobservable flip-flop observes nothing
                // within this test frame.
                continue;
            }
            let co_out = co[id.index()];
            if co_out >= INF && !access.is_observed(id) {
                continue;
            }
            for (pin, &input) in gate.inputs.iter().enumerate() {
                let side_cost: u32 = match gate.kind {
                    GateKind::Buf
                    | GateKind::Not
                    | GateKind::Output
                    | GateKind::TsvOut
                    | GateKind::Wrapper
                    | GateKind::Dff
                    | GateKind::ScanDff => 0,
                    GateKind::And | GateKind::Nand => {
                        // Other input must be 1.
                        let other = gate.inputs[1 - pin];
                        cc1[other.index()]
                    }
                    GateKind::Or | GateKind::Nor => {
                        let other = gate.inputs[1 - pin];
                        cc0[other.index()]
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        let other = gate.inputs[1 - pin];
                        cc0[other.index()].min(cc1[other.index()])
                    }
                    GateKind::Mux2 => match pin {
                        0 => cc0[gate.inputs[2].index()],
                        1 => cc1[gate.inputs[2].index()],
                        _ => {
                            // Observing the select needs differing data —
                            // approximate with the cheaper data control.
                            sat_add(
                                cc0[gate.inputs[0].index()].min(cc1[gate.inputs[0].index()]),
                                cc0[gate.inputs[1].index()].min(cc1[gate.inputs[1].index()]),
                            )
                        }
                    },
                    _ => INF,
                };
                // Sequential capture (scan FF / wrapper): the D pin is the
                // observation point itself if the FF is scan-accessible.
                let base = if gate.kind.is_sequential() { 0 } else { co_out };
                let cost = sat_add(sat_add(base, side_cost), 1);
                if cost < co[input.index()] {
                    co[input.index()] = cost;
                }
            }
        }

        Scoap { cc0, cc1, co }
    }

    /// Combined difficulty of detecting a stuck-at fault at `id`:
    /// excitation controllability + observability (saturating).
    pub fn detect_cost(&self, id: GateId, stuck_at_one: bool) -> u32 {
        let cc = if stuck_at_one {
            self.cc0[id.index()]
        } else {
            self.cc1[id.index()]
        };
        sat_add(cc, self.co[id.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn and_gate_measures() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let s = Scoap::compute(&n, &acc);
        // cc0(g) = min(1,1)+1 = 2, cc1(g) = 1+1+1 = 3.
        assert_eq!(s.cc0[g.index()], 2);
        assert_eq!(s.cc1[g.index()], 3);
        // g observed directly.
        assert_eq!(s.co[g.index()], 0);
        // Observing a needs b=1: co = 0 + cc1(b) + 1 = 2.
        assert_eq!(s.co[a.index()], 2);
    }

    #[test]
    fn uncontrollable_tsv_saturates() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let s = Scoap::compute(&n, &acc);
        assert!(s.cc0[ti.index()] >= INF);
        assert!(s.cc1[ti.index()] >= INF);
        // g's cc1 needs ti=1 → saturates.
        assert!(s.cc1[g.index()] >= INF);
        // but cc0 via a is fine.
        assert!(s.cc0[g.index()] < INF);
    }

    #[test]
    fn unobservable_cone_saturates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.tsv_out(g, "to"); // only sink is an unwrapped outbound TSV
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let s = Scoap::compute(&n, &acc);
        assert!(s.co[g.index()] >= INF);
        assert!(s.detect_cost(g, true) >= INF);
    }

    #[test]
    fn scan_ff_capture_observes() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.scan_dff(g, "q");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let s = Scoap::compute(&n, &acc);
        // g feeds a scan FF D pin → directly observed.
        assert_eq!(s.co[g.index()], 0);
        assert!(s.detect_cost(g, false) < INF);
    }
}

//! # prebond3d-atpg
//!
//! Automatic test pattern generation and fault simulation — the commercial
//! ATPG substitute of the `prebond3d` flow.
//!
//! The engine is a classical full-scan combinational ATPG stack:
//!
//! * [`logic`] — three-valued (0/1/X) scalar logic and 64-way bit-parallel
//!   two-valued logic,
//! * [`access`] — the *test access model*: which nodes a pre-bond tester
//!   can control and observe (scan flip-flops and wrapper cells yes,
//!   floating TSV endpoints no),
//! * [`fault`] — single stuck-at faults on gate outputs and fanout
//!   branches, with structural equivalence collapsing,
//! * [`scoap`] — SCOAP controllability/observability measures, used both
//!   for PODEM guidance and as the cheap testability estimate,
//! * [`sim`] — bit-parallel good-machine simulation,
//! * [`faultsim`] — parallel-pattern single-fault propagation (PPSFP)
//!   restricted to each fault's fanout cone,
//! * [`podem`] — PODEM deterministic test generation with X-path checking
//!   and backtrack limits,
//! * [`prune`] — static untestable-fault pruning from the
//!   `prebond3d-dataflow` certificates (skips cone resimulations while
//!   keeping every result byte-identical to the unpruned reference),
//! * [`transition`] — transition-fault (slow-to-rise/fall) testing with
//!   two-pattern tests built on the stuck-at engine,
//! * [`engine`] — the orchestrator: random-pattern phase, deterministic
//!   top-up, reverse-order compaction, coverage accounting.
//!
//! Pre-bond semantics fall out of the access model: an unwrapped inbound
//! TSV is a permanent-X source and an unwrapped outbound TSV an
//! unobservable sink, so faults whose tests require them become
//! undetectable and coverage drops — exactly the effect wrapper-cell
//! insertion exists to repair.
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_atpg::{engine, TestAccess, AtpgConfig};
//!
//! let die = itc99::generate_flat("d", 150, 12, 6, 6, 3);
//! let access = TestAccess::full_scan(&die);
//! let result = engine::run_stuck_at(&die, &access, &AtpgConfig::fast());
//! assert!(result.coverage() > 0.5);
//! ```

pub mod access;
pub mod compaction;
pub mod diagnosis;
pub mod engine;
pub mod fault;
pub mod faultsim;
pub mod logic;
pub mod podem;
pub mod prune;
pub mod scoap;
pub mod sim;
pub mod transition;

pub use access::TestAccess;
pub use diagnosis::{FaultDictionary, Signature};
pub use engine::{AtpgConfig, AtpgResult};
pub use fault::{Fault, FaultList, FaultSite, StuckAt};
pub use logic::V3;
pub use sim::{Lanes, Pattern, SimError};

//! The ATPG orchestrator: random phase, deterministic top-up, compaction.
//!
//! Mirrors the classical commercial flow:
//!
//! 1. **Random phase** — 64-pattern blocks of seeded random patterns are
//!    fault-simulated with fault dropping (packed `PREBOND3D_LANES` blocks
//!    to a physical batch, credited block-by-block so results are
//!    lane-width invariant); only patterns that detect a new fault are
//!    kept. The phase ends when a block's yield drops below a threshold.
//! 2. **Deterministic phase** — PODEM targets every remaining fault;
//!    each generated cube is filled and fault-simulated against all
//!    remaining faults (opportunistic dropping).
//! 3. **Reverse-order compaction** — patterns are re-fault-simulated in
//!    reverse order of generation; patterns that detect nothing new are
//!    discarded. This is the pattern-count lever the paper's Tables IV/V
//!    report.

use prebond3d_obs as obs;
use prebond3d_resilience::{degrade, Deadline};
use prebond3d_rng::StdRng;

use prebond3d_netlist::Netlist;

use crate::access::TestAccess;
use crate::fault::FaultList;
use crate::faultsim::FaultSimulator;
use crate::podem::{Podem, PodemConfig, PodemOutcome};
use crate::scoap::Scoap;
use crate::sim::Pattern;
use crate::transition::{self, TransitionFault};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Maximum random 64-pattern batches.
    pub max_random_batches: usize,
    /// Stop the random phase when a batch detects fewer new faults.
    pub min_random_yield: usize,
    /// PODEM limits.
    pub podem: PodemConfig,
    /// Run reverse-order compaction.
    pub compact: bool,
    /// RNG seed (pattern fill and random phase).
    pub seed: u64,
}

impl AtpgConfig {
    /// Production-ish effort.
    pub fn thorough() -> Self {
        AtpgConfig {
            max_random_batches: 32,
            min_random_yield: 2,
            podem: PodemConfig {
                backtrack_limit: 4000,
                ..PodemConfig::default()
            },
            compact: true,
            seed: 0xA7_9C,
        }
    }

    /// Effort scaled to the netlist size: full effort below 15 k gates,
    /// reduced deterministic effort above (PODEM implication is linear in
    /// netlist size, so large dies pay quadratically for hard faults).
    pub fn scaled_for(netlist_len: usize) -> Self {
        if netlist_len > 15_000 {
            AtpgConfig {
                max_random_batches: 16,
                min_random_yield: 8,
                podem: PodemConfig {
                    backtrack_limit: 64,
                    ..PodemConfig::default()
                },
                compact: true,
                seed: 0xA7_9C,
            }
        } else {
            AtpgConfig::thorough()
        }
    }

    /// Cheap settings for unit tests.
    pub fn fast() -> Self {
        AtpgConfig {
            max_random_batches: 4,
            min_random_yield: 1,
            podem: PodemConfig {
                backtrack_limit: 150,
                ..PodemConfig::default()
            },
            compact: true,
            seed: 0xA7_9C,
        }
    }
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig::thorough()
    }
}

/// The outcome of an ATPG run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgResult {
    /// The final (compacted) test set.
    pub patterns: Vec<Pattern>,
    /// Size of the fault universe.
    pub total_faults: usize,
    /// Faults detected by the final test set.
    pub detected: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults abandoned at the backtrack limit.
    pub aborted: usize,
}

impl AtpgResult {
    /// Fault coverage: `detected / total` (the paper's metric).
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Test coverage: detected over *testable* faults.
    pub fn test_coverage(&self) -> f64 {
        let testable = self.total_faults - self.untestable;
        if testable == 0 {
            return 1.0;
        }
        self.detected as f64 / testable as f64
    }

    /// Number of test patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

/// Structural untestability check: the fault cannot be excited (the
/// needed value at its driver is unreachable) or cannot be observed (no
/// path from the propagation root to any observation point). Both SCOAP
/// saturations are sound proofs under the access model.
pub(crate) fn scoap_untestable(
    scoap: &Scoap,
    netlist: &Netlist,
    fault: crate::fault::Fault,
) -> bool {
    use crate::scoap::INF;
    let driver = fault.site.driver(netlist);
    let cc = if fault.stuck.excitation() {
        scoap.cc1[driver.index()]
    } else {
        scoap.cc0[driver.index()]
    };
    if cc >= INF {
        return true;
    }
    let root = fault.site.propagation_root();
    // Observability is defined at the root's *output*; for faults on the
    // pin of a pure sink, fall back to the driver's observability.
    let co = scoap.co[root.index()].min(scoap.co[driver.index()]);
    co >= INF
}

fn random_pattern(rng: &mut StdRng, access: &TestAccess) -> Pattern {
    let mut bits: Vec<bool> = (0..access.width()).map(|_| rng.gen()).collect();
    for &(node, v) in access.pinned() {
        bits[access.rank_of(node).expect("pinned controllable")] = v;
    }
    Pattern { bits }
}

/// Keep only the patterns that first-detect some fault, preserving order.
/// `masks[f]` is the per-pattern detection mask of fault `f` in this batch.
fn credit_patterns(batch: &[Pattern], masks: &[u64], alive: &mut [bool]) -> (Vec<Pattern>, usize) {
    credit_block(batch, masks, 1, 0, alive)
}

/// [`credit_patterns`] over one 64-pattern block of a wide batch: fault
/// `f`'s mask for the block is `masks[f * w + lane]`. Replaying a wide
/// batch's blocks through this in order reproduces the narrow
/// simulate-credit loop decision-for-decision (the per-lane masks are
/// byte-identical to narrow batches — see `faultsim`), which is what keeps
/// `AtpgResult` invariant across lane widths.
fn credit_block(
    block: &[Pattern],
    masks: &[u64],
    w: usize,
    lane: usize,
    alive: &mut [bool],
) -> (Vec<Pattern>, usize) {
    let mut useful = vec![false; block.len()];
    let mut newly = 0usize;
    for (f, a) in alive.iter_mut().enumerate() {
        let mask = masks[f * w + lane];
        if !*a || mask == 0 {
            continue;
        }
        *a = false;
        newly += 1;
        useful[mask.trailing_zeros() as usize] = true;
    }
    obs::count("atpg.faults_dropped", newly as u64);
    let kept = block
        .iter()
        .zip(useful.iter())
        .filter(|(_, &u)| u)
        .map(|(p, _)| p.clone())
        .collect();
    (kept, newly)
}

/// Run stuck-at ATPG over the full collapsed fault universe.
pub fn run_stuck_at(netlist: &Netlist, access: &TestAccess, config: &AtpgConfig) -> AtpgResult {
    let list = FaultList::collapsed(netlist);
    run_stuck_at_on(netlist, access, config, &list)
}

/// Run stuck-at ATPG against an explicit fault list. The testability
/// probes use this to target only the faults inside a candidate pair's
/// logic cones instead of re-sweeping the whole die per probe.
pub fn run_stuck_at_on(
    netlist: &Netlist,
    access: &TestAccess,
    config: &AtpgConfig,
    list: &FaultList,
) -> AtpgResult {
    let _span = obs::span("atpg_stuck_at");
    // Phase budget: one deadline covers the whole ATPG run (random phase,
    // PODEM sweep, compaction); an already-armed PODEM deadline wins.
    let deadline = Deadline::for_phase();
    let mut podem_config = config.podem;
    if !podem_config.deadline.is_armed() {
        podem_config.deadline = deadline;
    }
    let scoap = Scoap::compute(netlist, access);
    let mut alive = vec![true; list.len()];
    let mut untestable = 0usize;
    // --- Static pruning (DESIGN.md §14) ------------------------------------
    // Faults that are both dataflow-undetectable and SCOAP-saturated are
    // retired before any simulation: the unpruned run would classify each
    // of them untestable via the SCOAP pre-screen below without consuming
    // RNG or emitting patterns, so every downstream artifact stays
    // byte-identical while the per-fault cone resimulations disappear.
    // `PREBOND3D_NO_CACHE=1` disables pruning and is the reference oracle.
    if prebond3d_netlist::tuning::cache_enabled() {
        let analysis = crate::prune::PruneAnalysis::new(netlist, access);
        let mask = crate::prune::prune_mask(&analysis, &scoap, netlist, access, &list.faults);
        let mut pruned = 0u64;
        for (a, m) in alive.iter_mut().zip(&mask) {
            if *m {
                *a = false;
                pruned += 1;
            }
        }
        untestable += pruned as usize;
        obs::count("atpg.faults_pruned", pruned);
    }
    let mut fs = FaultSimulator::new(netlist);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut patterns: Vec<Pattern> = Vec::new();

    // --- Random phase -----------------------------------------------------
    // Up to `lanes` logical 64-pattern blocks are pre-generated and fault-
    // simulated as one wide physical batch; crediting then *replays* the
    // blocks in order against the live-fault set, reproducing the narrow
    // loop's stop decisions (yield threshold, fault-universe exhaustion)
    // exactly. If the phase stops mid-batch the RNG is rewound to the
    // checkpoint and fast-forwarded over only the consumed blocks, so the
    // deterministic phase's fill stream is identical at every lane width.
    // (The phase-budget deadline is polled per physical batch rather than
    // per block; it is wall-clock and thus outside the determinism
    // contract.)
    let lanes = prebond3d_netlist::tuning::lanes();
    let mut blocks_done = 0usize;
    'random: while blocks_done < config.max_random_batches {
        if !alive.iter().any(|&a| a) {
            break;
        }
        if deadline.expired() {
            degrade::record("atpg", "stop_random_phase", "phase budget expired");
            break;
        }
        let blocks = lanes.min(config.max_random_batches - blocks_done);
        let checkpoint = rng.clone();
        let batch: Vec<Pattern> = (0..blocks * 64)
            .map(|_| random_pattern(&mut rng, access))
            .collect();
        let (w, masks) = fs
            .simulate_batch_any_wide(netlist, access, &batch, &list.faults, &alive)
            .expect("random batch sized to lane capacity");
        let mut consumed = 0usize;
        let mut stop = false;
        for b in 0..blocks {
            if b > 0 && !alive.iter().any(|&a| a) {
                stop = true;
                break;
            }
            let block = &batch[b * 64..(b + 1) * 64];
            obs::count("atpg.random_batches", 1);
            let (kept, newly) = credit_block(block, masks, w, b, &mut alive);
            patterns.extend(kept);
            consumed = b + 1;
            blocks_done += 1;
            if newly < config.min_random_yield {
                stop = true;
                break;
            }
        }
        if consumed < blocks {
            // Rewind and re-consume: the stream position must equal what a
            // block-at-a-time run would have left behind.
            rng = checkpoint;
            for _ in 0..consumed * 64 {
                let _ = random_pattern(&mut rng, access);
            }
        }
        if stop {
            break 'random;
        }
    }

    // --- Deterministic phase ----------------------------------------------
    let mut podem = Podem::new(netlist, access, &scoap, podem_config);
    let mut aborted = 0usize;
    let mut pending: Vec<Pattern> = Vec::new();

    let flush = |pending: &mut Vec<Pattern>,
                 patterns: &mut Vec<Pattern>,
                 alive: &mut [bool],
                 fs: &mut FaultSimulator| {
        if pending.is_empty() {
            return;
        }
        let masks = fs
            .simulate_batch_any(netlist, access, pending, &list.faults, alive)
            .expect("pending flush holds at most 64 patterns");
        let (kept, _) = credit_patterns(pending, masks, alive);
        patterns.extend(kept);
        pending.clear();
    };

    for (f, fault) in list.faults.iter().enumerate() {
        if !alive[f] {
            continue;
        }
        if deadline.expired() {
            // Budget gone: every remaining live fault is aborted-with-
            // reason, in one pass, so the sweep still terminates promptly.
            let remaining = alive[f..].iter().filter(|&&a| a).count();
            for a in &mut alive[f..] {
                *a = false;
            }
            aborted += remaining;
            degrade::record(
                "atpg",
                "abort_faults",
                format!("{remaining} faults aborted at phase budget"),
            );
            break;
        }
        // SCOAP pre-screen: saturated controllability of the excitation
        // value or saturated observability of the propagation root is a
        // *structural proof* of untestability — skip the search.
        if scoap_untestable(&scoap, netlist, *fault) {
            alive[f] = false;
            untestable += 1;
            continue;
        }
        match podem.generate(*fault) {
            PodemOutcome::Test(cube) => {
                let mut pattern = Pattern::from_v3(&cube, false);
                // Random-fill don't-cares for opportunistic detection.
                for (rank, bit) in pattern.bits.iter_mut().enumerate() {
                    if cube[rank] == crate::logic::V3::X {
                        *bit = rng.gen();
                    }
                }
                for &(node, v) in access.pinned() {
                    pattern.bits[access.rank_of(node).expect("pinned")] = v;
                }
                pending.push(pattern);
                if pending.len() == 64 {
                    flush(&mut pending, &mut patterns, &mut alive, &mut fs);
                }
            }
            PodemOutcome::Untestable => {
                alive[f] = false;
                untestable += 1;
            }
            PodemOutcome::Aborted => {
                alive[f] = false;
                aborted += 1;
            }
        }
    }
    flush(&mut pending, &mut patterns, &mut alive, &mut fs);

    // --- Compaction --------------------------------------------------------
    if config.compact {
        if deadline.expired() {
            degrade::record(
                "atpg",
                "skip_compaction",
                format!(
                    "{} patterns kept uncompacted at phase budget",
                    patterns.len()
                ),
            );
        } else {
            patterns = reverse_order_compact(netlist, access, list, &mut fs, patterns);
        }
    }

    // Final accounting: simulate the final set against the full universe.
    let detected = count_detected(netlist, access, list, &mut fs, &patterns);
    AtpgResult {
        patterns,
        total_faults: list.len(),
        detected,
        untestable,
        aborted,
    }
}

/// Reverse-order compaction: later patterns (deterministic, targeted) get
/// first credit; earlier patterns that add nothing are dropped.
fn reverse_order_compact(
    netlist: &Netlist,
    access: &TestAccess,
    list: &FaultList,
    fs: &mut FaultSimulator,
    patterns: Vec<Pattern>,
) -> Vec<Pattern> {
    let _span = obs::span("atpg_compact");
    let before = patterns.len();
    let lanes = prebond3d_netlist::tuning::lanes();
    let mut alive = vec![true; list.len()];
    let mut keep: Vec<Pattern> = Vec::new();
    let reversed: Vec<Pattern> = patterns.into_iter().rev().collect();
    // Wide windows, narrow crediting: each physical batch carries up to
    // `lanes` 64-pattern blocks, and the per-block replay below makes the
    // keep/drop decisions in exactly the order the narrow 64-at-a-time
    // loop would (per-lane masks are byte-identical to narrow batches).
    for window in reversed.chunks(lanes * 64) {
        let (w, masks) = fs
            .simulate_batch_any_wide(netlist, access, window, &list.faults, &alive)
            .expect("compaction window sized to lane capacity");
        let mut useful = vec![false; window.len()];
        for b in 0..window.len().div_ceil(64) {
            for (f, a) in alive.iter_mut().enumerate() {
                let mask = masks[f * w + b];
                if *a && mask != 0 {
                    *a = false;
                    useful[b * 64 + mask.trailing_zeros() as usize] = true;
                }
            }
        }
        for (p, &u) in window.iter().zip(useful.iter()) {
            if u {
                keep.push(p.clone());
            }
        }
    }
    keep.reverse();
    obs::count("atpg.compact_kept", keep.len() as u64);
    obs::count("atpg.compact_dropped", (before - keep.len()) as u64);
    keep
}

fn count_detected(
    netlist: &Netlist,
    access: &TestAccess,
    list: &FaultList,
    fs: &mut FaultSimulator,
    patterns: &[Pattern],
) -> usize {
    let lanes = prebond3d_netlist::tuning::lanes();
    let mut alive = vec![true; list.len()];
    for window in patterns.chunks(lanes * 64) {
        let (w, masks) = fs
            .simulate_batch_any_wide(netlist, access, window, &list.faults, &alive)
            .expect("accounting window sized to lane capacity");
        for (f, a) in alive.iter_mut().enumerate() {
            if *a && masks[f * w..(f + 1) * w].iter().any(|&m| m != 0) {
                *a = false;
            }
        }
    }
    alive.iter().filter(|&&a| !a).count()
}

/// Run transition-fault ATPG (two-pattern tests, enhanced-scan style).
pub fn run_transition(netlist: &Netlist, access: &TestAccess, config: &AtpgConfig) -> AtpgResult {
    let _span = obs::span("atpg_transition");
    let deadline = Deadline::for_phase();
    let mut podem_config = config.podem;
    if !podem_config.deadline.is_armed() {
        podem_config.deadline = deadline;
    }
    let faults = transition::transition_universe(netlist);
    let mut alive = vec![true; faults.len()];
    let mut fs = FaultSimulator::new(netlist);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7261_6e73);
    let mut patterns: Vec<Pattern> = Vec::new();

    // --- Random phase: a random sequence; consecutive pairs test edges.
    for _ in 0..config.max_random_batches {
        if !alive.iter().any(|&a| a) {
            break;
        }
        if deadline.expired() {
            degrade::record("atpg", "stop_random_phase", "phase budget expired");
            break;
        }
        let batch: Vec<Pattern> = (0..64).map(|_| random_pattern(&mut rng, access)).collect();
        obs::count("atpg.random_batches", 1);
        // Evaluate with one-pattern overlap into the existing tail.
        let mut seq: Vec<Pattern> = Vec::with_capacity(65);
        if let Some(last) = patterns.last() {
            seq.push(last.clone());
        }
        seq.extend(batch.iter().cloned());
        let det = transition::simulate_sequence(&mut fs, netlist, access, &seq, &faults, &alive);
        let newly = det.iter().filter(|&&d| d).count();
        for (f, d) in det.into_iter().enumerate() {
            if d {
                alive[f] = false;
            }
        }
        patterns.extend(batch);
        if newly < config.min_random_yield {
            break;
        }
    }

    // --- Deterministic: v1 justifies the initial value, v2 is the
    // stuck-at launch test.
    let scoap = Scoap::compute(netlist, access);
    let mut podem = Podem::new(netlist, access, &scoap, podem_config);
    let mut untestable = 0usize;
    let mut aborted = 0usize;

    for (f, fault) in faults.iter().enumerate() {
        if !alive[f] {
            continue;
        }
        if deadline.expired() {
            let remaining = alive[f..].iter().filter(|&&a| a).count();
            for a in &mut alive[f..] {
                *a = false;
            }
            aborted += remaining;
            degrade::record(
                "atpg",
                "abort_faults",
                format!("{remaining} transition faults aborted at phase budget"),
            );
            break;
        }
        let launch = fault.launch_fault();
        if scoap_untestable(&scoap, netlist, launch) {
            alive[f] = false;
            untestable += 1;
            continue;
        }
        let v2 = match podem.generate(launch) {
            PodemOutcome::Test(cube) => cube,
            PodemOutcome::Untestable => {
                alive[f] = false;
                untestable += 1;
                continue;
            }
            PodemOutcome::Aborted => {
                alive[f] = false;
                aborted += 1;
                continue;
            }
        };
        let site_driver = fault.site.driver(netlist);
        let v1 = match podem.justify(site_driver, fault.initial_value()) {
            PodemOutcome::Test(cube) => cube,
            PodemOutcome::Untestable => {
                alive[f] = false;
                untestable += 1;
                continue;
            }
            PodemOutcome::Aborted => {
                alive[f] = false;
                aborted += 1;
                continue;
            }
        };
        let fill = |cube: &[crate::logic::V3], rng: &mut StdRng| {
            let mut p = Pattern::from_v3(cube, false);
            for (rank, bit) in p.bits.iter_mut().enumerate() {
                if cube[rank] == crate::logic::V3::X {
                    *bit = rng.gen();
                }
            }
            for &(node, v) in access.pinned() {
                p.bits[access.rank_of(node).expect("pinned")] = v;
            }
            p
        };
        let p1 = fill(&v1, &mut rng);
        let p2 = fill(&v2, &mut rng);
        let pair = vec![p1, p2];
        let det = transition::simulate_sequence(&mut fs, netlist, access, &pair, &faults, &alive);
        for (g, d) in det.into_iter().enumerate() {
            if d {
                alive[g] = false;
            }
        }
        patterns.extend(pair);
    }

    // Final accounting over the whole sequence.
    let mut final_alive = vec![true; faults.len()];
    let det = transition::simulate_sequence(
        &mut fs,
        netlist,
        access,
        &patterns,
        &faults,
        &final_alive.clone(),
    );
    for (f, d) in det.into_iter().enumerate() {
        if d {
            final_alive[f] = false;
        }
    }
    let detected = final_alive.iter().filter(|&&a| !a).count();

    AtpgResult {
        patterns,
        total_faults: faults.len(),
        detected,
        untestable,
        aborted,
    }
}

/// Convenience wrapper: which of `faults` does this pattern set detect?
/// Used by the incremental testability probes in the WCM flow.
pub fn detected_by(
    netlist: &Netlist,
    access: &TestAccess,
    faults: &[crate::fault::Fault],
    patterns: &[Pattern],
) -> Vec<bool> {
    let lanes = prebond3d_netlist::tuning::lanes();
    let mut fs = FaultSimulator::new(netlist);
    let mut alive = vec![true; faults.len()];
    for window in patterns.chunks(lanes * 64) {
        let (w, masks) = fs
            .simulate_batch_any_wide(netlist, access, window, faults, &alive)
            .expect("probe window sized to lane capacity");
        for (f, a) in alive.iter_mut().enumerate() {
            if *a && masks[f * w..(f + 1) * w].iter().any(|&m| m != 0) {
                *a = false;
            }
        }
    }
    alive.into_iter().map(|a| !a).collect()
}

/// Detected transition faults for a pattern *sequence*.
pub fn transition_detected_by(
    netlist: &Netlist,
    access: &TestAccess,
    faults: &[TransitionFault],
    patterns: &[Pattern],
) -> Vec<bool> {
    let mut fs = FaultSimulator::new(netlist);
    let alive = vec![true; faults.len()];
    transition::simulate_sequence(&mut fs, netlist, access, patterns, faults, &alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;

    #[test]
    fn stuck_at_atpg_reaches_high_coverage_on_clean_die() {
        let die = itc99::generate_flat("d", 200, 14, 6, 6, 8);
        let access = TestAccess::full_scan(&die);
        let r = run_stuck_at(&die, &access, &AtpgConfig::fast());
        // The fast config aborts hard faults early; judge on test coverage
        // (detected over not-proven-untestable), the tools' usual metric.
        assert!(
            r.test_coverage() > 0.84,
            "clean full-scan die should be highly testable, got {:.3} ({} aborted)",
            r.test_coverage(),
            r.aborted
        );
        assert!(r.pattern_count() > 0);
        assert!(r.pattern_count() < 200, "compaction keeps the set small");
        // Final accounting is consistent.
        assert!(r.detected <= r.total_faults);
    }

    #[test]
    fn floating_tsvs_reduce_coverage() {
        let spec = itc99::DieSpec {
            name: "tsv_die".into(),
            scan_flip_flops: 14,
            gates: 200,
            inbound_tsvs: 12,
            outbound_tsvs: 12,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 8,
        };
        let die = itc99::generate_die(&spec);
        let access = TestAccess::full_scan(&die);
        let r = run_stuck_at(&die, &access, &AtpgConfig::fast());
        let clean = itc99::generate_flat("clean", 200, 14, 4, 4, 8);
        let r_clean = run_stuck_at(&clean, &TestAccess::full_scan(&clean), &AtpgConfig::fast());
        assert!(
            r.coverage() < r_clean.coverage(),
            "floating TSVs must hurt coverage: {:.3} !< {:.3}",
            r.coverage(),
            r_clean.coverage()
        );
        assert!(r.untestable > 0, "blocked faults are proven untestable");
    }

    #[test]
    fn transition_atpg_runs_and_detects() {
        let die = itc99::generate_flat("d", 150, 10, 5, 5, 4);
        let access = TestAccess::full_scan(&die);
        let r = run_transition(&die, &access, &AtpgConfig::fast());
        assert!(
            r.test_coverage() > 0.75,
            "transition coverage too low: {:.3}",
            r.test_coverage()
        );
        // Transition sets are larger than stuck-at sets (pairs).
        assert!(r.pattern_count() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let die = itc99::generate_flat("d", 120, 8, 5, 5, 10);
        let access = TestAccess::full_scan(&die);
        let a = run_stuck_at(&die, &access, &AtpgConfig::fast());
        let b = run_stuck_at(&die, &access, &AtpgConfig::fast());
        assert_eq!(a, b);
    }

    /// The pruning byte-identity contract: a die riddled with floating
    /// TSVs (many statically-untestable faults) must produce the exact
    /// same `AtpgResult` with pruning on and off — same patterns, same
    /// coverage, same untestable split.
    #[test]
    fn pruned_run_is_byte_identical_to_reference() {
        use prebond3d_netlist::tuning;
        let spec = itc99::DieSpec {
            name: "prune_die".into(),
            scan_flip_flops: 12,
            gates: 180,
            inbound_tsvs: 10,
            outbound_tsvs: 10,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 17,
        };
        let die = itc99::generate_die(&spec);
        let access = TestAccess::full_scan(&die);
        tuning::force_no_cache(Some(true));
        let reference = run_stuck_at(&die, &access, &AtpgConfig::fast());
        tuning::force_no_cache(Some(false));
        let pruned = run_stuck_at(&die, &access, &AtpgConfig::fast());
        tuning::force_no_cache(None);
        assert_eq!(reference, pruned);
        assert!(
            pruned.untestable > 0,
            "the floating-TSV die must have untestable faults"
        );
    }

    #[test]
    fn coverage_metrics_relate_sanely() {
        let die = itc99::generate_flat("d", 120, 8, 5, 5, 12);
        let access = TestAccess::full_scan(&die);
        let r = run_stuck_at(&die, &access, &AtpgConfig::fast());
        assert!(r.test_coverage() >= r.coverage());
        assert!(r.test_coverage() <= 1.0 + 1e-12);
    }
}

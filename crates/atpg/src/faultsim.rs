//! Parallel-pattern single-fault propagation (PPSFP) fault simulation.
//!
//! For each 64-pattern batch the good machine is simulated once; each
//! still-undetected fault is then injected and re-simulated **only over its
//! fanout cone**, event-driven (propagation stops where the faulty value
//! reconverges with the good value). Detection is registered at the access
//! model's observation points, requiring both good and faulty values to be
//! known — a tester cannot call a miscompare on an X.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prebond3d_netlist::{GateKind, Netlist};
use prebond3d_pool as pool;

use crate::access::TestAccess;
use crate::fault::{Fault, FaultSite};
use crate::sim::{eval_rail, Pattern, Rail, Simulator};

/// Epoch-stamped overlay of faulty values — the only mutable scratch a
/// single-fault resimulation needs. Each pool worker owns one overlay
/// (allocated once per worker, reused across its chunk of faults), which
/// is what makes the fault loop embarrassingly parallel: everything else
/// in a batch (`Simulator`, good machine, fault list) is shared read-only.
#[derive(Debug)]
struct Overlay {
    stamp: Vec<u32>,
    faulty: Vec<Rail>,
    epoch: u32,
}

impl Overlay {
    fn new(len: usize) -> Self {
        Overlay {
            stamp: vec![0; len],
            faulty: vec![(0, 0); len],
            epoch: 0,
        }
    }
}

/// Shared read-only context of one PPSFP batch.
struct BatchCtx<'a> {
    sim: &'a Simulator,
    netlist: &'a Netlist,
    access: &'a TestAccess,
    good: &'a [Rail],
    used: u64,
}

/// Below this many faults a batch stays serial: spawning threads costs
/// more than the cone resimulations themselves.
const PAR_FAULT_THRESHOLD: usize = 64;

/// Which patterns a fault's propagation may stop at. Resolved to a
/// concrete need mask once per batch, outside the fault loop (the `used`
/// mask it may expand to is a per-batch constant).
#[derive(Clone, Copy)]
enum NeedSpec<'a> {
    /// Exact masks: never stop early (need = 0 for every fault).
    Exact,
    /// Stop at the first detection (need = the batch's `used` mask).
    Any,
    /// A per-fault need mask (transition accounting).
    PerFault(&'a [u64]),
}

/// Reusable fault-simulation scratch state for one netlist.
#[derive(Debug)]
pub struct FaultSimulator {
    sim: Simulator,
    /// Overlay reused by the serial (single-thread) path.
    overlay: Overlay,
    /// Detection-mask buffer reused across batches (one slot per fault);
    /// batch entry points return a borrowed view of it.
    masks: Vec<u64>,
}

impl FaultSimulator {
    /// Prepare for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        FaultSimulator {
            sim: Simulator::new(netlist),
            overlay: Overlay::new(netlist.len()),
            masks: Vec::new(),
        }
    }

    /// Access to the inner good-machine simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Simulate `patterns` (≤ 64) against each fault in `faults` where
    /// `alive[i]` is true. Returns one detection bitmask per fault: bit *p*
    /// set ⇔ pattern *p* detects the fault. The slice borrows the
    /// simulator's persistent mask buffer (reused across batches); copy it
    /// out (`.to_vec()`) if it must outlive the next batch.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len() != faults.len()` or more than 64 patterns are
    /// given.
    pub fn simulate_batch(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> &[u64] {
        self.batch_masks(netlist, access, patterns, faults, alive, NeedSpec::Exact)
    }

    /// [`Self::simulate_batch`] that stops each fault's propagation at the
    /// first detecting observation point. The returned masks are partial
    /// (at least one bit of every detected fault is set) — enough for
    /// fault dropping and pattern crediting, and several times cheaper on
    /// large dies where the full fanout cone is deep. Not suitable for
    /// two-pattern (transition) accounting, which needs exact per-pattern
    /// masks.
    pub fn simulate_batch_any(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> &[u64] {
        self.batch_masks(netlist, access, patterns, faults, alive, NeedSpec::Any)
    }

    /// The shared batch driver: one good-machine simulation, then one
    /// cone-restricted resimulation per alive fault.
    ///
    /// Per-fault resimulations are independent (shared state is read-only,
    /// scratch is per-overlay), so with more than one pool thread the fault
    /// list is partitioned into index-contiguous chunks and the masks are
    /// merged back in fault order — bit-identical to the serial loop (see
    /// `prebond3d-pool`'s determinism contract). `PREBOND3D_THREADS=1`
    /// takes the exact pre-existing serial path with the persistent
    /// overlay.
    fn batch_masks(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
        spec: NeedSpec<'_>,
    ) -> &[u64] {
        assert_eq!(faults.len(), alive.len());
        prebond3d_obs::count("atpg.faultsim_batches", 1);
        // One histogram sample per batch call: the sample *count* is the
        // batch count (thread-invariant); only the latency values are
        // wall-clock and get zeroed under PREBOND3D_STABLE_MS.
        let batch_t0 = prebond3d_obs::is_active().then(std::time::Instant::now);
        let good = self.sim.run_batch(netlist, access, patterns);
        let used: u64 = if patterns.len() == 64 {
            u64::MAX
        } else {
            (1u64 << patterns.len()) - 1
        };
        // Resolve the need mask once, outside the fault loop.
        let const_need = match spec {
            NeedSpec::Exact => Some(0),
            NeedSpec::Any => Some(used),
            NeedSpec::PerFault(_) => None,
        };
        let need_at = |fi: usize| match spec {
            NeedSpec::PerFault(need) => need[fi],
            _ => const_need.unwrap_or(0),
        };
        let ctx = BatchCtx {
            sim: &self.sim,
            netlist,
            access,
            good: &good,
            used,
        };
        let threads = pool::threads();
        let evals: u64;
        if threads <= 1 || faults.len() < PAR_FAULT_THRESHOLD {
            self.masks.clear();
            self.masks.resize(faults.len(), 0);
            let mut tally = 0u64;
            for (fi, fault) in faults.iter().enumerate() {
                if alive[fi] {
                    let (mask, e) = simulate_one(&ctx, &mut self.overlay, *fault, need_at(fi));
                    self.masks[fi] = mask;
                    tally += e;
                }
            }
            evals = tally;
        } else {
            prebond3d_obs::count("atpg.faultsim_parallel_batches", 1);
            let ctx = &ctx;
            let need_at = &need_at;
            // ~8 chunks per worker for load balancing; ≥32 faults per chunk
            // so the per-chunk merge stays negligible next to cone
            // resimulation.
            let chunk = faults.len().div_ceil(threads * 8).max(32);
            let chunks = pool::par_chunks(
                faults.len(),
                chunk,
                || Overlay::new(netlist.len()),
                |overlay, range| {
                    let mut tally = 0u64;
                    let masks = range
                        .map(|fi| {
                            if alive[fi] {
                                let (mask, e) = simulate_one(ctx, overlay, faults[fi], need_at(fi));
                                tally += e;
                                mask
                            } else {
                                0
                            }
                        })
                        .collect::<Vec<u64>>();
                    (masks, tally)
                },
            );
            // Merge in chunk (= fault) order: masks and the eval tally are
            // both bit-identical to the serial loop.
            self.masks.clear();
            let mut tally = 0u64;
            for (chunk_masks, chunk_evals) in chunks {
                self.masks.extend_from_slice(&chunk_masks);
                tally += chunk_evals;
            }
            evals = tally;
        }
        prebond3d_obs::count("atpg.gate_evals", evals);
        if let Some(t0) = batch_t0 {
            prebond3d_obs::hist("atpg.faultsim_batch_ns", t0.elapsed().as_nanos() as u64);
        }
        &self.masks
    }

    /// Per-fault *need-mask* variant: propagation of fault `f` stops as
    /// soon as `detect & need[f] != 0`. The returned mask is partial but
    /// always contains at least one needed bit when any needed pattern
    /// detects — exactly what two-pattern (transition) dropping requires,
    /// where only the bit following an initializing pattern matters.
    pub fn simulate_batch_with_need(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
        need: &[u64],
    ) -> &[u64] {
        assert_eq!(faults.len(), need.len());
        self.batch_masks(
            netlist,
            access,
            patterns,
            faults,
            alive,
            NeedSpec::PerFault(need),
        )
    }
}

/// Detection mask of a single fault against an already-simulated good
/// machine, plus the number of rail evaluations performed (the
/// deterministic work unit behind the `atpg.gate_evals` counter). Pure
/// with respect to `ctx` (all reads); only `overlay` is written — which is
/// why one overlay per worker suffices.
fn simulate_one(ctx: &BatchCtx, overlay: &mut Overlay, fault: Fault, need: u64) -> (u64, u64) {
    let BatchCtx {
        sim,
        netlist,
        access,
        good,
        used,
    } = *ctx;
    overlay.epoch = overlay.epoch.wrapping_add(1);
    if overlay.epoch == 0 {
        // wrapped: clear stamps
        overlay.stamp.iter_mut().for_each(|s| *s = 0);
        overlay.epoch = 1;
    }
    let stuck_word = if fault.stuck.value() { used } else { 0 };
    let mut evals = 0u64;

    // Inject at the propagation root.
    let root = fault.site.propagation_root();
    let root_faulty: Rail = match fault.site {
        FaultSite::Output(_) => (stuck_word, !used),
        FaultSite::Input { gate, pin } => {
            let g = netlist.gate(gate);
            if !g.kind.is_combinational() {
                // Branch into a sequential/sink pin: the faulty value is
                // the stuck value as seen by the capture point; the
                // "gate output" for detection purposes is the pin value
                // itself, which only matters if the driver is observed —
                // handled below via driver comparison. Model the FF/sink
                // input as a passthrough.
                (stuck_word, !used)
            } else {
                let mut buf = [(0u64, 0u64); 3];
                for (k, (slot, &i)) in buf.iter_mut().zip(g.inputs.iter()).enumerate() {
                    *slot = if k == pin as usize {
                        (stuck_word, !used)
                    } else {
                        good[i.index()]
                    };
                }
                evals += 1;
                eval_rail(g.kind, &buf[..g.inputs.len()])
            }
        }
    };

    let gv = |overlay: &Overlay, i: usize| -> Rail {
        if overlay.stamp[i] == overlay.epoch {
            overlay.faulty[i]
        } else {
            good[i]
        }
    };

    // Difference mask at the root: where both values are known and
    // differ, or knownness changed (X→known divergence can become a
    // detection downstream only if it resolves; we track full rail).
    let root_good = good[root.index()];
    if root_faulty == root_good {
        return (0, evals);
    }
    overlay.stamp[root.index()] = overlay.epoch;
    overlay.faulty[root.index()] = root_faulty;

    let mut detect = 0u64;
    let check_observed = |detect: &mut u64, idx: usize, f: Rail| {
        let g = good[idx];
        let diff = (g.0 ^ f.0) & !(g.1 | f.1) & used;
        *detect |= diff;
    };

    if access.is_observed(root) {
        if let FaultSite::Output(_) = fault.site {
            check_observed(&mut detect, root.index(), root_faulty);
        } else {
            // Input-pin fault: the observed stem value is the gate's
            // (already faulty-evaluated) output.
            check_observed(&mut detect, root.index(), root_faulty);
        }
    }
    // Special case: a branch fault into an observed *capture pin*. The
    // observation list stores drivers; a branch fault on the FF's D pin
    // diverges the captured value even though the driver stem is fine.
    // We conservatively account for it by treating the pin's stuck
    // value as the captured value when the pin's gate is sequential or
    // a sink marker.
    if detect & need != 0 {
        return (detect, evals);
    }
    if let FaultSite::Input { gate, .. } = fault.site {
        let gk = netlist.gate(gate).kind;
        if !gk.is_combinational() && access.is_observed(fault.site.driver(netlist)) {
            // Driver value observed through this very pin: compare the
            // driver's good value with the stuck value.
            let g = good[fault.site.driver(netlist).index()];
            let f: Rail = (stuck_word, !used);
            let diff = (g.0 ^ f.0) & !(g.1 | f.1) & used;
            detect |= diff;
        }
    }

    // Event-driven propagation in topological-rank order.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    let push_fanouts = |heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
                        id: prebond3d_netlist::GateId| {
        for &fo in netlist.fanout(id) {
            let kind = netlist.gate(fo).kind;
            if kind.is_sequential() || matches!(kind, GateKind::Output | GateKind::TsvOut) {
                continue; // frame boundary; detection uses the driver
            }
            heap.push(Reverse((sim.rank(fo), fo.0)));
        }
    };
    push_fanouts(&mut heap, root);

    let mut last: Option<u32> = None;
    while let Some(Reverse((rank, raw))) = heap.pop() {
        if last == Some(raw) {
            continue; // deduplicate multi-pushes
        }
        last = Some(raw);
        let _ = rank;
        let id = prebond3d_netlist::GateId(raw);
        let gate = netlist.gate(id);
        // Max arity is 3; a stack buffer avoids a heap allocation per
        // evaluated gate, which dominates the first (all-faults-alive)
        // simulation batch on the large b18 dies.
        let mut buf = [(0u64, 0u64); 3];
        for (slot, &i) in buf.iter_mut().zip(gate.inputs.iter()) {
            *slot = gv(overlay, i.index());
        }
        evals += 1;
        let f = eval_rail(gate.kind, &buf[..gate.inputs.len()]);
        if f == good[id.index()] {
            continue; // reconverged: no event
        }
        overlay.stamp[id.index()] = overlay.epoch;
        overlay.faulty[id.index()] = f;
        if access.is_observed(id) {
            check_observed(&mut detect, id.index(), f);
            if detect & need != 0 {
                return (detect, evals);
            }
        }
        push_fanouts(&mut heap, id);
    }
    (detect, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultList, StuckAt};
    use prebond3d_netlist::NetlistBuilder;

    /// y = and(a, b), observed at a PO; classic textbook example.
    fn and_rig() -> (Netlist, TestAccess) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        (n, acc)
    }

    #[test]
    fn detects_and_gate_faults() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let mut fs = FaultSimulator::new(&n);
        // Patterns: 00, 01, 10, 11.
        let ps: Vec<Pattern> = [(false, false), (false, true), (true, false), (true, true)]
            .iter()
            .map(|&(x, y)| Pattern { bits: vec![x, y] })
            .collect();
        let faults = vec![
            Fault::output(g, StuckAt::Zero),
            Fault::output(g, StuckAt::One),
        ];
        let masks = fs.simulate_batch(&n, &acc, &ps, &faults, &[true, true]);
        // sa0 detected only by 11 (bit 3); sa1 by 00,01,10 (bits 0..=2).
        assert_eq!(masks[0], 0b1000);
        assert_eq!(masks[1], 0b0111);
    }

    #[test]
    fn skipped_faults_return_zero() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let mut fs = FaultSimulator::new(&n);
        let ps = vec![Pattern {
            bits: vec![true, true],
        }];
        let faults = vec![Fault::output(g, StuckAt::Zero)];
        let masks = fs.simulate_batch(&n, &acc, &ps, &faults, &[false]);
        assert_eq!(masks[0], 0);
    }

    #[test]
    fn branch_faults_differ_from_stem() {
        // a fans out to g1 = and(a, b) and g2 = or(a, c).
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let y = b.input("c");
        let g1 = b.gate(GateKind::And, &[a, x], "g1");
        let g2 = b.gate(GateKind::Or, &[a, y], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let mut fs = FaultSimulator::new(&n);
        // Pattern a=1,b=1,c=0: stem a/sa0 flips both g1 (1→0) and g2 (1→0).
        // Branch g1.in0/sa0 flips only g1.
        let p = Pattern {
            bits: vec![true, true, false],
        };
        let faults = vec![
            Fault::output(a, StuckAt::Zero),
            Fault::input(g1, 0, StuckAt::Zero),
            Fault::input(g2, 0, StuckAt::Zero),
        ];
        let masks = fs.simulate_batch(&n, &acc, &[p], &faults, &[true; 3]);
        assert_eq!(masks[0], 1, "stem fault detected");
        assert_eq!(masks[1], 1, "g1 branch detected via o1");
        assert_eq!(masks[2], 1, "g2 branch detected via o2 (1|0→0|0)");
    }

    #[test]
    fn x_from_floating_tsv_blocks_detection() {
        // g = and(ti, a): with ti floating, g/sa0 cannot be excited
        // (good value unknown), so nothing is ever detected.
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let mut fs = FaultSimulator::new(&n);
        let ps = vec![Pattern { bits: vec![false] }, Pattern { bits: vec![true] }];
        let faults = vec![
            Fault::output(g, StuckAt::Zero),
            Fault::output(g, StuckAt::One),
        ];
        let masks = fs.simulate_batch(&n, &acc, &ps, &faults, &[true, true]);
        assert_eq!(masks[0], 0, "sa0 needs good=1, impossible with X input");
        // sa1: good must be 0; with a=0 AND is 0 regardless of X → good
        // known 0, faulty 1 → detected.
        assert_eq!(masks[1], 0b11 & masks[1]);
        assert!(masks[1] & 0b01 != 0, "a=0 pattern detects sa1");
    }

    #[test]
    fn parallel_detection_masks_are_bit_identical_to_serial() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 400, 24, 6, 6, 11);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        assert!(
            list.len() >= PAR_FAULT_THRESHOLD,
            "must take the parallel path"
        );
        let mut state = 0x9E3779B9u64;
        let ps: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..acc.width())
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 33 & 1 == 1
                    })
                    .collect(),
            })
            .collect();
        let alive = vec![true; list.len()];
        let masks_at = |threads: usize| {
            pool::with_threads(threads, || {
                let mut fs = FaultSimulator::new(&die);
                fs.simulate_batch(&die, &acc, &ps, &list.faults, &alive)
                    .to_vec()
            })
        };
        let serial = masks_at(1);
        assert_eq!(masks_at(2), serial, "2 threads must match serial");
        assert_eq!(masks_at(8), serial, "8 threads must match serial");
    }

    #[test]
    fn full_universe_on_generated_die_is_mostly_detectable() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 120, 10, 5, 5, 9);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        let mut fs = FaultSimulator::new(&die);
        // 256 random-ish patterns via a simple LCG.
        let mut alive = vec![true; list.len()];
        let mut detected = 0usize;
        let mut state = 0x12345678u64;
        for _ in 0..4 {
            let ps: Vec<Pattern> = (0..64)
                .map(|_| Pattern {
                    bits: (0..acc.width())
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33 & 1 == 1
                        })
                        .collect(),
                })
                .collect();
            let masks = fs.simulate_batch(&die, &acc, &ps, &list.faults, &alive);
            for (i, m) in masks.iter().enumerate() {
                if alive[i] && *m != 0 {
                    alive[i] = false;
                    detected += 1;
                }
            }
        }
        let coverage = detected as f64 / list.len() as f64;
        assert!(
            coverage > 0.6,
            "random patterns should detect most faults, got {coverage:.2}"
        );
    }
}

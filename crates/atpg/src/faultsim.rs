//! Parallel-pattern single-fault propagation (PPSFP) fault simulation.
//!
//! For each pattern batch the good machine is simulated once; each still-
//! undetected fault is then injected and re-simulated **only over its
//! fanout cone**, event-driven (propagation stops where the faulty value
//! reconverges with the good value). Detection is registered at the access
//! model's observation points, requiring both good and faulty values to be
//! known — a tester cannot call a miscompare on an X.
//!
//! # Wide lanes
//!
//! A batch word is a [`Lanes<W>`] bundle (W ∈ {1, 4, 8}), so one physical
//! batch carries up to `W * 64` patterns split into `W` logical 64-pattern
//! *blocks* (lane `l` = block `l`). The walk is a single generic
//! implementation monomorphized per width; `W=1` is bit-for-bit the
//! pre-existing narrow walk (`PREBOND3D_NO_CACHE=1` pins it as the
//! oracle). Two invariants make the wide masks **byte-identical** to
//! running the blocks narrowly, which the engine's credit replay relies
//! on:
//!
//! * **Per-lane freeze** — in early-exit (`Any`/`PerFault`) modes the
//!   narrow walk returns at the first checkpoint where `detect & need != 0`,
//!   truncating the mask there. The wide walk instead *freezes* each
//!   satisfied lane (stops accumulating its bits) at the same checkpoints
//!   and exits only once every lane with need bits is satisfied, so every
//!   lane's partial mask equals its narrow counterpart.
//! * **Per-lane evaluation** — rail algebra is bitwise, so a jointly
//!   walked cone (the union of the per-lane event cones) computes each
//!   lane exactly as its own walk would: nodes a lane reconverged at carry
//!   that lane's good value in the stamped overlay.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use prebond3d_netlist::{GateKind, Netlist};
use prebond3d_pool as pool;

use crate::access::TestAccess;
use crate::fault::{Fault, FaultSite};
use crate::sim::{eval_rail_wide, Lanes, Pattern, RailW, SimError, Simulator};

/// Epoch-stamped overlay of faulty values — the only mutable scratch a
/// single-fault resimulation needs. Each pool worker owns one overlay
/// (allocated once per worker, reused across its chunk of faults), which
/// is what makes the fault loop embarrassingly parallel: everything else
/// in a batch (`Simulator`, good machine, fault list) is shared read-only.
#[derive(Debug)]
struct Overlay<const W: usize> {
    stamp: Vec<u32>,
    faulty: Vec<RailW<W>>,
    epoch: u32,
}

impl<const W: usize> Overlay<W> {
    fn new(len: usize) -> Self {
        Overlay {
            stamp: vec![0; len],
            faulty: vec![(Lanes::ZERO, Lanes::ZERO); len],
            epoch: 0,
        }
    }
}

/// Shared read-only context of one PPSFP batch.
struct BatchCtx<'a, const W: usize> {
    sim: &'a Simulator,
    netlist: &'a Netlist,
    access: &'a TestAccess,
    good: &'a [RailW<W>],
    used: Lanes<W>,
}

/// Below this many faults a batch stays serial: spawning threads costs
/// more than the cone resimulations themselves.
const PAR_FAULT_THRESHOLD: usize = 64;

/// Which patterns a fault's propagation may stop at. Resolved to a
/// concrete need mask once per batch, outside the fault loop (the `used`
/// mask it may expand to is a per-batch constant).
#[derive(Clone, Copy)]
enum NeedSpec<'a> {
    /// Exact masks: never stop early (need = 0 for every fault).
    Exact,
    /// Stop at the first detection per lane (need = the batch's `used`).
    Any,
    /// A per-fault need mask (transition accounting; single-block only).
    PerFault(&'a [u64]),
}

/// Cumulative lane-occupancy accounting behind the `atpg.lane_fill_pct`
/// gauge: pattern slots actually filled vs. slots the chosen lane widths
/// could have carried (wasted tail-lane bits are the difference).
static LANE_SLOTS_USED: AtomicU64 = AtomicU64::new(0);
static LANE_SLOTS_CAPACITY: AtomicU64 = AtomicU64::new(0);

fn record_lane_fill(patterns: usize, width: usize) {
    let used = LANE_SLOTS_USED.fetch_add(patterns as u64, Ordering::Relaxed) + patterns as u64;
    let cap = LANE_SLOTS_CAPACITY.fetch_add(width as u64 * 64, Ordering::Relaxed)
        + width as u64 * 64;
    if cap > 0 {
        prebond3d_obs::gauge("atpg.lane_fill_pct", used * 100 / cap);
    }
}

/// Reusable fault-simulation scratch state for one netlist.
#[derive(Debug)]
pub struct FaultSimulator {
    sim: Simulator,
    /// Overlays reused by the serial (single-thread) path, one per lane
    /// width actually exercised (wide ones allocated on first use).
    overlay1: Overlay<1>,
    overlay4: Option<Overlay<4>>,
    overlay8: Option<Overlay<8>>,
    /// Detection-mask buffer reused across batches **and lane widths**
    /// (flat, fault-major/lane-minor: slot `f * W + l` is fault `f`,
    /// block `l`); batch entry points return a borrowed view of it.
    masks: Vec<u64>,
}

impl FaultSimulator {
    /// Prepare for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        FaultSimulator {
            sim: Simulator::new(netlist),
            overlay1: Overlay::new(netlist.len()),
            overlay4: None,
            overlay8: None,
            masks: Vec::new(),
        }
    }

    /// Access to the inner good-machine simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Simulate `patterns` (≤ 64) against each fault in `faults` where
    /// `alive[i]` is true. Returns one detection bitmask per fault: bit *p*
    /// set ⇔ pattern *p* detects the fault. The slice borrows the
    /// simulator's persistent mask buffer (reused across batches); copy it
    /// out (`.to_vec()`) if it must outlive the next batch.
    pub fn simulate_batch(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> Result<&[u64], SimError> {
        if patterns.len() > 64 {
            return Err(SimError::TooManyPatterns {
                given: patterns.len(),
                capacity: 64,
            });
        }
        let (_, masks) = self.dispatch(netlist, access, patterns, faults, alive, NeedSpec::Exact)?;
        Ok(masks)
    }

    /// [`Self::simulate_batch`] that stops each fault's propagation at the
    /// first detecting observation point. The returned masks are partial
    /// (at least one bit of every detected fault is set) — enough for
    /// fault dropping and pattern crediting, and several times cheaper on
    /// large dies where the full fanout cone is deep. Not suitable for
    /// two-pattern (transition) accounting, which needs exact per-pattern
    /// masks.
    pub fn simulate_batch_any(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> Result<&[u64], SimError> {
        if patterns.len() > 64 {
            return Err(SimError::TooManyPatterns {
                given: patterns.len(),
                capacity: 64,
            });
        }
        let (_, masks) = self.dispatch(netlist, access, patterns, faults, alive, NeedSpec::Any)?;
        Ok(masks)
    }

    /// Wide-lane [`Self::simulate_batch_any`]: up to 512 patterns per
    /// physical batch. Returns `(w, masks)` where `masks[f * w + l]` is
    /// fault `f`'s detection mask for 64-pattern block `l` (pattern
    /// `l * 64 + b` ⇔ bit `b`). The width `w` is chosen from the pattern
    /// count (1, 4, or 8 lanes), so a tail batch never pays for empty
    /// lanes; each block's mask is byte-identical to simulating that block
    /// alone with [`Self::simulate_batch_any`] against the same `alive`
    /// set (see the module docs on per-lane freezing).
    pub fn simulate_batch_any_wide(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> Result<(usize, &[u64]), SimError> {
        self.dispatch(netlist, access, patterns, faults, alive, NeedSpec::Any)
    }

    /// Wide-lane [`Self::simulate_batch`] (exact masks, no early exit):
    /// same `(w, masks)` contract as [`Self::simulate_batch_any_wide`].
    pub fn simulate_batch_wide(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
    ) -> Result<(usize, &[u64]), SimError> {
        self.dispatch(netlist, access, patterns, faults, alive, NeedSpec::Exact)
    }

    /// Per-fault *need-mask* variant: propagation of fault `f` stops as
    /// soon as `detect & need[f] != 0`. The returned mask is partial but
    /// always contains at least one needed bit when any needed pattern
    /// detects — exactly what two-pattern (transition) dropping requires,
    /// where only the bit following an initializing pattern matters.
    /// Single-block (≤ 64 patterns) by construction: the need masks are
    /// one word per fault.
    pub fn simulate_batch_with_need(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
        need: &[u64],
    ) -> Result<&[u64], SimError> {
        assert_eq!(faults.len(), need.len());
        if patterns.len() > 64 {
            return Err(SimError::TooManyPatterns {
                given: patterns.len(),
                capacity: 64,
            });
        }
        let (_, masks) = self.dispatch(
            netlist,
            access,
            patterns,
            faults,
            alive,
            NeedSpec::PerFault(need),
        )?;
        Ok(masks)
    }

    /// Route a batch to the narrowest lane width that holds it. Blocks
    /// beyond width 8 (512 patterns) are a caller error.
    fn dispatch(
        &mut self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
        faults: &[Fault],
        alive: &[bool],
        spec: NeedSpec<'_>,
    ) -> Result<(usize, &[u64]), SimError> {
        let blocks = patterns.len().div_ceil(64);
        let FaultSimulator {
            sim,
            overlay1,
            overlay4,
            overlay8,
            masks,
        } = self;
        match blocks {
            0 | 1 => {
                batch_masks::<1>(sim, overlay1, masks, netlist, access, patterns, faults, alive, spec)?;
                Ok((1, &*masks))
            }
            2..=4 => {
                let overlay = overlay4.get_or_insert_with(|| Overlay::new(netlist.len()));
                batch_masks::<4>(sim, overlay, masks, netlist, access, patterns, faults, alive, spec)?;
                Ok((4, &*masks))
            }
            5..=8 => {
                let overlay = overlay8.get_or_insert_with(|| Overlay::new(netlist.len()));
                batch_masks::<8>(sim, overlay, masks, netlist, access, patterns, faults, alive, spec)?;
                Ok((8, &*masks))
            }
            _ => Err(SimError::TooManyPatterns {
                given: patterns.len(),
                capacity: 512,
            }),
        }
    }
}

/// The shared batch driver: one good-machine simulation, then one
/// cone-restricted resimulation per alive fault, at lane width `W`.
///
/// Per-fault resimulations are independent (shared state is read-only,
/// scratch is per-overlay), so with more than one pool thread the fault
/// list is partitioned into index-contiguous chunks and the masks are
/// merged back in fault order — bit-identical to the serial loop (see
/// `prebond3d-pool`'s determinism contract). `PREBOND3D_THREADS=1`
/// takes the exact pre-existing serial path with the persistent overlay.
#[allow(clippy::too_many_arguments)]
fn batch_masks<const W: usize>(
    sim: &Simulator,
    overlay: &mut Overlay<W>,
    out: &mut Vec<u64>,
    netlist: &Netlist,
    access: &TestAccess,
    patterns: &[Pattern],
    faults: &[Fault],
    alive: &[bool],
    spec: NeedSpec<'_>,
) -> Result<(), SimError> {
    assert_eq!(faults.len(), alive.len());
    prebond3d_obs::count("atpg.faultsim_batches", 1);
    // One physical batch of up to W logical 64-pattern blocks.
    prebond3d_obs::count("atpg.pattern_batches", 1);
    record_lane_fill(patterns.len(), W);
    // One histogram sample per batch call: the sample *count* is the
    // batch count (thread-invariant); only the latency values are
    // wall-clock and get zeroed under PREBOND3D_STABLE_MS.
    let batch_t0 = prebond3d_obs::is_active().then(std::time::Instant::now);
    let good = sim.run_batch_wide::<W>(netlist, access, patterns)?;
    let used = Lanes::<W>::used_mask(patterns.len());
    // Resolve the need mask once, outside the fault loop.
    let need_at = |fi: usize| -> Lanes<W> {
        match spec {
            NeedSpec::Exact => Lanes::ZERO,
            NeedSpec::Any => used,
            NeedSpec::PerFault(need) => {
                // Transition accounting is single-block by construction.
                let mut n = Lanes::ZERO;
                n.0[0] = need[fi];
                n
            }
        }
    };
    let ctx = BatchCtx {
        sim,
        netlist,
        access,
        good: &good,
        used,
    };
    let threads = pool::threads();
    let evals: u64;
    if threads <= 1 || faults.len() < PAR_FAULT_THRESHOLD {
        out.clear();
        out.resize(faults.len() * W, 0);
        let mut tally = 0u64;
        for (fi, fault) in faults.iter().enumerate() {
            if alive[fi] {
                let (mask, e) = simulate_one(&ctx, overlay, *fault, need_at(fi));
                out[fi * W..(fi + 1) * W].copy_from_slice(&mask.0);
                tally += e;
            }
        }
        evals = tally;
    } else {
        prebond3d_obs::count("atpg.faultsim_parallel_batches", 1);
        let ctx = &ctx;
        let need_at = &need_at;
        // ~8 chunks per worker for load balancing; ≥32 faults per chunk
        // so the per-chunk merge stays negligible next to cone
        // resimulation.
        let chunk = faults.len().div_ceil(threads * 8).max(32);
        let chunks = pool::par_chunks(
            faults.len(),
            chunk,
            || Overlay::<W>::new(netlist.len()),
            |overlay, range| {
                let mut tally = 0u64;
                let mut masks = Vec::with_capacity(range.len() * W);
                for fi in range {
                    if alive[fi] {
                        let (mask, e) = simulate_one(ctx, overlay, faults[fi], need_at(fi));
                        tally += e;
                        masks.extend_from_slice(&mask.0);
                    } else {
                        masks.extend_from_slice(&[0u64; W]);
                    }
                }
                (masks, tally)
            },
        );
        // Merge in chunk (= fault) order: masks and the eval tally are
        // both bit-identical to the serial loop.
        out.clear();
        let mut tally = 0u64;
        for (chunk_masks, chunk_evals) in chunks {
            out.extend_from_slice(&chunk_masks);
            tally += chunk_evals;
        }
        evals = tally;
    }
    prebond3d_obs::count("atpg.gate_evals", evals);
    if let Some(t0) = batch_t0 {
        prebond3d_obs::hist("atpg.faultsim_batch_ns", t0.elapsed().as_nanos() as u64);
    }
    Ok(())
}

/// Detection mask of a single fault against an already-simulated good
/// machine, plus the number of rail evaluations performed (the
/// deterministic work unit behind the `atpg.gate_evals` counter). Pure
/// with respect to `ctx` (all reads); only `overlay` is written — which is
/// why one overlay per worker suffices.
///
/// `need` drives the per-lane freeze: a lane stops accumulating detect
/// bits at the first *checkpoint* (root observation, or an observed walk
/// node) where it holds a needed bit, and the walk exits once every lane
/// with need bits is frozen. At `W=1` the checkpoints and the truncated
/// masks coincide exactly with the historical narrow walk's early returns.
fn simulate_one<const W: usize>(
    ctx: &BatchCtx<'_, W>,
    overlay: &mut Overlay<W>,
    fault: Fault,
    need: Lanes<W>,
) -> (Lanes<W>, u64) {
    let BatchCtx {
        sim,
        netlist,
        access,
        good,
        used,
    } = *ctx;
    overlay.epoch = overlay.epoch.wrapping_add(1);
    if overlay.epoch == 0 {
        // wrapped: clear stamps
        overlay.stamp.iter_mut().for_each(|s| *s = 0);
        overlay.epoch = 1;
    }
    let stuck_word = if fault.stuck.value() { used } else { Lanes::ZERO };
    let unk_tail = !used;
    let mut evals = 0u64;

    // Inject at the propagation root.
    let root = fault.site.propagation_root();
    let root_faulty: RailW<W> = match fault.site {
        FaultSite::Output(_) => (stuck_word, unk_tail),
        FaultSite::Input { gate, pin } => {
            let g = netlist.gate(gate);
            if !g.kind.is_combinational() {
                // Branch into a sequential/sink pin: the faulty value is
                // the stuck value as seen by the capture point; the
                // "gate output" for detection purposes is the pin value
                // itself, which only matters if the driver is observed —
                // handled below via driver comparison. Model the FF/sink
                // input as a passthrough.
                (stuck_word, unk_tail)
            } else {
                let mut buf = [(Lanes::<W>::ZERO, Lanes::<W>::ZERO); 3];
                for (k, (slot, &i)) in buf.iter_mut().zip(g.inputs.iter()).enumerate() {
                    *slot = if k == pin as usize {
                        (stuck_word, unk_tail)
                    } else {
                        good[i.index()]
                    };
                }
                evals += 1;
                eval_rail_wide(g.kind, &buf[..g.inputs.len()])
            }
        }
    };

    let gv = |overlay: &Overlay<W>, i: usize| -> RailW<W> {
        if overlay.stamp[i] == overlay.epoch {
            overlay.faulty[i]
        } else {
            good[i]
        }
    };

    // Difference mask at the root: where both values are known and
    // differ, or knownness changed (X→known divergence can become a
    // detection downstream only if it resolves; we track full rail).
    let root_good = good[root.index()];
    if root_faulty == root_good {
        return (Lanes::ZERO, evals);
    }
    overlay.stamp[root.index()] = overlay.epoch;
    overlay.faulty[root.index()] = root_faulty;

    let mut detect = Lanes::<W>::ZERO;
    // Lanes still accumulating detect bits; a lane freezes (drops out)
    // once a checkpoint sees it satisfied, mirroring the narrow walk's
    // early return for that lane's own 64-pattern batch.
    let mut accept = used;
    let check_observed = |detect: &mut Lanes<W>, accept: &Lanes<W>, idx: usize, f: RailW<W>| {
        let g = good[idx];
        let diff = (g.0 ^ f.0) & !(g.1 | f.1) & *accept;
        *detect |= diff;
    };
    let freeze = |detect: &Lanes<W>, accept: &mut Lanes<W>| {
        for l in 0..W {
            if need.0[l] != 0 && detect.0[l] & need.0[l] != 0 {
                accept.0[l] = 0;
            }
        }
    };
    // All lanes that can stop early have stopped? (Exact mode — no need
    // bits anywhere — never exits early, like the narrow walk.)
    let satisfied = |accept: &Lanes<W>| -> bool {
        need.any() && (0..W).all(|l| need.0[l] == 0 || accept.0[l] == 0)
    };

    if access.is_observed(root) {
        check_observed(&mut detect, &accept, root.index(), root_faulty);
    }
    // Checkpoint: the narrow walk returns here when already satisfied.
    freeze(&detect, &mut accept);
    if satisfied(&accept) {
        return (detect, evals);
    }
    // Special case: a branch fault into an observed *capture pin*. The
    // observation list stores drivers; a branch fault on the FF's D pin
    // diverges the captured value even though the driver stem is fine.
    // We conservatively account for it by treating the pin's stuck
    // value as the captured value when the pin's gate is sequential or
    // a sink marker. (Not a checkpoint: the narrow walk performs no
    // early-exit test between this absorb and the first walked node.)
    if let FaultSite::Input { gate, .. } = fault.site {
        let gk = netlist.gate(gate).kind;
        if !gk.is_combinational() && access.is_observed(fault.site.driver(netlist)) {
            // Driver value observed through this very pin: compare the
            // driver's good value with the stuck value.
            let g = good[fault.site.driver(netlist).index()];
            let f: RailW<W> = (stuck_word, unk_tail);
            let diff = (g.0 ^ f.0) & !(g.1 | f.1) & accept;
            detect |= diff;
        }
    }

    // Event-driven propagation in topological-rank order.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    let push_fanouts = |heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
                        id: prebond3d_netlist::GateId| {
        for &fo in netlist.fanout(id) {
            let kind = netlist.gate(fo).kind;
            if kind.is_sequential() || matches!(kind, GateKind::Output | GateKind::TsvOut) {
                continue; // frame boundary; detection uses the driver
            }
            heap.push(Reverse((sim.rank(fo), fo.0)));
        }
    };
    push_fanouts(&mut heap, root);

    let mut last: Option<u32> = None;
    while let Some(Reverse((rank, raw))) = heap.pop() {
        if last == Some(raw) {
            continue; // deduplicate multi-pushes
        }
        last = Some(raw);
        let _ = rank;
        let id = prebond3d_netlist::GateId(raw);
        let gate = netlist.gate(id);
        // Max arity is 3; a stack buffer avoids a heap allocation per
        // evaluated gate, which dominates the first (all-faults-alive)
        // simulation batch on the large b18 dies.
        let mut buf = [(Lanes::<W>::ZERO, Lanes::<W>::ZERO); 3];
        for (slot, &i) in buf.iter_mut().zip(gate.inputs.iter()) {
            *slot = gv(overlay, i.index());
        }
        evals += 1;
        let f = eval_rail_wide(gate.kind, &buf[..gate.inputs.len()]);
        if f == good[id.index()] {
            continue; // reconverged in every lane: no event
        }
        overlay.stamp[id.index()] = overlay.epoch;
        overlay.faulty[id.index()] = f;
        if access.is_observed(id) {
            check_observed(&mut detect, &accept, id.index(), f);
            // Checkpoint: freeze satisfied lanes, exit once all are.
            freeze(&detect, &mut accept);
            if satisfied(&accept) {
                return (detect, evals);
            }
        }
        push_fanouts(&mut heap, id);
    }
    (detect, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultList, StuckAt};
    use prebond3d_netlist::NetlistBuilder;

    /// y = and(a, b), observed at a PO; classic textbook example.
    fn and_rig() -> (Netlist, TestAccess) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        (n, acc)
    }

    #[test]
    fn detects_and_gate_faults() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let mut fs = FaultSimulator::new(&n);
        // Patterns: 00, 01, 10, 11.
        let ps: Vec<Pattern> = [(false, false), (false, true), (true, false), (true, true)]
            .iter()
            .map(|&(x, y)| Pattern { bits: vec![x, y] })
            .collect();
        let faults = vec![
            Fault::output(g, StuckAt::Zero),
            Fault::output(g, StuckAt::One),
        ];
        let masks = fs
            .simulate_batch(&n, &acc, &ps, &faults, &[true, true])
            .unwrap();
        // sa0 detected only by 11 (bit 3); sa1 by 00,01,10 (bits 0..=2).
        assert_eq!(masks[0], 0b1000);
        assert_eq!(masks[1], 0b0111);
    }

    #[test]
    fn skipped_faults_return_zero() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let mut fs = FaultSimulator::new(&n);
        let ps = vec![Pattern {
            bits: vec![true, true],
        }];
        let faults = vec![Fault::output(g, StuckAt::Zero)];
        let masks = fs.simulate_batch(&n, &acc, &ps, &faults, &[false]).unwrap();
        assert_eq!(masks[0], 0);
    }

    #[test]
    fn branch_faults_differ_from_stem() {
        // a fans out to g1 = and(a, b) and g2 = or(a, c).
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let y = b.input("c");
        let g1 = b.gate(GateKind::And, &[a, x], "g1");
        let g2 = b.gate(GateKind::Or, &[a, y], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let mut fs = FaultSimulator::new(&n);
        // Pattern a=1,b=1,c=0: stem a/sa0 flips both g1 (1→0) and g2 (1→0).
        // Branch g1.in0/sa0 flips only g1.
        let p = Pattern {
            bits: vec![true, true, false],
        };
        let faults = vec![
            Fault::output(a, StuckAt::Zero),
            Fault::input(g1, 0, StuckAt::Zero),
            Fault::input(g2, 0, StuckAt::Zero),
        ];
        let masks = fs
            .simulate_batch(&n, &acc, &[p], &faults, &[true; 3])
            .unwrap();
        assert_eq!(masks[0], 1, "stem fault detected");
        assert_eq!(masks[1], 1, "g1 branch detected via o1");
        assert_eq!(masks[2], 1, "g2 branch detected via o2 (1|0→0|0)");
    }

    #[test]
    fn x_from_floating_tsv_blocks_detection() {
        // g = and(ti, a): with ti floating, g/sa0 cannot be excited
        // (good value unknown), so nothing is ever detected.
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let mut fs = FaultSimulator::new(&n);
        let ps = vec![Pattern { bits: vec![false] }, Pattern { bits: vec![true] }];
        let faults = vec![
            Fault::output(g, StuckAt::Zero),
            Fault::output(g, StuckAt::One),
        ];
        let masks = fs
            .simulate_batch(&n, &acc, &ps, &faults, &[true, true])
            .unwrap();
        assert_eq!(masks[0], 0, "sa0 needs good=1, impossible with X input");
        // sa1: good must be 0; with a=0 AND is 0 regardless of X → good
        // known 0, faulty 1 → detected.
        assert_eq!(masks[1], 0b11 & masks[1]);
        assert!(masks[1] & 0b01 != 0, "a=0 pattern detects sa1");
    }

    #[test]
    fn parallel_detection_masks_are_bit_identical_to_serial() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 400, 24, 6, 6, 11);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        assert!(
            list.len() >= PAR_FAULT_THRESHOLD,
            "must take the parallel path"
        );
        let mut state = 0x9E3779B9u64;
        let ps: Vec<Pattern> = (0..64)
            .map(|_| Pattern {
                bits: (0..acc.width())
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 33 & 1 == 1
                    })
                    .collect(),
            })
            .collect();
        let alive = vec![true; list.len()];
        let masks_at = |threads: usize| {
            pool::with_threads(threads, || {
                let mut fs = FaultSimulator::new(&die);
                fs.simulate_batch(&die, &acc, &ps, &list.faults, &alive)
                    .unwrap()
                    .to_vec()
            })
        };
        let serial = masks_at(1);
        assert_eq!(masks_at(2), serial, "2 threads must match serial");
        assert_eq!(masks_at(8), serial, "8 threads must match serial");
    }

    #[test]
    fn wide_exact_masks_match_narrow_blocks() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 300, 20, 6, 6, 7);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        let mut state = 0xABCD_EF01u64;
        let ps: Vec<Pattern> = (0..300)
            .map(|_| Pattern {
                bits: (0..acc.width())
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 33 & 1 == 1
                    })
                    .collect(),
            })
            .collect();
        let alive = vec![true; list.len()];
        let mut fs = FaultSimulator::new(&die);
        let (w, wide) = fs
            .simulate_batch_wide(&die, &acc, &ps, &list.faults, &alive)
            .unwrap();
        assert_eq!(w, 8, "300 patterns need 5 blocks → width 8");
        let wide = wide.to_vec();
        let mut fs2 = FaultSimulator::new(&die);
        for (block, chunk) in ps.chunks(64).enumerate() {
            let narrow = fs2
                .simulate_batch(&die, &acc, chunk, &list.faults, &alive)
                .unwrap();
            for (fi, &m) in narrow.iter().enumerate() {
                assert_eq!(wide[fi * w + block], m, "fault {fi} block {block}");
            }
        }
    }

    #[test]
    fn wide_any_masks_replicate_narrow_early_exits() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 300, 20, 6, 6, 13);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        let mut state = 0x5A5A_0F0Fu64;
        let ps: Vec<Pattern> = (0..256)
            .map(|_| Pattern {
                bits: (0..acc.width())
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 33 & 1 == 1
                    })
                    .collect(),
            })
            .collect();
        let alive = vec![true; list.len()];
        let mut fs = FaultSimulator::new(&die);
        let (w, wide) = fs
            .simulate_batch_any_wide(&die, &acc, &ps, &list.faults, &alive)
            .unwrap();
        assert_eq!(w, 4);
        let wide = wide.to_vec();
        let mut fs2 = FaultSimulator::new(&die);
        for (block, chunk) in ps.chunks(64).enumerate() {
            let narrow = fs2
                .simulate_batch_any(&die, &acc, chunk, &list.faults, &alive)
                .unwrap();
            for (fi, &m) in narrow.iter().enumerate() {
                assert_eq!(
                    wide[fi * w + block],
                    m,
                    "any-mode truncation must match per-block (fault {fi} block {block})"
                );
            }
        }
    }

    #[test]
    fn full_universe_on_generated_die_is_mostly_detectable() {
        use prebond3d_netlist::itc99;
        let die = itc99::generate_flat("d", 120, 10, 5, 5, 9);
        let acc = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        let mut fs = FaultSimulator::new(&die);
        // 256 random-ish patterns via a simple LCG.
        let mut alive = vec![true; list.len()];
        let mut detected = 0usize;
        let mut state = 0x12345678u64;
        for _ in 0..4 {
            let ps: Vec<Pattern> = (0..64)
                .map(|_| Pattern {
                    bits: (0..acc.width())
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33 & 1 == 1
                        })
                        .collect(),
                })
                .collect();
            let masks = fs
                .simulate_batch(&die, &acc, &ps, &list.faults, &alive)
                .unwrap()
                .to_vec();
            for (i, m) in masks.iter().enumerate() {
                if alive[i] && *m != 0 {
                    alive[i] = false;
                    detected += 1;
                }
            }
        }
        let coverage = detected as f64 / list.len() as f64;
        assert!(
            coverage > 0.6,
            "random patterns should detect most faults, got {coverage:.2}"
        );
    }
}

//! Single stuck-at fault model with structural collapsing.
//!
//! Faults live on gate **output stems** and on **fanout branches** (an
//! input pin whose driver has more than one consumer). This is the
//! checkpoint-style fault universe commercial tools collapse to:
//! single-fanout input faults are structurally equivalent to their driver's
//! output fault and are not enumerated.

use prebond3d_netlist::{GateId, GateKind, Netlist};

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StuckAt {
    /// Signal stuck at logic 0.
    Zero,
    /// Signal stuck at logic 1.
    One,
}

impl StuckAt {
    /// The stuck value as a bool.
    pub fn value(self) -> bool {
        self == StuckAt::One
    }

    /// The value required at the fault site to *excite* the fault.
    pub fn excitation(self) -> bool {
        !self.value()
    }
}

impl std::fmt::Display for StuckAt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StuckAt::Zero => write!(f, "sa0"),
            StuckAt::One => write!(f, "sa1"),
        }
    }
}

/// Location of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output stem of a gate.
    Output(GateId),
    /// Input pin `pin` of gate `gate` (a fanout branch).
    Input {
        /// The gate whose pin is faulty.
        gate: GateId,
        /// Pin index into the gate's input list.
        pin: u8,
    },
}

impl FaultSite {
    /// The signal whose *good value* excites the fault: the stem itself,
    /// or the branch's driver.
    pub fn driver(&self, netlist: &Netlist) -> GateId {
        match *self {
            FaultSite::Output(g) => g,
            FaultSite::Input { gate, pin } => netlist.gate(gate).inputs[pin as usize],
        }
    }

    /// The gate at which the fault effect first appears and from which it
    /// propagates.
    pub fn propagation_root(&self) -> GateId {
        match *self {
            FaultSite::Output(g) => g,
            FaultSite::Input { gate, .. } => gate,
        }
    }
}

/// One single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where.
    pub site: FaultSite,
    /// Which polarity.
    pub stuck: StuckAt,
}

impl Fault {
    /// Stem fault constructor.
    pub fn output(gate: GateId, stuck: StuckAt) -> Fault {
        Fault {
            site: FaultSite::Output(gate),
            stuck,
        }
    }

    /// Branch fault constructor.
    pub fn input(gate: GateId, pin: u8, stuck: StuckAt) -> Fault {
        Fault {
            site: FaultSite::Input { gate, pin },
            stuck,
        }
    }

    /// Render like `g17/sa0` or `g17.in1/sa1`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        match self.site {
            FaultSite::Output(g) => format!("{}/{}", netlist.gate(g).name, self.stuck),
            FaultSite::Input { gate, pin } => {
                format!("{}.in{}/{}", netlist.gate(gate).name, pin, self.stuck)
            }
        }
    }
}

/// The collapsed fault universe of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultList {
    /// The faults, in deterministic site order.
    pub faults: Vec<Fault>,
}

impl FaultList {
    /// Enumerate the collapsed stuck-at universe of `netlist`:
    ///
    /// * both polarities on every driving gate's output stem (markers like
    ///   [`GateKind::Output`]/[`GateKind::TsvOut`] drive nothing and carry
    ///   no stem faults — their single input is covered by the driver),
    /// * both polarities on every fanout branch (input pin whose driver has
    ///   ≥ 2 consumers).
    pub fn collapsed(netlist: &Netlist) -> Self {
        let mut faults = Vec::new();
        for (id, gate) in netlist.iter() {
            // Stem faults on anything that actually drives logic.
            let drives = !netlist.fanout(id).is_empty();
            if drives && !matches!(gate.kind, GateKind::Output | GateKind::TsvOut) {
                faults.push(Fault::output(id, StuckAt::Zero));
                faults.push(Fault::output(id, StuckAt::One));
            }
            // Branch faults where the driver fans out.
            for (pin, &input) in gate.inputs.iter().enumerate() {
                if netlist.fanout(input).len() >= 2 {
                    faults.push(Fault::input(id, pin as u8, StuckAt::Zero));
                    faults.push(Fault::input(id, pin as u8, StuckAt::One));
                }
            }
        }
        FaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Approximate heap footprint in bytes (capacity, not length: a list
    /// built by filtering retains its allocation). Used by cache
    /// byte-budget accounting in layers that keep fault universes warm.
    pub fn approx_bytes(&self) -> usize {
        self.faults.capacity() * std::mem::size_of::<Fault>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    #[test]
    fn collapsing_rules() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a"); // fans out to g1,g2 -> stem + 2 branches
        let c = b.input("b"); // single fanout -> stem only
        let g1 = b.gate(GateKind::And, &[a, c], "g1");
        let g2 = b.gate(GateKind::Not, &[a], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let list = FaultList::collapsed(&n);
        // stems: a, b, g1, g2  (o1/o2 markers excluded) = 4 × 2
        // branches: g1.in0 (a), g2.in0 (a) = 2 × 2
        assert_eq!(list.len(), 12);
        let _ = (g1, g2);
    }

    #[test]
    fn fault_accessors() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, &[a], "g1");
        let g2 = b.gate(GateKind::Not, &[a], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let f = Fault::input(g1, 0, StuckAt::One);
        assert_eq!(f.site.driver(&n), a);
        assert_eq!(f.site.propagation_root(), g1);
        assert_eq!(f.describe(&n), "g1.in0/sa1");
        let f2 = Fault::output(g2, StuckAt::Zero);
        assert_eq!(f2.site.driver(&n), g2);
        assert_eq!(f2.describe(&n), "g2/sa0");
        assert!(StuckAt::Zero.excitation());
        assert!(!StuckAt::One.excitation());
    }

    #[test]
    fn dangling_gate_has_no_stem_fault() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "dead");
        b.output(a, "o");
        let _ = g;
        let n = b.finish().unwrap();
        let list = FaultList::collapsed(&n);
        // `dead` drives nothing → no stem faults on it. `a` fans out to 2.
        assert!(list
            .faults
            .iter()
            .all(|f| f.site.propagation_root() != n.find("dead").unwrap()
                || matches!(f.site, FaultSite::Input { .. })));
    }
}

//! Three-valued scalar logic for PODEM and helpers for bit-parallel
//! two-valued logic.

use prebond3d_netlist::GateKind;

/// Three-valued logic: known 0, known 1, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl V3 {
    /// Lift a concrete bool.
    pub fn from_bool(b: bool) -> V3 {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// The concrete value, if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// `true` when not X.
    pub fn is_known(self) -> bool {
        self != V3::X
    }

    /// Three-valued negation. Deliberately named like `ops::Not::not`,
    /// but kept inherent: `V3` is three-valued, so the trait's boolean
    /// contract does not apply.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }

    fn and(self, other: V3) -> V3 {
        match (self, other) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    fn or(self, other: V3) -> V3 {
        match (self, other) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    fn xor(self, other: V3) -> V3 {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => V3::from_bool(a ^ b),
            _ => V3::X,
        }
    }
}

/// Evaluate `kind` over three-valued inputs.
///
/// Sequential/source kinds are not evaluable here; the simulator supplies
/// their values from the pattern (or X for uncontrollable sources).
///
/// # Panics
///
/// Panics (debug) on arity mismatch.
pub fn eval_v3(kind: GateKind, inputs: &[V3]) -> V3 {
    debug_assert_eq!(inputs.len(), kind.arity());
    match kind {
        GateKind::Buf | GateKind::Output | GateKind::TsvOut => inputs[0],
        GateKind::Not => inputs[0].not(),
        GateKind::And => inputs[0].and(inputs[1]),
        GateKind::Or => inputs[0].or(inputs[1]),
        GateKind::Nand => inputs[0].and(inputs[1]).not(),
        GateKind::Nor => inputs[0].or(inputs[1]).not(),
        GateKind::Xor => inputs[0].xor(inputs[1]),
        GateKind::Xnor => inputs[0].xor(inputs[1]).not(),
        GateKind::Mux2 => match inputs[2] {
            V3::Zero => inputs[0],
            V3::One => inputs[1],
            // Unknown select: output known only if both data agree.
            V3::X => {
                if inputs[0] == inputs[1] {
                    inputs[0]
                } else {
                    V3::X
                }
            }
        },
        _ => unreachable!("eval_v3 on non-combinational {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_beat_x() {
        assert_eq!(eval_v3(GateKind::And, &[V3::Zero, V3::X]), V3::Zero);
        assert_eq!(eval_v3(GateKind::Or, &[V3::One, V3::X]), V3::One);
        assert_eq!(eval_v3(GateKind::Nand, &[V3::Zero, V3::X]), V3::One);
        assert_eq!(eval_v3(GateKind::Nor, &[V3::One, V3::X]), V3::Zero);
    }

    #[test]
    fn x_propagates_otherwise() {
        assert_eq!(eval_v3(GateKind::And, &[V3::One, V3::X]), V3::X);
        assert_eq!(eval_v3(GateKind::Xor, &[V3::One, V3::X]), V3::X);
        assert_eq!(eval_v3(GateKind::Not, &[V3::X]), V3::X);
    }

    #[test]
    fn mux_with_unknown_select() {
        assert_eq!(eval_v3(GateKind::Mux2, &[V3::One, V3::One, V3::X]), V3::One);
        assert_eq!(eval_v3(GateKind::Mux2, &[V3::Zero, V3::One, V3::X]), V3::X);
        assert_eq!(
            eval_v3(GateKind::Mux2, &[V3::Zero, V3::One, V3::One]),
            V3::One
        );
        assert_eq!(
            eval_v3(GateKind::Mux2, &[V3::Zero, V3::One, V3::Zero]),
            V3::Zero
        );
    }

    #[test]
    fn known_cases_match_two_valued() {
        use prebond3d_netlist::GateKind::*;
        for kind in [And, Or, Nand, Nor, Xor, Xnor] {
            for a in [false, true] {
                for b in [false, true] {
                    let words = kind
                        .eval_words(&[if a { u64::MAX } else { 0 }, if b { u64::MAX } else { 0 }]);
                    let expect = words & 1 != 0;
                    let got = eval_v3(kind, &[V3::from_bool(a), V3::from_bool(b)]);
                    assert_eq!(got, V3::from_bool(expect), "{kind:?}({a},{b})");
                }
            }
        }
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(V3::from_bool(true).to_bool(), Some(true));
        assert_eq!(V3::from_bool(false).to_bool(), Some(false));
        assert_eq!(V3::X.to_bool(), None);
        assert!(V3::One.is_known());
        assert!(!V3::X.is_known());
    }
}

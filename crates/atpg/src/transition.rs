//! Transition (delay) fault model: slow-to-rise / slow-to-fall.
//!
//! A transition fault at a site needs a **two-pattern test**: the first
//! vector sets the site to the initial value, the second launches the
//! transition and propagates the (late) final value to an observation
//! point. Under the single-transition-fault model, the second vector is
//! exactly a stuck-at test for the initial value's polarity, so both test
//! generation and simulation are built on the stuck-at machinery
//! (enhanced-scan style: both vectors are fully controllable — the paper
//! does not specify its launch mechanism, see DESIGN.md).

use prebond3d_netlist::Netlist;

use crate::access::TestAccess;
use crate::fault::{Fault, FaultList, FaultSite, StuckAt};
use crate::faultsim::FaultSimulator;
use crate::sim::Pattern;

/// Transition polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlowTo {
    /// Rising transition is late (tested like stuck-at-0 after a 0 init).
    Rise,
    /// Falling transition is late (tested like stuck-at-1 after a 1 init).
    Fall,
}

/// One transition fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionFault {
    /// Where.
    pub site: FaultSite,
    /// Which edge is slow.
    pub slow: SlowTo,
}

impl TransitionFault {
    /// The initial value the first vector must establish at the site.
    pub fn initial_value(&self) -> bool {
        match self.slow {
            SlowTo::Rise => false,
            SlowTo::Fall => true,
        }
    }

    /// The equivalent stuck-at fault the second vector must detect: a late
    /// rise looks like stuck-at-0, a late fall like stuck-at-1.
    pub fn launch_fault(&self) -> Fault {
        let stuck = match self.slow {
            SlowTo::Rise => StuckAt::Zero,
            SlowTo::Fall => StuckAt::One,
        };
        Fault {
            site: self.site,
            stuck,
        }
    }
}

/// The collapsed transition-fault universe: both edges at every stuck-at
/// site.
pub fn transition_universe(netlist: &Netlist) -> Vec<TransitionFault> {
    let stuck = FaultList::collapsed(netlist);
    let mut sites: Vec<FaultSite> = stuck.faults.iter().map(|f| f.site).collect();
    sites.dedup();
    sites
        .into_iter()
        .flat_map(|site| {
            [
                TransitionFault {
                    site,
                    slow: SlowTo::Rise,
                },
                TransitionFault {
                    site,
                    slow: SlowTo::Fall,
                },
            ]
        })
        .collect()
}

/// Simulate a pattern *sequence* against transition faults: consecutive
/// pattern pairs `(p[i], p[i+1])` are the two-pattern tests.
///
/// Returns, per fault, `true` if any pair both initializes the site and
/// detects the launch stuck-at fault. Faults with `alive[i] == false` are
/// skipped (already detected).
pub fn simulate_sequence(
    fs: &mut FaultSimulator,
    netlist: &Netlist,
    access: &TestAccess,
    patterns: &[Pattern],
    faults: &[TransitionFault],
    alive: &[bool],
) -> Vec<bool> {
    assert_eq!(faults.len(), alive.len());
    let mut detected = vec![false; faults.len()];
    if patterns.len() < 2 {
        return detected;
    }
    // Overlapping 64-pattern windows with one pattern of overlap so every
    // consecutive pair is covered exactly once.
    let mut start = 0usize;
    while start + 1 < patterns.len() {
        let end = (start + 64).min(patterns.len());
        let window = &patterns[start..end];
        let launch: Vec<Fault> = faults.iter().map(TransitionFault::launch_fault).collect();
        let window_alive: Vec<bool> = alive
            .iter()
            .zip(detected.iter())
            .map(|(&a, &d)| a && !d)
            .collect();
        // Good values first: the initialization mask tells the fault
        // simulator exactly which detection bits matter (the one after an
        // initializing pattern), so its cone walks can stop early.
        let good = fs
            .simulator()
            .run_batch(netlist, access, window)
            .expect("sequence window holds at most 64 patterns");
        let used: u64 = if window.len() == 64 {
            u64::MAX
        } else {
            (1u64 << window.len()) - 1
        };
        let init_masks: Vec<u64> = faults
            .iter()
            .map(|fault| {
                let site_driver = fault.site.driver(netlist);
                let (v, u) = good[site_driver.index()];
                let init_word = if fault.initial_value() { v } else { !v };
                init_word & !u & used
            })
            .collect();
        let need: Vec<u64> = init_masks.iter().map(|m| m << 1).collect();
        let det_masks =
            fs.simulate_batch_with_need(netlist, access, window, &launch, &window_alive, &need)
                .expect("sequence window holds at most 64 patterns");
        for (i, _) in faults.iter().enumerate() {
            if !window_alive[i] {
                continue;
            }
            // Pair (i, i+1): init at bit i, detection at bit i+1.
            if init_masks[i] & (det_masks[i] >> 1) != 0 {
                detected[i] = true;
            }
        }
        if end == patterns.len() {
            break;
        }
        start = end - 1; // overlap one pattern across windows
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{GateKind, NetlistBuilder};

    fn and_rig() -> (Netlist, TestAccess) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        (n, acc)
    }

    #[test]
    fn universe_pairs_every_site() {
        let (n, _) = and_rig();
        let stuck = FaultList::collapsed(&n);
        let trans = transition_universe(&n);
        assert_eq!(trans.len(), stuck.len()); // 2 polarities each, same sites
    }

    #[test]
    fn str_needs_zero_then_one() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let fault = TransitionFault {
            site: FaultSite::Output(g),
            slow: SlowTo::Rise,
        };
        let mut fs = FaultSimulator::new(&n);
        // Sequence 00 → 11: g goes 0 → 1, and 11 detects g/sa0. Detected.
        let seq = vec![
            Pattern {
                bits: vec![false, false],
            },
            Pattern {
                bits: vec![true, true],
            },
        ];
        let det = simulate_sequence(&mut fs, &n, &acc, &seq, &[fault], &[true]);
        assert!(det[0]);
        // Sequence 11 → 11 never launches a rise on g.
        let seq2 = vec![
            Pattern {
                bits: vec![true, true],
            },
            Pattern {
                bits: vec![true, true],
            },
        ];
        let det2 = simulate_sequence(&mut fs, &n, &acc, &seq2, &[fault], &[true]);
        assert!(!det2[0]);
    }

    #[test]
    fn stf_is_the_mirror() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let fault = TransitionFault {
            site: FaultSite::Output(g),
            slow: SlowTo::Fall,
        };
        assert!(fault.initial_value());
        assert_eq!(fault.launch_fault().stuck, StuckAt::One);
        let mut fs = FaultSimulator::new(&n);
        // 11 → 01: g falls 1 → 0 and (a=0,b=1) detects g/sa1.
        let seq = vec![
            Pattern {
                bits: vec![true, true],
            },
            Pattern {
                bits: vec![false, true],
            },
        ];
        let det = simulate_sequence(&mut fs, &n, &acc, &seq, &[fault], &[true]);
        assert!(det[0]);
    }

    #[test]
    fn short_sequences_detect_nothing() {
        let (n, acc) = and_rig();
        let g = n.find("g").unwrap();
        let fault = TransitionFault {
            site: FaultSite::Output(g),
            slow: SlowTo::Rise,
        };
        let mut fs = FaultSimulator::new(&n);
        let det = simulate_sequence(
            &mut fs,
            &n,
            &acc,
            &[Pattern {
                bits: vec![true, true],
            }],
            &[fault],
            &[true],
        );
        assert!(!det[0]);
    }
}

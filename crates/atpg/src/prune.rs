//! Static untestable-fault pruning from the dataflow analyses.
//!
//! Before the engine spends a single simulation event on a fault, two
//! structural certificates from `prebond3d-dataflow` can already retire
//! it (DESIGN.md §14):
//!
//! * **unexcitable** — the value-set fixpoint proves the fault site's good
//!   value never equals the excitation value, so the faulty machine is an
//!   information-order refinement of the good machine everywhere and no
//!   observation point can ever miscompare;
//! * **unobservable** — backward reachability over the fault simulator's
//!   exact propagation rule proves no fault effect at the propagation
//!   root can reach an observation point.
//!
//! Soundness alone is not enough for the engine's byte-identity contract,
//! though: a pruned fault must also be one the *unpruned* run classifies
//! untestable without touching the shared RNG or the pattern stream. The
//! engine's SCOAP pre-screen is exactly that classifier — it retires a
//! fault before PODEM runs and before any don't-care fill is drawn — so
//! [`prune_mask`] only prunes faults that are **both**
//! dataflow-undetectable **and** SCOAP-saturated. The result: the pruned
//! run skips the per-fault cone resimulations (`atpg.gate_evals` drops)
//! while every pattern, coverage number and untestable count stays
//! byte-identical to the `PREBOND3D_NO_CACHE=1` reference.

use prebond3d_dataflow::{reach, Constants, SourceModel, ValueSet};
use prebond3d_netlist::{GateKind, Netlist};

use crate::access::TestAccess;
use crate::engine::scoap_untestable;
use crate::fault::{Fault, FaultSite};
use crate::scoap::Scoap;

/// The access-faithful dataflow facts one stuck-at pruning pass needs.
#[derive(Debug, Clone)]
pub struct PruneAnalysis {
    /// Good-machine value set per net under the exact access model
    /// (controllable sources `{0,1}`, pinned sources their singleton,
    /// everything else `{X}`; constants reassert themselves).
    sets: Vec<ValueSet>,
    /// Can a fault effect at this net's output reach an observation
    /// point? Mirrors the fault simulator's propagation rule exactly.
    observable: Vec<bool>,
}

impl PruneAnalysis {
    /// Solve the two fixpoints for `netlist` under `access`.
    ///
    /// The source model reproduces the simulator's loading semantics:
    /// access-controllable sources can take any bit (`{0,1}`), pinned
    /// nodes are overridden to their frozen constant, and every other
    /// source (floating TSVs, unscanned flip-flops, sources outside the
    /// access model) stays `{X}` — with `Const0`/`Const1` reasserting
    /// themselves inside the transfer function, exactly like the
    /// simulator reasserts them inside its topological sweep.
    pub fn new(netlist: &Netlist, access: &TestAccess) -> PruneAnalysis {
        let mut model = SourceModel::pre_bond(netlist);
        for (id, gate) in netlist.iter() {
            if gate.kind.is_source() && !matches!(gate.kind, GateKind::Const0 | GateKind::Const1) {
                let set = if access.rank_of(id).is_some() {
                    ValueSet::BOOL
                } else {
                    ValueSet::X
                };
                model.set_source(id, set);
            }
        }
        for &(node, value) in access.pinned() {
            model.set_source(node, ValueSet::of(value));
        }
        let constants = Constants::compute(netlist, &model);
        let mut observed = vec![false; netlist.len()];
        for &id in access.observed() {
            observed[id.index()] = true;
        }
        let observable = reach::observable(netlist, &observed);
        PruneAnalysis {
            sets: constants.sets,
            observable,
        }
    }

    /// The fault's good value can never equal its excitation value, so no
    /// pattern produces a known-known miscompare anywhere downstream.
    ///
    /// For branch faults into non-combinational pins the simulator models
    /// the pin as a passthrough of the *root's output*, so both the root
    /// and the driver must be excitation-free there.
    pub fn unexcitable(&self, netlist: &Netlist, fault: Fault) -> bool {
        let excitation = fault.stuck.excitation();
        let driver_clean = !self.sets[fault.site.driver(netlist).index()].contains(excitation);
        match fault.site {
            FaultSite::Output(_) => driver_clean,
            FaultSite::Input { gate, .. } => {
                if netlist.gate(gate).kind.is_combinational() {
                    driver_clean
                } else {
                    driver_clean && !self.sets[gate.index()].contains(excitation)
                }
            }
        }
    }

    /// No fault effect at the propagation root can reach an observation
    /// point — including the simulator's special case where a branch
    /// fault into a non-combinational pin miscompares against its
    /// observed driver.
    pub fn unobservable(&self, netlist: &Netlist, access: &TestAccess, fault: Fault) -> bool {
        let root = fault.site.propagation_root();
        if self.observable[root.index()] {
            return false;
        }
        if let FaultSite::Input { gate, .. } = fault.site {
            if !netlist.gate(gate).kind.is_combinational()
                && access.is_observed(fault.site.driver(netlist))
            {
                return false;
            }
        }
        true
    }

    /// `true` when the dataflow certificates prove `fault` undetectable.
    pub fn undetectable(&self, netlist: &Netlist, access: &TestAccess, fault: Fault) -> bool {
        self.unexcitable(netlist, fault) || self.unobservable(netlist, access, fault)
    }
}

/// Which of `faults` the engine may retire upfront: dataflow-undetectable
/// **and** SCOAP-saturated (the latter guarantees the unpruned reference
/// run classifies the fault untestable via its pre-screen, preserving
/// byte-identity of every downstream artifact).
pub fn prune_mask(
    analysis: &PruneAnalysis,
    scoap: &Scoap,
    netlist: &Netlist,
    access: &TestAccess,
    faults: &[Fault],
) -> Vec<bool> {
    faults
        .iter()
        .map(|&fault| {
            scoap_untestable(scoap, netlist, fault) && analysis.undetectable(netlist, access, fault)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::{itc99, NetlistBuilder};

    use crate::fault::{FaultList, StuckAt};

    #[test]
    fn constant_net_faults_are_unexcitable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c0 = b.gate(GateKind::Const0, &[], "c0");
        let g = b.gate(GateKind::And, &[a, c0], "g"); // a & 0 ≡ 0
        b.output(g, "o");
        let n = b.finish().unwrap();
        let access = TestAccess::full_scan(&n);
        let analysis = PruneAnalysis::new(&n, &access);
        // g is stuck-at-0 by construction: sa0 needs good = 1, impossible.
        assert!(analysis.unexcitable(&n, Fault::output(g, StuckAt::Zero)));
        // sa1 needs good = 0: always excited, never pruned on excitation.
        assert!(!analysis.unexcitable(&n, Fault::output(g, StuckAt::One)));
        // And the SCOAP screen agrees, so sa0 is actually prunable.
        let scoap = Scoap::compute(&n, &access);
        let mask = prune_mask(
            &analysis,
            &scoap,
            &n,
            &access,
            &[Fault::output(g, StuckAt::Zero)],
        );
        assert_eq!(mask, vec![true]);
    }

    #[test]
    fn cone_feeding_floating_tsv_is_unobservable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.tsv_out(g, "to"); // unwrapped: observes nothing
        let h = b.gate(GateKind::Buf, &[a], "h");
        b.output(h, "o");
        let n = b.finish().unwrap();
        let access = TestAccess::full_scan(&n);
        let analysis = PruneAnalysis::new(&n, &access);
        assert!(analysis.unobservable(&n, &access, Fault::output(g, StuckAt::Zero)));
        assert!(!analysis.unobservable(&n, &access, Fault::output(h, StuckAt::Zero)));
    }

    #[test]
    fn branch_fault_into_observed_scan_pin_is_not_unobservable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        // a fans out: one branch into a scan capture pin, one to a dead
        // TSV. The stem stays observable through the capture, and so does
        // the branch fault on the D pin (driver comparison special case).
        let q = b.scan_dff(a, "q");
        let g = b.gate(GateKind::Not, &[q], "g");
        b.tsv_out(g, "to");
        b.tsv_out(a, "to2");
        let n = b.finish().unwrap();
        let access = TestAccess::full_scan(&n);
        let analysis = PruneAnalysis::new(&n, &access);
        let branch = Fault::input(q, 0, StuckAt::One);
        assert!(!analysis.unobservable(&n, &access, branch));
        // g feeds only the unwrapped TSV: provably unobservable.
        assert!(analysis.unobservable(&n, &access, Fault::output(g, StuckAt::One)));
    }

    /// Every pruned fault must be one the fault simulator can never
    /// detect: exhaustive patterns on a small die find zero detections
    /// for pruned faults.
    #[test]
    fn pruned_faults_are_never_detected_exhaustively() {
        let spec = itc99::DieSpec {
            name: "p".into(),
            scan_flip_flops: 6,
            gates: 80,
            inbound_tsvs: 4,
            outbound_tsvs: 4,
            primary_inputs: 4,
            primary_outputs: 4,
            seed: 21,
        };
        let die = itc99::generate_die(&spec);
        let access = TestAccess::full_scan(&die);
        let list = FaultList::collapsed(&die);
        let analysis = PruneAnalysis::new(&die, &access);
        let scoap = Scoap::compute(&die, &access);
        let mask = prune_mask(&analysis, &scoap, &die, &access, &list.faults);
        let pruned: Vec<Fault> = list
            .faults
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(&f, _)| f)
            .collect();
        assert!(
            !pruned.is_empty(),
            "a die with floating TSVs must have prunable faults"
        );
        // 256 deterministic pseudo-random patterns: none may detect.
        let mut rng = prebond3d_rng::StdRng::seed_from_u64(77);
        let mut fs = crate::faultsim::FaultSimulator::new(&die);
        for _ in 0..4 {
            let patterns: Vec<crate::sim::Pattern> = (0..64)
                .map(|_| crate::sim::Pattern {
                    bits: (0..access.width()).map(|_| rng.gen()).collect(),
                })
                .collect();
            let alive = vec![true; pruned.len()];
            let masks = fs
                .simulate_batch(&die, &access, &patterns, &pruned, &alive)
                .unwrap();
            assert!(
                masks.iter().all(|&m| m == 0),
                "a statically-pruned fault was detected by simulation"
            );
        }
    }

    /// The dataflow crate's SCOAP mirror must agree measure-for-measure
    /// with the ATPG engine's own `Scoap` under the same access view
    /// (this is the formula-alignment contract `prebond3d-dataflow`
    /// documents).
    #[test]
    fn dataflow_scores_match_engine_scoap() {
        let die = itc99::generate_flat("s", 250, 12, 5, 5, 13);
        let access = TestAccess::full_scan(&die);
        let scoap = Scoap::compute(&die, &access);
        let view = prebond3d_dataflow::AccessView::pre_bond(&die);
        let scores = prebond3d_dataflow::Scores::compute(&die, &view);
        assert_eq!(scoap.cc0, scores.cc0);
        assert_eq!(scoap.cc1, scores.cc1);
        assert_eq!(scoap.co, scores.co);
    }
}

//! PODEM deterministic test generation (Goel 1981).
//!
//! Two-machine three-valued search: decisions are made only at controllable
//! sources (PODEM's defining trait), candidate objectives come from fault
//! excitation and the D-frontier, backtrace is guided by SCOAP
//! controllability, and an X-path check prunes dead branches. A backtrack
//! limit bounds worst-case effort; aborted faults are reported as such so
//! coverage accounting can distinguish *undetectable* from *unresolved*.

use prebond3d_netlist::{GateId, GateKind, Netlist};
use prebond3d_obs as obs;
use prebond3d_resilience::Deadline;

use crate::access::TestAccess;
use crate::fault::{Fault, FaultSite};
use crate::logic::{eval_v3, V3};
use crate::scoap::{Scoap, INF};

/// PODEM search limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Maximum backtracks before a fault is abandoned.
    pub backtrack_limit: usize,
    /// Cooperative wall-clock deadline: checked once per implication pass,
    /// so an expired budget aborts the fault within one pass of the limit.
    /// [`Deadline::none`] (the default) never reads the clock.
    pub deadline: Deadline,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 400,
            deadline: Deadline::none(),
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube: per-controllable-rank values, X = don't-care.
    Test(Vec<V3>),
    /// Proven untestable under the access model (redundant or blocked by
    /// uncontrollable/unobservable structure).
    Untestable,
    /// Backtrack limit exhausted.
    Aborted,
}

/// A prepared PODEM engine for one (netlist, access) pair.
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    access: &'a TestAccess,
    scoap: &'a Scoap,
    order: Vec<GateId>,
    config: PodemConfig,
    // Scratch, reused across faults:
    good: Vec<V3>,
    faulty: Vec<V3>,
    pi_values: Vec<V3>,
}

impl<'a> Podem<'a> {
    /// Build the engine.
    pub fn new(
        netlist: &'a Netlist,
        access: &'a TestAccess,
        scoap: &'a Scoap,
        config: PodemConfig,
    ) -> Self {
        Podem {
            netlist,
            access,
            scoap,
            order: prebond3d_netlist::traverse::combinational_order(netlist),
            config,
            good: vec![V3::X; netlist.len()],
            faulty: vec![V3::X; netlist.len()],
            pi_values: vec![V3::X; access.width()],
        }
    }

    /// Find a cube that *justifies* `value` on `target`'s output in the
    /// good machine (no fault, no propagation requirement). Used to build
    /// the initialization vector of two-pattern transition tests.
    pub fn justify(&mut self, target: GateId, value: bool) -> PodemOutcome {
        let mut backtracks = 0usize;
        let outcome = self.justify_search(target, value, &mut backtracks);
        obs::count("podem.justify_calls", 1);
        obs::count("podem.backtracks", backtracks as u64);
        outcome
    }

    fn justify_search(
        &mut self,
        target: GateId,
        value: bool,
        backtracks: &mut usize,
    ) -> PodemOutcome {
        self.pi_values.iter_mut().for_each(|v| *v = V3::X);
        for &(node, v) in self.access.pinned() {
            let rank = self.access.rank_of(node).expect("pinned is controllable");
            self.pi_values[rank] = V3::from_bool(v);
        }
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();
        loop {
            if self.config.deadline.expired() {
                return PodemOutcome::Aborted;
            }
            self.imply_good();
            match self.good[target.index()].to_bool() {
                Some(v) if v == value => return PodemOutcome::Test(self.pi_values.clone()),
                Some(_) => {
                    // Wrong value under current decisions: backtrack.
                    if !Self::backtrack(
                        &mut decisions,
                        &mut self.pi_values,
                        backtracks,
                        self.config.backtrack_limit,
                    ) {
                        return if *backtracks > self.config.backtrack_limit {
                            PodemOutcome::Aborted
                        } else {
                            PodemOutcome::Untestable
                        };
                    }
                }
                None => match self.backtrace(target, value) {
                    Some((rank, v)) => {
                        decisions.push((rank, v, false));
                        self.pi_values[rank] = V3::from_bool(v);
                    }
                    None => {
                        if !Self::backtrack(
                            &mut decisions,
                            &mut self.pi_values,
                            backtracks,
                            self.config.backtrack_limit,
                        ) {
                            return if *backtracks > self.config.backtrack_limit {
                                PodemOutcome::Aborted
                            } else {
                                PodemOutcome::Untestable
                            };
                        }
                    }
                },
            }
        }
    }

    /// Pop/flip the decision stack; `false` when the search is exhausted
    /// or the backtrack budget ran out.
    fn backtrack(
        decisions: &mut Vec<(usize, bool, bool)>,
        pi_values: &mut [V3],
        backtracks: &mut usize,
        limit: usize,
    ) -> bool {
        loop {
            match decisions.pop() {
                None => return false,
                Some((rank, v, false)) => {
                    *backtracks += 1;
                    if *backtracks > limit {
                        return false;
                    }
                    decisions.push((rank, !v, true));
                    pi_values[rank] = V3::from_bool(!v);
                    return true;
                }
                Some((rank, _, true)) => {
                    pi_values[rank] = V3::X;
                }
            }
        }
    }

    /// Good-machine-only forward implication.
    fn imply_good(&mut self) {
        let order = std::mem::take(&mut self.order);
        for &id in &order {
            let gate = self.netlist.gate(id);
            self.good[id.index()] = match gate.kind {
                GateKind::Const0 => V3::Zero,
                GateKind::Const1 => V3::One,
                _ if gate.kind.is_source() => match self.access.rank_of(id) {
                    Some(rank) => self.pi_values[rank],
                    None => V3::X,
                },
                _ => {
                    let inputs: Vec<V3> =
                        gate.inputs.iter().map(|&x| self.good[x.index()]).collect();
                    eval_v3(gate.kind, &inputs)
                }
            };
        }
        self.order = order;
    }

    /// Try to generate a test for `fault`.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        let mut backtracks = 0usize;
        let outcome = self.generate_search(fault, &mut backtracks);
        obs::count("podem.generate_calls", 1);
        obs::count("podem.backtracks", backtracks as u64);
        outcome
    }

    fn generate_search(&mut self, fault: Fault, backtracks: &mut usize) -> PodemOutcome {
        self.pi_values.iter_mut().for_each(|v| *v = V3::X);
        for &(node, v) in self.access.pinned() {
            let rank = self.access.rank_of(node).expect("pinned is controllable");
            self.pi_values[rank] = V3::from_bool(v);
        }

        // Decision stack: (rank, value, already-flipped).
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();

        loop {
            if self.config.deadline.expired() {
                return PodemOutcome::Aborted;
            }
            self.imply(fault);
            if self.detected() {
                return PodemOutcome::Test(self.pi_values.clone());
            }

            let step = self
                .objective(fault)
                .and_then(|(target, value)| self.backtrace(target, value));

            match step {
                Some((rank, value)) => {
                    decisions.push((rank, value, false));
                    self.pi_values[rank] = V3::from_bool(value);
                }
                None => {
                    // Dead end: backtrack.
                    loop {
                        match decisions.pop() {
                            None => return PodemOutcome::Untestable,
                            Some((rank, v, false)) => {
                                *backtracks += 1;
                                if *backtracks > self.config.backtrack_limit {
                                    return PodemOutcome::Aborted;
                                }
                                decisions.push((rank, !v, true));
                                self.pi_values[rank] = V3::from_bool(!v);
                                break;
                            }
                            Some((rank, _, true)) => {
                                self.pi_values[rank] = V3::X;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Full forward implication of both machines.
    fn imply(&mut self, fault: Fault) {
        let order = std::mem::take(&mut self.order);
        for &id in &order {
            let gate = self.netlist.gate(id);
            let i = id.index();
            let g = match gate.kind {
                GateKind::Const0 => V3::Zero,
                GateKind::Const1 => V3::One,
                _ if gate.kind.is_source() => match self.access.rank_of(id) {
                    Some(rank) => self.pi_values[rank],
                    None => V3::X,
                },
                _ => {
                    let inputs: Vec<V3> =
                        gate.inputs.iter().map(|&x| self.good[x.index()]).collect();
                    eval_v3(gate.kind, &inputs)
                }
            };
            self.good[i] = g;

            // Faulty machine with injection.
            let f = match fault.site {
                FaultSite::Output(site) if site == id => V3::from_bool(fault.stuck.value()),
                FaultSite::Input { gate: fg, pin } if fg == id && gate.kind.is_combinational() => {
                    let inputs: Vec<V3> = gate
                        .inputs
                        .iter()
                        .enumerate()
                        .map(|(k, &x)| {
                            if k == pin as usize {
                                V3::from_bool(fault.stuck.value())
                            } else {
                                self.faulty[x.index()]
                            }
                        })
                        .collect();
                    eval_v3(gate.kind, &inputs)
                }
                _ => {
                    if gate.kind.is_source() || !gate.kind.is_combinational() {
                        g
                    } else {
                        let inputs: Vec<V3> = gate
                            .inputs
                            .iter()
                            .map(|&x| self.faulty[x.index()])
                            .collect();
                        eval_v3(gate.kind, &inputs)
                    }
                }
            };
            self.faulty[i] = f;
        }
        self.order = order;
    }

    /// `true` when some observed node shows a known miscompare.
    fn detected(&self) -> bool {
        self.access.observed().iter().any(|&id| {
            let (g, f) = (self.good[id.index()], self.faulty[id.index()]);
            g.is_known() && f.is_known() && g != f
        })
    }

    /// Choose the next (signal, value) objective.
    fn objective(&self, fault: Fault) -> Option<(GateId, bool)> {
        let driver = fault.site.driver(self.netlist);
        let need = fault.stuck.excitation();
        match self.good[driver.index()] {
            V3::X => return Some((driver, need)),
            v if v.to_bool() == Some(!need) => return None, // unexcitable here
            _ => {}
        }
        // Excited: drive the D-frontier. Pick the frontier gate with the
        // cheapest observability whose X-path survives; the X-path DFS is
        // run lazily on the sorted candidates since it is the costly part.
        let mut candidates: Vec<(u32, GateId)> = Vec::new();
        for (id, gate) in self.netlist.iter() {
            if !gate.kind.is_combinational() {
                continue;
            }
            let out_g = self.good[id.index()];
            let out_f = self.faulty[id.index()];
            if out_g.is_known() && out_f.is_known() {
                continue; // already propagated or permanently blocked
            }
            if self.input_has_d(id, fault) {
                candidates.push((self.scoap.co[id.index()], id));
            }
        }
        candidates.sort_unstable();
        for (_, frontier) in candidates {
            if !self.x_path_exists(frontier) {
                continue;
            }
            if let Some(obj) = self.frontier_objective(frontier, fault) {
                return Some(obj);
            }
        }
        None
    }

    /// Pick a justifiable (input, value) objective that sensitizes
    /// `frontier`. Returns `None` when the gate cannot propagate under any
    /// completion (statically unjustifiable side input) — the caller then
    /// tries the next frontier gate, keeping dead-end detection sound.
    fn frontier_objective(&self, frontier: GateId, fault: Fault) -> Option<(GateId, bool)> {
        let gate = self.netlist.gate(frontier);
        let is_d_input = |k: usize| -> bool {
            let input = gate.inputs[k];
            let g = self.good[input.index()];
            let f = match fault.site {
                FaultSite::Input { gate: fg, pin } if fg == frontier && pin as usize == k => {
                    V3::from_bool(fault.stuck.value())
                }
                _ => self.faulty[input.index()],
            };
            g.is_known() && f.is_known() && g != f
        };
        match gate.kind {
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let nc = !gate.kind.controlling_value().expect("controlled kind");
                // Every X side input must reach the non-controlling value;
                // any statically-impossible one kills this gate.
                let mut first_x: Option<GateId> = None;
                for (k, &input) in gate.inputs.iter().enumerate() {
                    if is_d_input(k) || self.good[input.index()] != V3::X {
                        continue;
                    }
                    if self.cc_for(input, nc) >= INF {
                        return None;
                    }
                    first_x.get_or_insert(input);
                }
                first_x.map(|i| (i, nc))
            }
            GateKind::Xor | GateKind::Xnor => {
                // Side input just needs a known value; pick the cheaper
                // justifiable polarity.
                for (k, &input) in gate.inputs.iter().enumerate() {
                    if is_d_input(k) || self.good[input.index()] != V3::X {
                        continue;
                    }
                    let (c0, c1) = (self.cc_for(input, false), self.cc_for(input, true));
                    if c0.min(c1) >= INF {
                        return None;
                    }
                    return Some((input, c1 < c0));
                }
                None
            }
            GateKind::Mux2 => {
                // Mux sensitization interacts with multi-pin D arrival
                // (the same D can sit on data *and* select); rather than
                // enumerate cases, assign any justifiable X input with a
                // steering preference and let implication + the decision
                // flip mechanism sort out wrong guesses. `None` is returned
                // only when every X input is statically frozen — then the
                // mux output can never become known and cannot propagate.
                let (a, b, s) = (gate.inputs[0], gate.inputs[1], gate.inputs[2]);
                let mut candidates: Vec<(GateId, bool)> = Vec::new();
                if self.good[s.index()] == V3::X {
                    // Prefer steering the select toward a D-carrying data
                    // pin.
                    let want = if is_d_input(1) {
                        true
                    } else if is_d_input(0) {
                        false
                    } else {
                        self.cc_for(s, true) < self.cc_for(s, false)
                    };
                    candidates.push((s, want));
                    candidates.push((s, !want));
                }
                for (pin, data) in [(0usize, a), (1usize, b)] {
                    if self.good[data.index()] != V3::X || is_d_input(pin) {
                        continue;
                    }
                    let other = self.good[gate.inputs[1 - pin].index()].to_bool();
                    let prefer = match other {
                        Some(v) => !v, // differ from the other data pin
                        None => self.cc_for(data, true) < self.cc_for(data, false),
                    };
                    candidates.push((data, prefer));
                    candidates.push((data, !prefer));
                }
                candidates
                    .into_iter()
                    .find(|&(line, v)| self.cc_for(line, v) < INF)
            }
            // Single-input kinds propagate unconditionally.
            _ => None,
        }
    }

    /// `true` if some input of `id` carries a D (good≠faulty, both known).
    fn input_has_d(&self, id: GateId, fault: Fault) -> bool {
        let gate = self.netlist.gate(id);
        for (k, &input) in gate.inputs.iter().enumerate() {
            let g = self.good[input.index()];
            let f = match fault.site {
                FaultSite::Input { gate: fg, pin } if fg == id && pin as usize == k => {
                    V3::from_bool(fault.stuck.value())
                }
                _ => self.faulty[input.index()],
            };
            if g.is_known() && f.is_known() && g != f {
                return true;
            }
        }
        false
    }

    /// X-path check: a path of X-valued gates from `from` to an observed
    /// node.
    fn x_path_exists(&self, from: GateId) -> bool {
        let mut seen = vec![false; self.netlist.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(id) = stack.pop() {
            if self.access.is_observed(id) {
                return true;
            }
            for &fo in self.netlist.fanout(id) {
                let kind = self.netlist.gate(fo).kind;
                if kind.is_sequential() || matches!(kind, GateKind::Output | GateKind::TsvOut) {
                    continue;
                }
                if seen[fo.index()] {
                    continue;
                }
                // Traversable if the gate's output could still change.
                if self.good[fo.index()].is_known() && self.faulty[fo.index()].is_known() {
                    continue;
                }
                seen[fo.index()] = true;
                stack.push(fo);
            }
        }
        false
    }

    /// Backtrace an objective to an unassigned controllable source.
    ///
    /// Soundness contract: `None` is returned **only** when the objective
    /// `(target, value)` is unachievable under *any* completion of the
    /// current assignment — every descent is guarded by finite-SCOAP
    /// checks, so the caller may treat `None` as a proven dead end.
    fn backtrace(&self, mut target: GateId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            if self.cc_for(target, value) >= INF {
                return None; // statically unjustifiable line/value
            }
            let gate = self.netlist.gate(target);
            if gate.kind.is_source() {
                let rank = self.access.rank_of(target)?;
                if self.pi_values[rank] != V3::X {
                    return None; // already decided: contradiction
                }
                return Some((rank, value));
            }
            match gate.kind {
                GateKind::Buf | GateKind::Output | GateKind::TsvOut => {
                    target = gate.inputs[0];
                }
                GateKind::Not => {
                    target = gate.inputs[0];
                    value = !value;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let inverted = gate.kind.inverts();
                    let needed_pre = if inverted { !value } else { value };
                    let controlling = gate.kind.controlling_value().expect("has ctrl value");
                    let needed_in = if needed_pre == controlling {
                        controlling
                    } else {
                        !controlling
                    };
                    let xs: Vec<GateId> = gate
                        .inputs
                        .iter()
                        .copied()
                        .filter(|&i| self.good[i.index()] == V3::X)
                        .collect();
                    // Setting the controlling value: the cheapest *finitely
                    // justifiable* X input wins. Setting the non-controlling
                    // value: all inputs must be justified eventually; start
                    // with the hardest finite one (classic hardest-first).
                    let finite: Vec<GateId> = xs
                        .iter()
                        .copied()
                        .filter(|&i| self.cc_for(i, needed_in) < INF)
                        .collect();
                    if needed_pre == controlling {
                        let pick = finite
                            .iter()
                            .copied()
                            .min_by_key(|&i| self.cc_for(i, needed_in))?;
                        target = pick;
                    } else {
                        // All X inputs must be justifiable; INF on any means
                        // the output can never be non-controlling… but only
                        // if that input can't be avoided — for AND-family it
                        // can't (every input matters), so this is a proof.
                        if finite.len() != xs.len() || xs.is_empty() {
                            return None;
                        }
                        let pick = finite
                            .iter()
                            .copied()
                            .max_by_key(|&i| self.cc_for(i, needed_in))
                            .expect("nonempty");
                        target = pick;
                    }
                    value = needed_in;
                }
                GateKind::Xor | GateKind::Xnor => {
                    let needed_pre = if gate.kind.inverts() { !value } else { value };
                    let (a, b) = (gate.inputs[0], gate.inputs[1]);
                    let (ga, gb) = (self.good[a.index()], self.good[b.index()]);
                    let (t, v) = match (ga.to_bool(), gb.to_bool()) {
                        (Some(va), None) => (b, needed_pre ^ va),
                        (None, Some(vb)) => (a, needed_pre ^ vb),
                        (None, None) => {
                            // Both free: pick the cheapest finite
                            // (va, vb = needed ^ va) combination.
                            let combos = [(false, needed_pre), (true, !needed_pre)];
                            let best = combos
                                .iter()
                                .filter(|&&(va, vb)| {
                                    self.cc_for(a, va) < INF && self.cc_for(b, vb) < INF
                                })
                                .min_by_key(|&&(va, vb)| {
                                    self.cc_for(a, va).saturating_add(self.cc_for(b, vb))
                                })?;
                            (a, best.0)
                        }
                        (Some(_), Some(_)) => return None,
                    };
                    target = t;
                    value = v;
                }
                GateKind::Mux2 => {
                    let (a, b, s) = (gate.inputs[0], gate.inputs[1], gate.inputs[2]);
                    match self.good[s.index()].to_bool() {
                        Some(false) => target = a,
                        Some(true) => target = b,
                        None => {
                            // Pick the cheapest finite (select, data) path;
                            // also allow the select-free path where both
                            // data inputs carry the value.
                            let via0 = self.cc_for(s, false).saturating_add(self.cc_for(a, value));
                            let via1 = self.cc_for(s, true).saturating_add(self.cc_for(b, value));
                            if via0.min(via1) >= INF {
                                let both =
                                    self.cc_for(a, value).saturating_add(self.cc_for(b, value));
                                if both >= INF {
                                    return None;
                                }
                                // Select is unjustifiable either way: both
                                // data inputs must carry the value. Walk
                                // into whichever is still X (one must be,
                                // or the mux output would be known).
                                target = if self.good[a.index()] == V3::X {
                                    a
                                } else if self.good[b.index()] == V3::X {
                                    b
                                } else {
                                    return None;
                                };
                                continue;
                            }
                            target = s;
                            value = via1 < via0;
                            continue;
                        }
                    }
                }
                _ => return None,
            }
        }
    }

    fn cc_for(&self, id: GateId, value: bool) -> u32 {
        if value {
            self.scoap.cc1[id.index()]
        } else {
            self.scoap.cc0[id.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StuckAt;
    use prebond3d_netlist::NetlistBuilder;

    fn engine_parts(n: &Netlist) -> (TestAccess, Scoap) {
        let acc = TestAccess::full_scan(n);
        let scoap = Scoap::compute(n, &acc);
        (acc, scoap)
    }

    #[test]
    fn finds_test_for_and_output_sa0() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate(GateKind::And, &[a, c], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let (acc, scoap) = engine_parts(&n);
        let mut podem = Podem::new(&n, &acc, &scoap, PodemConfig::default());
        match podem.generate(Fault::output(g, StuckAt::Zero)) {
            PodemOutcome::Test(cube) => {
                // Needs a=1, b=1.
                assert_eq!(cube[0], V3::One);
                assert_eq!(cube[1], V3::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // g = and(a, not(a)) is constant 0 → g/sa0 is untestable.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let na = b.gate(GateKind::Not, &[a], "na");
        let g = b.gate(GateKind::And, &[a, na], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let (acc, scoap) = engine_parts(&n);
        let mut podem = Podem::new(&n, &acc, &scoap, PodemConfig::default());
        assert_eq!(
            podem.generate(Fault::output(g, StuckAt::Zero)),
            PodemOutcome::Untestable
        );
        // …and g/sa1 is testable (any a works: good is always 0).
        assert!(matches!(
            podem.generate(Fault::output(g, StuckAt::One)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn floating_tsv_fault_is_untestable() {
        let mut b = NetlistBuilder::new("t");
        let ti = b.tsv_in("ti");
        let a = b.input("a");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        let (acc, scoap) = engine_parts(&n);
        let mut podem = Podem::new(&n, &acc, &scoap, PodemConfig::default());
        // sa0 needs good(g)=1, which needs ti=1 — uncontrollable.
        assert_eq!(
            podem.generate(Fault::output(g, StuckAt::Zero)),
            PodemOutcome::Untestable
        );
    }

    #[test]
    fn unobservable_cone_fault_is_untestable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.tsv_out(g, "to");
        b.output(a, "keep"); // keep `a` observable so only g's cone is dark
        let n = b.finish().unwrap();
        let (acc, scoap) = engine_parts(&n);
        let mut podem = Podem::new(&n, &acc, &scoap, PodemConfig::default());
        assert_eq!(
            podem.generate(Fault::output(g, StuckAt::Zero)),
            PodemOutcome::Untestable
        );
    }

    #[test]
    fn generated_tests_verified_by_fault_sim() {
        use crate::fault::FaultList;
        use crate::faultsim::FaultSimulator;
        use crate::sim::Pattern;
        use prebond3d_netlist::itc99;

        let die = itc99::generate_flat("d", 150, 12, 6, 6, 21);
        let acc = TestAccess::full_scan(&die);
        let scoap = Scoap::compute(&die, &acc);
        let list = FaultList::collapsed(&die);
        let mut podem = Podem::new(&die, &acc, &scoap, PodemConfig::default());
        let mut fs = FaultSimulator::new(&die);

        let mut tested = 0;
        for fault in list.faults.iter().take(60) {
            if let PodemOutcome::Test(cube) = podem.generate(*fault) {
                let pattern = Pattern::from_v3(&cube, false);
                let masks = fs
                    .simulate_batch(&die, &acc, &[pattern], &[*fault], &[true])
                    .unwrap();
                assert_ne!(
                    masks[0] & 1,
                    0,
                    "PODEM test must detect its own fault {}",
                    fault.describe(&die)
                );
                tested += 1;
            }
        }
        assert!(tested > 30, "most faults should get tests, got {tested}");
    }
}

//! Fault diagnosis: locating a defect from tester fail data.
//!
//! Pre-bond testing does not stop at pass/fail — yield learning needs to
//! know *where* dies fail. This module implements classic cause–effect
//! diagnosis: a fault dictionary maps every modeled fault to its expected
//! failing-pattern signature; observed tester failures are then matched
//! against the dictionary, ranked by signature agreement.

use std::collections::HashMap;

use prebond3d_netlist::Netlist;

use crate::access::TestAccess;
use crate::fault::Fault;
use crate::faultsim::FaultSimulator;
use crate::sim::Pattern;

/// The failing-pattern signature of one fault under a fixed test set:
/// bit `i` of word `i / 64` set ⇔ pattern `i` fails.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Signature {
    words: Vec<u64>,
}

impl Signature {
    /// Empty (all-pass) signature for `patterns` patterns.
    pub fn new(patterns: usize) -> Self {
        Signature {
            words: vec![0; patterns.div_ceil(64)],
        }
    }

    /// Mark pattern `i` as failing.
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// `true` if pattern `i` fails.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Number of failing patterns.
    pub fn fail_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another signature.
    pub fn distance(&self, other: &Signature) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum::<usize>()
            + self
                .words
                .len()
                .abs_diff(other.words.len())
                .saturating_mul(0) // equal test sets in practice
    }
}

/// A fault dictionary: per-fault failing signatures for one test set.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
    signatures: Vec<Signature>,
    patterns: usize,
}

impl FaultDictionary {
    /// Build the dictionary by simulating every fault against `patterns`.
    pub fn build(
        netlist: &Netlist,
        access: &TestAccess,
        faults: &[Fault],
        patterns: &[Pattern],
    ) -> Self {
        let mut fs = FaultSimulator::new(netlist);
        let alive = vec![true; faults.len()];
        let mut signatures = vec![Signature::new(patterns.len()); faults.len()];
        for (chunk_no, window) in patterns.chunks(64).enumerate() {
            let masks = fs
                .simulate_batch(netlist, access, window, faults, &alive)
                .expect("diagnosis window holds at most 64 patterns");
            for (f, &mask) in masks.iter().enumerate() {
                let mut m = mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    signatures[f].set(chunk_no * 64 + bit);
                    m &= m - 1;
                }
            }
        }
        FaultDictionary {
            faults: faults.to_vec(),
            signatures,
            patterns: patterns.len(),
        }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Expected signature of `fault`, if it is in the dictionary.
    pub fn signature_of(&self, fault: Fault) -> Option<&Signature> {
        self.faults
            .iter()
            .position(|&f| f == fault)
            .map(|i| &self.signatures[i])
    }

    /// Fraction of faults whose signatures are unique — the dictionary's
    /// *diagnostic resolution*.
    pub fn resolution(&self) -> f64 {
        if self.faults.is_empty() {
            return 1.0;
        }
        let mut counts: HashMap<&Signature, usize> = HashMap::new();
        for s in &self.signatures {
            *counts.entry(s).or_insert(0) += 1;
        }
        let unique = self
            .signatures
            .iter()
            .filter(|s| counts[*s] == 1 && s.fail_count() > 0)
            .count();
        unique as f64 / self.faults.len() as f64
    }

    /// Diagnose an observed failing signature: candidate faults ranked by
    /// ascending Hamming distance, at most `max_candidates` returned.
    /// Faults with an all-pass signature (undetected by this test set) are
    /// excluded — they cannot explain any failure.
    pub fn diagnose(&self, observed: &Signature, max_candidates: usize) -> Vec<(Fault, usize)> {
        let mut ranked: Vec<(Fault, usize)> = self
            .faults
            .iter()
            .zip(self.signatures.iter())
            .filter(|(_, s)| s.fail_count() > 0)
            .map(|(&f, s)| (f, s.distance(observed)))
            .collect();
        ranked.sort_by_key(|&(f, d)| (d, f));
        ranked.truncate(max_candidates);
        ranked
    }

    /// Test-set size the dictionary was built for.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_stuck_at, AtpgConfig};
    use crate::fault::FaultList;
    use prebond3d_netlist::itc99;

    fn rig() -> (Netlist, TestAccess, Vec<Pattern>, FaultList) {
        let die = itc99::generate_flat("diag", 150, 10, 6, 6, 13);
        let access = TestAccess::full_scan(&die);
        let result = run_stuck_at(&die, &access, &AtpgConfig::fast());
        let list = FaultList::collapsed(&die);
        (die, access, result.patterns, list)
    }

    #[test]
    fn injected_fault_diagnoses_to_itself() {
        let (die, access, patterns, list) = rig();
        let dict = FaultDictionary::build(&die, &access, &list.faults, &patterns);
        // Pick several detected faults and pretend the tester observed
        // exactly their signatures.
        let mut checked = 0;
        for (i, fault) in list.faults.iter().enumerate().step_by(37) {
            let sig = dict.signatures[i].clone();
            if sig.fail_count() == 0 {
                continue;
            }
            let candidates = dict.diagnose(&sig, 5);
            assert!(!candidates.is_empty());
            // A zero-distance candidate must exist, and the true fault's
            // own signature must be among the zero-distance class (exact
            // identity may be shared with structurally equivalent faults).
            assert!(
                candidates
                    .iter()
                    .any(|&(f, d)| d == 0 && dict.signature_of(f) == Some(&sig)),
                "fault {} must be explained",
                fault.describe(&die)
            );
            assert!(candidates.iter().any(|&(_, d)| d == 0));
            checked += 1;
        }
        assert!(checked > 5, "enough faults sampled");
    }

    #[test]
    fn resolution_is_meaningful() {
        let (die, access, patterns, list) = rig();
        let dict = FaultDictionary::build(&die, &access, &list.faults, &patterns);
        let r = dict.resolution();
        // The exact resolution depends on the seeded pattern stream (the
        // fast config compacts aggressively); "meaningful" means well away
        // from the all-faults-in-one-class floor, not a precise value.
        assert!(
            r > 0.15,
            "compacted ATPG sets still separate many faults: {r:.3}"
        );
        assert!(r <= 1.0);
        assert_eq!(dict.pattern_count(), patterns.len());
        assert_eq!(dict.len(), list.len());
    }

    #[test]
    fn noisy_signatures_still_rank_the_culprit_high() {
        let (die, access, patterns, list) = rig();
        let dict = FaultDictionary::build(&die, &access, &list.faults, &patterns);
        // Take a fault with a rich signature, flip one observation.
        let (idx, sig) = dict
            .signatures
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.fail_count())
            .expect("non-empty");
        let mut noisy = sig.clone();
        noisy.set(0); // spurious extra failure (or no-op if already set)
        let candidates = dict.diagnose(&noisy, 10);
        let culprit = list.faults[idx];
        assert!(
            candidates.iter().any(|&(f, _)| f == culprit),
            "culprit must stay in the top candidates"
        );
        let _ = die;
    }

    #[test]
    fn signature_primitives() {
        let mut s = Signature::new(100);
        assert_eq!(s.fail_count(), 0);
        s.set(0);
        s.set(64);
        s.set(99);
        assert!(s.get(64));
        assert!(!s.get(63));
        assert_eq!(s.fail_count(), 3);
        let mut t = Signature::new(100);
        t.set(0);
        assert_eq!(s.distance(&t), 2);
        assert_eq!(s.distance(&s), 0);
    }
}

//! Bit-parallel three-valued good-machine simulation.
//!
//! Values are dual-rail encoded per gate: a `val` word and an `unk` word.
//! Each word is a [`Lanes<W>`] bundle of `W` 64-bit lanes (W ∈ {1, 4, 8}),
//! so one batch carries up to `W * 64` independent patterns; lane `l`
//! holds pattern bits `l*64 ..= l*64+63`. All lane arithmetic is plain
//! bitwise ops over `[u64; W]` — stable Rust the compiler auto-vectorizes,
//! no `unsafe`, no intrinsics. Uncontrollable sources (floating TSVs,
//! non-scan flip-flops) simulate as X, so anything a pre-bond tester could
//! not actually predict is never credited as observed.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

use prebond3d_netlist::{traverse, GateId, GateKind, Netlist};

use crate::access::TestAccess;
use crate::logic::V3;

/// A bundle of `W` pattern lanes: bitwise SIMD words the simulator's
/// dual-rail algebra runs over unchanged at any width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lanes<const W: usize>(pub [u64; W]);

impl<const W: usize> Lanes<W> {
    /// All bits clear.
    pub const ZERO: Self = Lanes([0; W]);
    /// All bits set.
    pub const MAX: Self = Lanes([u64::MAX; W]);

    /// Any bit set in any lane?
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&w| w != 0)
    }

    /// One lane's word.
    #[inline]
    pub fn lane(self, l: usize) -> u64 {
        self.0[l]
    }

    /// The used-bit mask for a batch of `count` patterns (`count <= W*64`):
    /// lane `l` covers patterns `l*64..(l+1)*64`, partial tail lane included.
    #[inline]
    pub fn used_mask(count: usize) -> Self {
        let mut m = [0u64; W];
        for (l, word) in m.iter_mut().enumerate() {
            let filled = count.saturating_sub(l * 64).min(64);
            *word = if filled == 64 {
                u64::MAX
            } else {
                (1u64 << filled) - 1
            };
        }
        Lanes(m)
    }
}

macro_rules! lanes_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> $trait for Lanes<W> {
            type Output = Self;
            #[inline]
            fn $method(self, rhs: Self) -> Self {
                let mut out = [0u64; W];
                for l in 0..W {
                    out[l] = self.0[l] $op rhs.0[l];
                }
                Lanes(out)
            }
        }
    };
}
lanes_binop!(BitAnd, bitand, &);
lanes_binop!(BitOr, bitor, |);
lanes_binop!(BitXor, bitxor, ^);

impl<const W: usize> Not for Lanes<W> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        let mut out = [0u64; W];
        for l in 0..W {
            out[l] = !self.0[l];
        }
        Lanes(out)
    }
}

impl<const W: usize> BitOrAssign for Lanes<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        for l in 0..W {
            self.0[l] |= rhs.0[l];
        }
    }
}

impl<const W: usize> BitAndAssign for Lanes<W> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        for l in 0..W {
            self.0[l] &= rhs.0[l];
        }
    }
}

/// Batch-formation error: the caller handed the simulator a batch it cannot
/// represent. Surfaced as a typed error (mapped to the `FlowError` exit-code
/// contract by the flow layer) instead of a panic, so an oversized batch
/// from a future caller degrades instead of tripping panic isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// More patterns than the batch word can carry.
    TooManyPatterns {
        /// Patterns supplied.
        given: usize,
        /// Patterns the lane bundle can hold.
        capacity: usize,
    },
    /// A pattern's bit vector does not match the access-model width.
    WidthMismatch {
        /// Index of the offending pattern within the batch.
        pattern: usize,
        /// Controllable width the access model expects.
        expected: usize,
        /// Width actually supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyPatterns { given, capacity } => write!(
                f,
                "batch of {given} patterns exceeds the {capacity}-pattern lane capacity"
            ),
            SimError::WidthMismatch {
                pattern,
                expected,
                got,
            } => write!(
                f,
                "pattern {pattern} is {got} bits wide but the access model has {expected} controllable sources"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// One test pattern: a value per controllable source, in
/// [`TestAccess::controllable`] rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Pattern bits, indexed by controllable rank.
    pub bits: Vec<bool>,
}

impl Pattern {
    /// The all-zero pattern of the given width.
    pub fn zeroes(width: usize) -> Pattern {
        Pattern {
            bits: vec![false; width],
        }
    }

    /// Build from a V3 assignment, filling X with `fill`.
    pub fn from_v3(values: &[V3], fill: bool) -> Pattern {
        Pattern {
            bits: values.iter().map(|v| v.to_bool().unwrap_or(fill)).collect(),
        }
    }
}

/// Dual-rail word pair: (`val`, `unk`). Bit known ⇔ `unk` bit clear.
pub type Rail = (u64, u64);

/// Dual-rail lane-bundle pair: the wide analogue of [`Rail`].
pub type RailW<const W: usize> = (Lanes<W>, Lanes<W>);

/// Evaluate `kind` over dual-rail bit-parallel inputs, one 64-bit lane.
pub fn eval_rail(kind: GateKind, inputs: &[Rail]) -> Rail {
    let mut wide = [(Lanes([0u64]), Lanes([0u64])); 3];
    for (w, &(v, u)) in wide.iter_mut().zip(inputs) {
        *w = (Lanes([v]), Lanes([u]));
    }
    let (v, u) = eval_rail_wide::<1>(kind, &wide[..inputs.len()]);
    (v.0[0], u.0[0])
}

/// Evaluate `kind` over dual-rail lane bundles. The single truth-table
/// implementation every width shares: `eval_rail` is the `W=1`
/// monomorphization, so wide and narrow simulation cannot drift apart.
pub fn eval_rail_wide<const W: usize>(kind: GateKind, inputs: &[RailW<W>]) -> RailW<W> {
    #[inline]
    fn ones<const W: usize>(r: RailW<W>) -> Lanes<W> {
        r.0 & !r.1
    }
    #[inline]
    fn zeros<const W: usize>(r: RailW<W>) -> Lanes<W> {
        !r.0 & !r.1
    }
    #[inline]
    fn from01<const W: usize>(one: Lanes<W>, zero: Lanes<W>) -> RailW<W> {
        (one, !(one | zero))
    }
    match kind {
        GateKind::Buf | GateKind::Output | GateKind::TsvOut => inputs[0],
        GateKind::Not => from01(zeros(inputs[0]), ones(inputs[0])),
        GateKind::And => from01(
            ones(inputs[0]) & ones(inputs[1]),
            zeros(inputs[0]) | zeros(inputs[1]),
        ),
        GateKind::Or => from01(
            ones(inputs[0]) | ones(inputs[1]),
            zeros(inputs[0]) & zeros(inputs[1]),
        ),
        GateKind::Nand => from01(
            zeros(inputs[0]) | zeros(inputs[1]),
            ones(inputs[0]) & ones(inputs[1]),
        ),
        GateKind::Nor => from01(
            zeros(inputs[0]) & zeros(inputs[1]),
            ones(inputs[0]) | ones(inputs[1]),
        ),
        GateKind::Xor => {
            let known = !inputs[0].1 & !inputs[1].1;
            ((inputs[0].0 ^ inputs[1].0) & known, !known)
        }
        GateKind::Xnor => {
            let known = !inputs[0].1 & !inputs[1].1;
            (!(inputs[0].0 ^ inputs[1].0) & known, !known)
        }
        GateKind::Mux2 => {
            let (a, b, s) = (inputs[0], inputs[1], inputs[2]);
            let one = (zeros(s) & ones(a)) | (ones(s) & ones(b)) | (ones(a) & ones(b));
            let zero = (zeros(s) & zeros(a)) | (ones(s) & zeros(b)) | (zeros(a) & zeros(b));
            from01(one, zero)
        }
        _ => unreachable!("eval_rail on non-combinational {kind:?}"),
    }
}

/// A prepared simulator: topological order and rank cache for one netlist.
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<GateId>,
    /// Topological rank per gate (for cone-restricted faulty passes).
    rank: Vec<u32>,
}

impl Simulator {
    /// Prepare for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let order = traverse::combinational_order(netlist);
        let mut rank = vec![0u32; netlist.len()];
        for (r, id) in order.iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        Simulator { order, rank }
    }

    /// Topological rank of a gate.
    pub fn rank(&self, id: GateId) -> u32 {
        self.rank[id.index()]
    }

    /// The cached topological order.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Simulate up to 64 patterns at once; returns dual-rail values per
    /// gate. Bits beyond `patterns.len()` are X. The `W=1` view of
    /// [`Simulator::run_batch_wide`].
    pub fn run_batch(
        &self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
    ) -> Result<Vec<Rail>, SimError> {
        let wide = self.run_batch_wide::<1>(netlist, access, patterns)?;
        Ok(wide
            .into_iter()
            .map(|(v, u)| (v.0[0], u.0[0]))
            .collect())
    }

    /// Simulate up to `W * 64` patterns at once; returns dual-rail lane
    /// bundles per gate. Pattern `p` lives in lane `p / 64`, bit `p % 64`;
    /// bits beyond `patterns.len()` are X.
    pub fn run_batch_wide<const W: usize>(
        &self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
    ) -> Result<Vec<RailW<W>>, SimError> {
        if patterns.len() > W * 64 {
            return Err(SimError::TooManyPatterns {
                given: patterns.len(),
                capacity: W * 64,
            });
        }
        for (p, pattern) in patterns.iter().enumerate() {
            if pattern.bits.len() != access.width() {
                return Err(SimError::WidthMismatch {
                    pattern: p,
                    expected: access.width(),
                    got: pattern.bits.len(),
                });
            }
        }
        let used = Lanes::<W>::used_mask(patterns.len());
        let unk_tail = !used;
        let mut values: Vec<RailW<W>> = vec![(Lanes::ZERO, Lanes::MAX); netlist.len()];

        // Load controllable sources from the pattern bits.
        for (rank, &src) in access.controllable().iter().enumerate() {
            let mut word = Lanes::<W>::ZERO;
            for (p, pattern) in patterns.iter().enumerate() {
                if pattern.bits[rank] {
                    word.0[p / 64] |= 1 << (p % 64);
                }
            }
            values[src.index()] = (word, unk_tail);
        }
        // Apply pinned overrides.
        for &(node, v) in access.pinned() {
            values[node.index()] = (if v { used } else { Lanes::ZERO }, unk_tail);
        }

        // Constants and uncontrollable sources.
        for &id in &self.order {
            let gate = netlist.gate(id);
            match gate.kind {
                GateKind::Const0 => values[id.index()] = (Lanes::ZERO, unk_tail),
                GateKind::Const1 => values[id.index()] = (used, unk_tail),
                _ => {
                    if gate.kind.is_combinational() {
                        let inputs: Vec<RailW<W>> =
                            gate.inputs.iter().map(|&i| values[i.index()]).collect();
                        values[id.index()] = eval_rail_wide(gate.kind, &inputs);
                    }
                    // Sources (Input/ScanDff/TsvIn/Wrapper) keep whatever
                    // was loaded — X by default.
                }
            }
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    fn rig() -> (Netlist, TestAccess, Simulator) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let ti = b.tsv_in("ti");
        let x = b.gate(GateKind::Xor, &[a, c], "x");
        let y = b.gate(GateKind::And, &[x, ti], "y");
        let z = b.gate(GateKind::Or, &[x, ti], "z");
        b.output(y, "oy");
        b.output(z, "oz");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let sim = Simulator::new(&n);
        (n, acc, sim)
    }

    fn known(values: &[Rail], id: GateId, bit: usize) -> Option<bool> {
        let (v, u) = values[id.index()];
        if u >> bit & 1 == 1 {
            None
        } else {
            Some(v >> bit & 1 == 1)
        }
    }

    #[test]
    fn computes_logic_and_propagates_x() {
        let (n, acc, sim) = rig();
        // pattern 0: a=1, b=0 → x=1; y = 1&X = X; z = 1|X = 1.
        // pattern 1: a=1, b=1 → x=0; y = 0&X = 0; z = 0|X = X.
        let p0 = Pattern {
            bits: vec![true, false],
        };
        let p1 = Pattern {
            bits: vec![true, true],
        };
        let vals = sim.run_batch(&n, &acc, &[p0, p1]).unwrap();
        let x = n.find("x").unwrap();
        let y = n.find("y").unwrap();
        let z = n.find("z").unwrap();
        assert_eq!(known(&vals, x, 0), Some(true));
        assert_eq!(known(&vals, y, 0), None);
        assert_eq!(known(&vals, z, 0), Some(true));
        assert_eq!(known(&vals, x, 1), Some(false));
        assert_eq!(known(&vals, y, 1), Some(false));
        assert_eq!(known(&vals, z, 1), None);
        // Unused bit positions stay X.
        assert_eq!(known(&vals, x, 5), None);
    }

    #[test]
    fn pinned_values_apply() {
        let (n, mut acc, sim) = rig();
        acc.pin(n.find("a").unwrap(), true);
        let p = Pattern {
            bits: vec![false, false],
        }; // a bit ignored
        let vals = sim.run_batch(&n, &acc, &[p]).unwrap();
        let a = n.find("a").unwrap();
        assert_eq!(known(&vals, a, 0), Some(true));
    }

    #[test]
    fn rail_eval_matches_scalar_v3() {
        use crate::logic::eval_v3;
        let vals = [V3::Zero, V3::One, V3::X];
        let to_rail = |v: V3| -> Rail {
            match v {
                V3::Zero => (0, 0),
                V3::One => (1, 0),
                V3::X => (0, 1),
            }
        };
        let from_rail = |r: Rail| -> V3 {
            if r.1 & 1 == 1 {
                V3::X
            } else if r.0 & 1 == 1 {
                V3::One
            } else {
                V3::Zero
            }
        };
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for &a in &vals {
                for &b in &vals {
                    let want = eval_v3(kind, &[a, b]);
                    let got = from_rail(eval_rail(kind, &[to_rail(a), to_rail(b)]));
                    assert_eq!(got, want, "{kind:?}({a:?},{b:?})");
                }
            }
        }
        for &a in &vals {
            assert_eq!(
                from_rail(eval_rail(GateKind::Not, &[to_rail(a)])),
                eval_v3(GateKind::Not, &[a])
            );
        }
        for &a in &vals {
            for &b in &vals {
                for &s in &vals {
                    let want = eval_v3(GateKind::Mux2, &[a, b, s]);
                    let got = from_rail(eval_rail(
                        GateKind::Mux2,
                        &[to_rail(a), to_rail(b), to_rail(s)],
                    ));
                    assert_eq!(got, want, "mux({a:?},{b:?},{s:?})");
                }
            }
        }
    }

    #[test]
    fn oversized_batch_is_a_typed_error_not_a_panic() {
        let (n, acc, sim) = rig();
        let ps: Vec<Pattern> = (0..65).map(|_| Pattern::zeroes(acc.width())).collect();
        assert_eq!(
            sim.run_batch(&n, &acc, &ps),
            Err(SimError::TooManyPatterns {
                given: 65,
                capacity: 64
            })
        );
        // The wide entry point scales the capacity with the lane count...
        assert!(sim.run_batch_wide::<4>(&n, &acc, &ps).is_ok());
        let ps: Vec<Pattern> = (0..257).map(|_| Pattern::zeroes(acc.width())).collect();
        assert_eq!(
            sim.run_batch_wide::<4>(&n, &acc, &ps),
            Err(SimError::TooManyPatterns {
                given: 257,
                capacity: 256
            })
        );
        // ...and malformed patterns are rejected the same way.
        let bad = [Pattern::zeroes(acc.width() + 1)];
        assert_eq!(
            sim.run_batch(&n, &acc, &bad),
            Err(SimError::WidthMismatch {
                pattern: 0,
                expected: acc.width(),
                got: acc.width() + 1
            })
        );
    }

    #[test]
    fn wide_lanes_match_narrow_blocks_bit_for_bit() {
        use prebond3d_rng::StdRng;
        let (n, acc, sim) = rig();
        let mut rng = StdRng::seed_from_u64(0x1A5E_55ED);
        let patterns: Vec<Pattern> = (0..200)
            .map(|_| Pattern {
                bits: (0..acc.width()).map(|_| rng.gen::<bool>()).collect(),
            })
            .collect();
        let wide = sim.run_batch_wide::<4>(&n, &acc, &patterns).unwrap();
        for (block, chunk) in patterns.chunks(64).enumerate() {
            let narrow = sim.run_batch(&n, &acc, chunk).unwrap();
            for (id, &(v, u)) in narrow.iter().enumerate() {
                assert_eq!(
                    (wide[id].0 .0[block], wide[id].1 .0[block]),
                    (v, u),
                    "gate {id} lane {block}"
                );
            }
        }
    }
}

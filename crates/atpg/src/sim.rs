//! Bit-parallel three-valued good-machine simulation.
//!
//! Values are dual-rail encoded per gate: a `val` word and an `unk` word,
//! each bit position carrying one of up to 64 independent patterns.
//! Uncontrollable sources (floating TSVs, non-scan flip-flops) simulate as
//! X, so anything a pre-bond tester could not actually predict is never
//! credited as observed.

use prebond3d_netlist::{traverse, GateId, GateKind, Netlist};

use crate::access::TestAccess;
use crate::logic::V3;

/// One test pattern: a value per controllable source, in
/// [`TestAccess::controllable`] rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Pattern bits, indexed by controllable rank.
    pub bits: Vec<bool>,
}

impl Pattern {
    /// The all-zero pattern of the given width.
    pub fn zeroes(width: usize) -> Pattern {
        Pattern {
            bits: vec![false; width],
        }
    }

    /// Build from a V3 assignment, filling X with `fill`.
    pub fn from_v3(values: &[V3], fill: bool) -> Pattern {
        Pattern {
            bits: values.iter().map(|v| v.to_bool().unwrap_or(fill)).collect(),
        }
    }
}

/// Dual-rail word pair: (`val`, `unk`). Bit known ⇔ `unk` bit clear.
pub type Rail = (u64, u64);

/// Evaluate `kind` over dual-rail bit-parallel inputs.
pub fn eval_rail(kind: GateKind, inputs: &[Rail]) -> Rail {
    #[inline]
    fn ones(r: Rail) -> u64 {
        r.0 & !r.1
    }
    #[inline]
    fn zeros(r: Rail) -> u64 {
        !r.0 & !r.1
    }
    #[inline]
    fn from01(one: u64, zero: u64) -> Rail {
        (one, !(one | zero))
    }
    match kind {
        GateKind::Buf | GateKind::Output | GateKind::TsvOut => inputs[0],
        GateKind::Not => from01(zeros(inputs[0]), ones(inputs[0])),
        GateKind::And => from01(
            ones(inputs[0]) & ones(inputs[1]),
            zeros(inputs[0]) | zeros(inputs[1]),
        ),
        GateKind::Or => from01(
            ones(inputs[0]) | ones(inputs[1]),
            zeros(inputs[0]) & zeros(inputs[1]),
        ),
        GateKind::Nand => from01(
            zeros(inputs[0]) | zeros(inputs[1]),
            ones(inputs[0]) & ones(inputs[1]),
        ),
        GateKind::Nor => from01(
            zeros(inputs[0]) & zeros(inputs[1]),
            ones(inputs[0]) | ones(inputs[1]),
        ),
        GateKind::Xor => {
            let known = !inputs[0].1 & !inputs[1].1;
            ((inputs[0].0 ^ inputs[1].0) & known, !known)
        }
        GateKind::Xnor => {
            let known = !inputs[0].1 & !inputs[1].1;
            (!(inputs[0].0 ^ inputs[1].0) & known, !known)
        }
        GateKind::Mux2 => {
            let (a, b, s) = (inputs[0], inputs[1], inputs[2]);
            let one = (zeros(s) & ones(a)) | (ones(s) & ones(b)) | (ones(a) & ones(b));
            let zero = (zeros(s) & zeros(a)) | (ones(s) & zeros(b)) | (zeros(a) & zeros(b));
            from01(one, zero)
        }
        _ => unreachable!("eval_rail on non-combinational {kind:?}"),
    }
}

/// A prepared simulator: topological order and rank cache for one netlist.
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<GateId>,
    /// Topological rank per gate (for cone-restricted faulty passes).
    rank: Vec<u32>,
}

impl Simulator {
    /// Prepare for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let order = traverse::combinational_order(netlist);
        let mut rank = vec![0u32; netlist.len()];
        for (r, id) in order.iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        Simulator { order, rank }
    }

    /// Topological rank of a gate.
    pub fn rank(&self, id: GateId) -> u32 {
        self.rank[id.index()]
    }

    /// The cached topological order.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Simulate up to 64 patterns at once; returns dual-rail values per
    /// gate. Bits beyond `patterns.len()` are X.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied or a pattern's width
    /// does not match the access model.
    pub fn run_batch(
        &self,
        netlist: &Netlist,
        access: &TestAccess,
        patterns: &[Pattern],
    ) -> Vec<Rail> {
        assert!(patterns.len() <= 64, "at most 64 patterns per batch");
        let used: u64 = if patterns.len() == 64 {
            u64::MAX
        } else {
            (1u64 << patterns.len()) - 1
        };
        let mut values: Vec<Rail> = vec![(0, u64::MAX); netlist.len()];

        // Load controllable sources from the pattern bits.
        for (rank, &src) in access.controllable().iter().enumerate() {
            let mut word = 0u64;
            for (p, pattern) in patterns.iter().enumerate() {
                assert_eq!(pattern.bits.len(), access.width(), "pattern width mismatch");
                if pattern.bits[rank] {
                    word |= 1 << p;
                }
            }
            values[src.index()] = (word, !used);
        }
        // Apply pinned overrides.
        for &(node, v) in access.pinned() {
            values[node.index()] = (if v { used } else { 0 }, !used);
        }

        // Constants and uncontrollable sources.
        for &id in &self.order {
            let gate = netlist.gate(id);
            match gate.kind {
                GateKind::Const0 => values[id.index()] = (0, !used),
                GateKind::Const1 => values[id.index()] = (used, !used),
                _ => {
                    if gate.kind.is_combinational() {
                        let inputs: Vec<Rail> =
                            gate.inputs.iter().map(|&i| values[i.index()]).collect();
                        values[id.index()] = eval_rail(gate.kind, &inputs);
                    }
                    // Sources (Input/ScanDff/TsvIn/Wrapper) keep whatever
                    // was loaded — X by default.
                }
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    fn rig() -> (Netlist, TestAccess, Simulator) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let ti = b.tsv_in("ti");
        let x = b.gate(GateKind::Xor, &[a, c], "x");
        let y = b.gate(GateKind::And, &[x, ti], "y");
        let z = b.gate(GateKind::Or, &[x, ti], "z");
        b.output(y, "oy");
        b.output(z, "oz");
        let n = b.finish().unwrap();
        let acc = TestAccess::full_scan(&n);
        let sim = Simulator::new(&n);
        (n, acc, sim)
    }

    fn known(values: &[Rail], id: GateId, bit: usize) -> Option<bool> {
        let (v, u) = values[id.index()];
        if u >> bit & 1 == 1 {
            None
        } else {
            Some(v >> bit & 1 == 1)
        }
    }

    #[test]
    fn computes_logic_and_propagates_x() {
        let (n, acc, sim) = rig();
        // pattern 0: a=1, b=0 → x=1; y = 1&X = X; z = 1|X = 1.
        // pattern 1: a=1, b=1 → x=0; y = 0&X = 0; z = 0|X = X.
        let p0 = Pattern {
            bits: vec![true, false],
        };
        let p1 = Pattern {
            bits: vec![true, true],
        };
        let vals = sim.run_batch(&n, &acc, &[p0, p1]);
        let x = n.find("x").unwrap();
        let y = n.find("y").unwrap();
        let z = n.find("z").unwrap();
        assert_eq!(known(&vals, x, 0), Some(true));
        assert_eq!(known(&vals, y, 0), None);
        assert_eq!(known(&vals, z, 0), Some(true));
        assert_eq!(known(&vals, x, 1), Some(false));
        assert_eq!(known(&vals, y, 1), Some(false));
        assert_eq!(known(&vals, z, 1), None);
        // Unused bit positions stay X.
        assert_eq!(known(&vals, x, 5), None);
    }

    #[test]
    fn pinned_values_apply() {
        let (n, mut acc, sim) = rig();
        acc.pin(n.find("a").unwrap(), true);
        let p = Pattern {
            bits: vec![false, false],
        }; // a bit ignored
        let vals = sim.run_batch(&n, &acc, &[p]);
        let a = n.find("a").unwrap();
        assert_eq!(known(&vals, a, 0), Some(true));
    }

    #[test]
    fn rail_eval_matches_scalar_v3() {
        use crate::logic::eval_v3;
        let vals = [V3::Zero, V3::One, V3::X];
        let to_rail = |v: V3| -> Rail {
            match v {
                V3::Zero => (0, 0),
                V3::One => (1, 0),
                V3::X => (0, 1),
            }
        };
        let from_rail = |r: Rail| -> V3 {
            if r.1 & 1 == 1 {
                V3::X
            } else if r.0 & 1 == 1 {
                V3::One
            } else {
                V3::Zero
            }
        };
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for &a in &vals {
                for &b in &vals {
                    let want = eval_v3(kind, &[a, b]);
                    let got = from_rail(eval_rail(kind, &[to_rail(a), to_rail(b)]));
                    assert_eq!(got, want, "{kind:?}({a:?},{b:?})");
                }
            }
        }
        for &a in &vals {
            assert_eq!(
                from_rail(eval_rail(GateKind::Not, &[to_rail(a)])),
                eval_v3(GateKind::Not, &[a])
            );
        }
        for &a in &vals {
            for &b in &vals {
                for &s in &vals {
                    let want = eval_v3(GateKind::Mux2, &[a, b, s]);
                    let got = from_rail(eval_rail(
                        GateKind::Mux2,
                        &[to_rail(a), to_rail(b), to_rail(s)],
                    ));
                    assert_eq!(got, want, "mux({a:?},{b:?},{s:?})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_patterns_panics() {
        let (n, acc, sim) = rig();
        let ps: Vec<Pattern> = (0..65).map(|_| Pattern::zeroes(acc.width())).collect();
        sim.run_batch(&n, &acc, &ps);
    }
}

//! Static test-cube compaction.
//!
//! PODEM emits *cubes* — partially specified patterns with don't-cares.
//! Two cubes with no conflicting specified bit can be merged into one
//! pattern, shrinking the deterministic test set before random fill. This
//! is the classic static-compaction pass commercial ATPG runs alongside
//! the reverse-order (dynamic) compaction the engine always applies.

use crate::logic::V3;

/// `true` if two cubes agree on every mutually specified bit.
pub fn compatible(a: &[V3], b: &[V3]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(&x, &y)| x == V3::X || y == V3::X || x == y)
}

/// Merge `b` into `a` (both must be compatible).
pub fn merge_into(a: &mut [V3], b: &[V3]) {
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        if *x == V3::X {
            *x = y;
        }
    }
}

/// Greedy static compaction: each cube is merged into the first compatible
/// accumulated cube, else starts a new one. Order-sensitive (like the
/// classical algorithm); callers typically pass cubes in generation order.
pub fn compact(cubes: Vec<Vec<V3>>) -> Vec<Vec<V3>> {
    let mut merged: Vec<Vec<V3>> = Vec::new();
    for cube in cubes {
        match merged.iter_mut().find(|m| compatible(m, &cube)) {
            Some(m) => merge_into(m, &cube),
            None => merged.push(cube),
        }
    }
    merged
}

/// Specified-bit count of a cube (its "care density").
pub fn care_bits(cube: &[V3]) -> usize {
    cube.iter().filter(|&&v| v != V3::X).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use V3::{One, Zero, X};

    #[test]
    fn compatibility_rules() {
        assert!(compatible(&[One, X, Zero], &[One, Zero, X]));
        assert!(compatible(&[X, X], &[One, Zero]));
        assert!(!compatible(&[One, X], &[Zero, X]));
        assert!(compatible(&[], &[]));
    }

    #[test]
    fn merging_fills_dont_cares() {
        let mut a = vec![One, X, X];
        merge_into(&mut a, &[X, Zero, X]);
        assert_eq!(a, vec![One, Zero, X]);
    }

    #[test]
    fn compaction_shrinks_compatible_sets() {
        let cubes = vec![
            vec![One, X, X, X],
            vec![X, Zero, X, X],
            vec![Zero, X, X, X], // conflicts with cube 0 after merge
            vec![X, X, One, X],
        ];
        let out = compact(cubes);
        // Cubes 0,1,3 merge; cube 2 stands alone.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![One, Zero, One, X]);
        assert_eq!(out[1], vec![Zero, X, X, X]);
    }

    #[test]
    fn compaction_preserves_every_care_bit() {
        let cubes = vec![
            vec![One, X, X],
            vec![X, One, X],
            vec![X, X, Zero],
            vec![Zero, X, X],
            vec![X, Zero, X],
        ];
        let total_before: usize = cubes.iter().map(|c| care_bits(c)).sum();
        let out = compact(cubes);
        let total_after: usize = out.iter().map(|c| care_bits(c)).sum();
        assert_eq!(total_before, total_after, "merging never drops care bits");
        assert!(out.len() < 5);
    }

    /// End to end: compaction reduces the deterministic test set while the
    /// compacted cubes still detect their target faults.
    #[test]
    fn compacted_cubes_still_detect() {
        use crate::fault::FaultList;
        use crate::faultsim::FaultSimulator;
        use crate::podem::{Podem, PodemConfig, PodemOutcome};
        use crate::scoap::Scoap;
        use crate::sim::Pattern;
        use crate::TestAccess;
        use prebond3d_netlist::itc99;

        let die = itc99::generate_flat("compact", 150, 12, 6, 6, 21);
        let access = TestAccess::full_scan(&die);
        let scoap = Scoap::compute(&die, &access);
        let mut podem = Podem::new(&die, &access, &scoap, PodemConfig::default());
        let list = FaultList::collapsed(&die);

        let mut cubes = Vec::new();
        let mut targets = Vec::new();
        for fault in list.faults.iter().take(120) {
            if let PodemOutcome::Test(cube) = podem.generate(*fault) {
                cubes.push(cube);
                targets.push(*fault);
            }
        }
        let before = cubes.len();
        let compacted = compact(cubes);
        assert!(
            compacted.len() < before,
            "some of {before} cubes should merge"
        );

        // Every target fault is detected by the compacted set (zero-fill).
        let patterns: Vec<Pattern> = compacted
            .iter()
            .map(|c| Pattern::from_v3(c, false))
            .collect();
        let mut fs = FaultSimulator::new(&die);
        let mut alive = vec![true; targets.len()];
        for window in patterns.chunks(64) {
            let masks = fs
                .simulate_batch(&die, &access, window, &targets, &alive)
                .unwrap();
            for (f, &m) in masks.iter().enumerate() {
                if m != 0 {
                    alive[f] = false;
                }
            }
        }
        let missed = alive.iter().filter(|&&a| a).count();
        assert_eq!(missed, 0, "compaction must not lose detections");
    }
}

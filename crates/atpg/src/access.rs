//! The test access model: what a tester can control and observe.
//!
//! Pre-bond, a die is tested through its pads and scan chain only. The
//! access model classifies every netlist node:
//!
//! * **controllable sources** — primary inputs, scan flip-flops and wrapper
//!   cells: the tester sets their value each test cycle;
//! * **uncontrollable sources** — unwrapped inbound TSVs (floating before
//!   bonding) and plain flip-flops: permanent X;
//! * **observation points** — primary outputs, scan flip-flop / wrapper
//!   cell D-inputs; unwrapped outbound TSVs observe nothing;
//! * **pinned nodes** — test-mode configuration inputs (e.g. a `test_en`
//!   signal) frozen to a constant in every pattern.

use prebond3d_netlist::{BitSet, GateId, GateKind, Netlist};

/// Test access description for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct TestAccess {
    /// Controllable source nodes, in pattern-bit order.
    controllable: Vec<GateId>,
    /// Membership/rank lookup for `controllable`.
    control_rank: Vec<Option<u32>>,
    /// Observation points: nodes whose *output value* the tester compares.
    /// For sequential observers this is the value captured at the D pin,
    /// i.e. the FF's driver; the conversion happens at construction.
    observed: Vec<GateId>,
    observed_set: BitSet,
    /// Nodes frozen to constants in every pattern.
    pinned: Vec<(GateId, bool)>,
}

impl TestAccess {
    /// Standard pre-bond full-scan access:
    ///
    /// * controllable: [`GateKind::Input`], [`GateKind::ScanDff`],
    ///   [`GateKind::Wrapper`];
    /// * observed: drivers of [`GateKind::Output`], and of scan/wrapper
    ///   D-pins;
    /// * unwrapped [`GateKind::TsvIn`]/[`GateKind::TsvOut`] endpoints are
    ///   neither.
    pub fn full_scan(netlist: &Netlist) -> Self {
        let mut controllable = Vec::new();
        let mut observed = Vec::new();
        for (id, gate) in netlist.iter() {
            match gate.kind {
                GateKind::Input | GateKind::ScanDff | GateKind::Wrapper => {
                    controllable.push(id);
                }
                _ => {}
            }
            match gate.kind {
                GateKind::Output | GateKind::ScanDff | GateKind::Wrapper => {
                    observed.push(gate.inputs[0]);
                }
                _ => {}
            }
        }
        observed.sort_unstable();
        observed.dedup();
        Self::new(netlist, controllable, observed, Vec::new())
    }

    /// Build a custom access model.
    ///
    /// `observed` entries are node ids whose output value is compared
    /// directly (callers converting a sink pin should pass the pin's
    /// driver).
    ///
    /// # Panics
    ///
    /// Panics if a controllable node is not a source kind.
    pub fn new(
        netlist: &Netlist,
        controllable: Vec<GateId>,
        observed: Vec<GateId>,
        pinned: Vec<(GateId, bool)>,
    ) -> Self {
        let mut control_rank = vec![None; netlist.len()];
        for (rank, &id) in controllable.iter().enumerate() {
            assert!(
                netlist.gate(id).kind.is_source(),
                "controllable node {} must be a source",
                netlist.gate(id).name
            );
            control_rank[id.index()] = Some(rank as u32);
        }
        let mut observed_set = BitSet::new(netlist.len());
        for &id in &observed {
            observed_set.insert(id.index());
        }
        TestAccess {
            controllable,
            control_rank,
            observed,
            observed_set,
            pinned,
        }
    }

    /// Pin `node` to `value` in every generated pattern (e.g. `test_en`).
    ///
    /// The node must already be controllable.
    pub fn pin(&mut self, node: GateId, value: bool) {
        assert!(
            self.control_rank[node.index()].is_some(),
            "pinned node must be controllable"
        );
        self.pinned.push((node, value));
    }

    /// Controllable sources in pattern-bit order.
    pub fn controllable(&self) -> &[GateId] {
        &self.controllable
    }

    /// Pattern-bit rank of `node`, if controllable.
    pub fn rank_of(&self, node: GateId) -> Option<usize> {
        self.control_rank[node.index()].map(|r| r as usize)
    }

    /// Observation points (values compared by the tester).
    pub fn observed(&self) -> &[GateId] {
        &self.observed
    }

    /// `true` when `node`'s output value is directly observed.
    pub fn is_observed(&self, node: GateId) -> bool {
        self.observed_set.contains(node.index())
    }

    /// Frozen test-mode assignments.
    pub fn pinned(&self) -> &[(GateId, bool)] {
        &self.pinned
    }

    /// Number of pattern bits.
    pub fn width(&self) -> usize {
        self.controllable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        let g2 = b.gate(GateKind::Or, &[q, a], "g2");
        b.tsv_out(g2, "to");
        b.output(g2, "o");
        b.finish().unwrap()
    }

    #[test]
    fn full_scan_classification() {
        let n = die();
        let acc = TestAccess::full_scan(&n);
        let a = n.find("a").unwrap();
        let ti = n.find("ti").unwrap();
        let q = n.find("q").unwrap();
        let g = n.find("g").unwrap();
        let g2 = n.find("g2").unwrap();
        // a and q controllable; ti not.
        assert!(acc.rank_of(a).is_some());
        assert!(acc.rank_of(q).is_some());
        assert!(acc.rank_of(ti).is_none());
        assert_eq!(acc.width(), 2);
        // g observed (q's D); g2 observed (o's driver); TsvOut side not
        // separately observed.
        assert!(acc.is_observed(g));
        assert!(acc.is_observed(g2));
        assert!(!acc.is_observed(ti));
        assert_eq!(acc.observed().len(), 2);
    }

    #[test]
    fn pinning_requires_controllability() {
        let n = die();
        let mut acc = TestAccess::full_scan(&n);
        let a = n.find("a").unwrap();
        acc.pin(a, true);
        assert_eq!(acc.pinned(), &[(a, true)]);
    }

    #[test]
    #[should_panic(expected = "must be controllable")]
    fn pinning_uncontrollable_panics() {
        let n = die();
        let mut acc = TestAccess::full_scan(&n);
        acc.pin(n.find("ti").unwrap(), true);
    }

    #[test]
    #[should_panic(expected = "must be a source")]
    fn controllable_must_be_source() {
        let n = die();
        let g = n.find("g").unwrap();
        TestAccess::new(&n, vec![g], vec![], vec![]);
    }
}

//! Behavioral tests for the observability runtime: span nesting and
//! ordering determinism, counter/gauge aggregation, and JSON-lines sink
//! round-trips. The registry and sink are process-global, so every test
//! serializes on one lock and leaves the state reset.

use std::sync::Mutex;

use prebond3d_obs as obs;
use prebond3d_obs::json;

static LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with recording on and a clean registry, returning the snapshot.
fn recorded(f: impl FnOnce()) -> obs::Snapshot {
    let _rec = obs::record();
    obs::reset();
    f();
    let snap = obs::snapshot();
    obs::reset();
    snap
}

fn nested_workload() {
    let _flow = obs::span("flow");
    {
        let _plan = obs::span("plan");
        {
            let _g = obs::span("graph_build");
            obs::count("graph.edges", 7);
        }
        let _c = obs::span("clique_partition");
        obs::count("clique.merges", 3);
    }
    obs::gauge("flow.cells", 11);
}

#[test]
fn nested_spans_aggregate_hierarchical_paths() {
    let _l = LOCK.lock().unwrap();
    let snap = recorded(nested_workload);

    let g = snap.span("flow/plan/graph_build").expect("graph span");
    assert_eq!(g.name, "graph_build");
    assert_eq!(g.depth, 2);
    assert_eq!(g.count, 1);

    let c = snap
        .span("flow/plan/clique_partition")
        .expect("clique span");
    assert_eq!(c.depth, 2);

    let f = snap.span("flow").expect("root span");
    assert_eq!(f.depth, 0);
    // The parent span covers at least the sum of its observed children.
    assert!(f.total_ns >= g.total_ns + c.total_ns);
}

#[test]
fn span_order_and_shape_are_deterministic_across_runs() {
    let _l = LOCK.lock().unwrap();
    let shape = |s: &obs::Snapshot| {
        s.spans
            .iter()
            .map(|sp| (sp.path.clone(), sp.depth, sp.count))
            .collect::<Vec<_>>()
    };
    let a = recorded(nested_workload);
    let b = recorded(nested_workload);
    assert_eq!(shape(&a), shape(&b));
    // First-completion order: innermost leaves close before their parents.
    let order: Vec<&str> = a.spans.iter().map(|s| s.path.as_str()).collect();
    assert_eq!(
        order,
        [
            "flow/plan/graph_build",
            "flow/plan/clique_partition",
            "flow/plan",
            "flow"
        ]
    );
}

#[test]
fn repeated_spans_accumulate_counts_and_time() {
    let _l = LOCK.lock().unwrap();
    let snap = recorded(|| {
        for _ in 0..5 {
            let _s = obs::span("batch");
        }
    });
    let s = snap.span("batch").expect("batch span");
    assert_eq!(s.count, 5);
    assert_eq!(snap.spans.len(), 1, "same path aggregates into one stat");
}

#[test]
fn counters_sum_and_gauges_keep_the_last_value() {
    let _l = LOCK.lock().unwrap();
    let snap = recorded(|| {
        obs::count("atpg.backtracks", 2);
        obs::count("atpg.backtracks", 3);
        obs::count("atpg.backtracks", 0); // zero deltas are dropped
        obs::gauge("flow.cells", 4);
        obs::gauge("flow.cells", 9);
    });
    assert_eq!(snap.counter("atpg.backtracks"), 5);
    assert_eq!(snap.counter("never.touched"), 0);
    assert_eq!(snap.gauge("flow.cells"), Some(9));
    assert_eq!(snap.gauge("never.touched"), None);
}

#[test]
fn inactive_probes_record_nothing() {
    let _l = LOCK.lock().unwrap();
    obs::configure(obs::SinkConfig::Off);
    obs::reset();
    assert!(!obs::is_active());
    {
        let _s = obs::span("ignored");
        obs::count("ignored.counter", 99);
        obs::gauge("ignored.gauge", 1);
    }
    assert!(obs::snapshot().is_empty());
}

#[test]
fn json_sink_round_trips_through_the_parser() {
    let _l = LOCK.lock().unwrap();
    let path = std::env::temp_dir().join(format!(
        "prebond3d_obs_roundtrip_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path); // the sink appends
    obs::reset();
    obs::configure(obs::SinkConfig::JsonFile(path.clone()));
    {
        let _outer = obs::span("outer");
        let _inner = obs::span("inner");
        obs::count("events.seen", 12);
    }
    obs::flush();
    obs::configure(obs::SinkConfig::Off);
    obs::reset();

    let text = std::fs::read_to_string(&path).expect("sink file exists");
    let events: Vec<json::Value> = text
        .lines()
        .map(|l| json::parse(l).expect("every line is valid JSON"))
        .collect();
    let _ = std::fs::remove_file(&path);

    let field = |v: &json::Value, k: &str| match v {
        json::Value::Obj(m) => m.get(k).cloned().expect("field present"),
        _ => panic!("event is not an object"),
    };
    let spans: Vec<&json::Value> = events
        .iter()
        .filter(|e| field(e, "ev") == json::Value::Str("span".into()))
        .collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(
        field(spans[0], "path"),
        json::Value::Str("outer/inner".into())
    );
    assert_eq!(field(spans[0], "depth"), json::Value::Num(1.0));
    assert_eq!(field(spans[1], "path"), json::Value::Str("outer".into()));

    let counter = events
        .iter()
        .find(|e| field(e, "ev") == json::Value::Str("counter".into()))
        .expect("flush appends the counter record");
    assert_eq!(
        field(counter, "name"),
        json::Value::Str("events.seen".into())
    );
    assert_eq!(field(counter, "value"), json::Value::Num(12.0));
}

#[test]
fn capture_isolates_probes_from_the_global_registry() {
    let _l = LOCK.lock().unwrap();
    let _rec = obs::record();
    obs::reset();
    obs::count("outside.before", 1);
    let ((), local) = obs::capture(|| {
        nested_workload();
        obs::count("inside.only", 5);
    });
    obs::count("outside.after", 2);
    let global = obs::snapshot();
    obs::reset();

    // Everything the closure emitted landed in the captured snapshot…
    assert_eq!(local.counter("inside.only"), 5);
    assert_eq!(local.counter("graph.edges"), 7);
    assert!(local.span("flow/plan/graph_build").is_some());
    // …and nothing leaked into (or out of) the global registry.
    assert_eq!(global.counter("inside.only"), 0);
    assert!(global.span("flow").is_none());
    assert_eq!(global.counter("outside.before"), 1);
    assert_eq!(global.counter("outside.after"), 2);
}

#[test]
fn capture_nests_and_restores_on_unwind() {
    let _l = LOCK.lock().unwrap();
    let _rec = obs::record();
    obs::reset();
    let ((), outer) = obs::capture(|| {
        obs::count("outer.events", 1);
        let ((), inner) = obs::capture(|| obs::count("inner.events", 3));
        assert_eq!(inner.counter("inner.events"), 3);
        // The outer registry is back in place after the inner capture.
        obs::count("outer.events", 1);
        // A panicking capture must restore the outer registry too.
        let _ = std::panic::catch_unwind(|| obs::capture(|| -> () { panic!("worker died") }));
        obs::count("outer.events", 1);
    });
    let global = obs::snapshot();
    obs::reset();
    assert_eq!(outer.counter("outer.events"), 3);
    assert_eq!(outer.counter("inner.events"), 0);
    assert_eq!(global.counter("outer.events"), 0);
}

#[test]
fn captured_counter_sums_match_the_uncaptured_run() {
    let _l = LOCK.lock().unwrap();
    // Counters commute: splitting a workload across capture scopes and
    // summing gives exactly the counters of one uncaptured run.
    let serial = recorded(|| {
        for _ in 0..4 {
            nested_workload();
        }
    });
    let _rec = obs::record();
    obs::reset();
    let parts: Vec<obs::Snapshot> = (0..4).map(|_| obs::capture(nested_workload).1).collect();
    obs::reset();
    let summed: u64 = parts.iter().map(|s| s.counter("graph.edges")).sum();
    assert_eq!(summed, serial.counter("graph.edges"));
    let span_total: u64 = parts
        .iter()
        .map(|s| s.span("flow").map_or(0, |sp| sp.count))
        .sum();
    assert_eq!(span_total, serial.span("flow").unwrap().count);
}

#[test]
fn snapshot_to_json_carries_spans_counters_and_gauges() {
    let _l = LOCK.lock().unwrap();
    let snap = recorded(nested_workload);
    let doc = snap.to_json().to_string();
    let parsed = json::parse(&doc).expect("snapshot JSON parses");
    let json::Value::Obj(m) = parsed else {
        panic!("snapshot is an object")
    };
    let json::Value::Arr(spans) = &m["spans"] else {
        panic!("spans is an array")
    };
    assert_eq!(spans.len(), 4);
    let json::Value::Obj(counters) = &m["counters"] else {
        panic!("counters object")
    };
    assert_eq!(counters["graph.edges"], json::Value::Num(7.0));
    let json::Value::Obj(gauges) = &m["gauges"] else {
        panic!("gauges object")
    };
    assert_eq!(gauges["flow.cells"], json::Value::Num(11.0));
}

//! Disabled-path overhead guard: with no sink, no recording and no
//! trace armed, `span()` / `count()` / `hist()` must be allocation-free —
//! the probes stay cheap enough to leave compiled into every hot path.
//! The counting allocator (the `obs-alloc` feature's global allocator)
//! is the measurement instrument: a probe that allocates moves
//! `bytes_total`.

#![cfg(feature = "obs-alloc")]

use prebond3d_obs as obs;

#[test]
fn disabled_probes_do_not_allocate() {
    obs::configure(obs::SinkConfig::Off);
    // If the environment armed a sink or a trace (PREBOND3D_OBS /
    // PREBOND3D_TRACE), the probes are legitimately active; the guard
    // only holds for the disabled path.
    if obs::is_active() || obs::trace::armed() {
        return;
    }

    // Warm up lazy globals (sink OnceLock, trace state, allocator) so
    // one-time initialization doesn't count against the probes.
    for i in 0..16u64 {
        let _s = obs::span("overhead_warmup");
        obs::count("overhead.warmup", i);
        obs::hist("overhead.warmup", i);
    }

    // The test harness may allocate on other threads; retry a few times
    // and require at least one perfectly clean window.
    let mut clean = false;
    for _ in 0..5 {
        let before = obs::alloc::bytes_total();
        for i in 0..100_000u64 {
            let _s = obs::span("overhead_probe");
            obs::count("overhead.counter", i);
            obs::hist("overhead.hist", i);
        }
        if obs::alloc::bytes_total() == before {
            clean = true;
            break;
        }
    }
    assert!(
        clean,
        "disabled span()/count()/hist() allocated in every measurement window"
    );
}

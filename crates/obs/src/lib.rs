//! # prebond3d-obs
//!
//! Structured observability for the prebond3d flow: hierarchical wall-clock
//! **spans**, monotonic **counters**, last-value **gauges**, and pluggable
//! **sinks** — with zero external dependencies (DESIGN.md §7) and
//! negligible overhead when disabled, so instrumentation stays compiled-in
//! for release builds.
//!
//! ## Usage
//!
//! ```
//! # use prebond3d_obs as obs;
//! let _rec = obs::record(); // aggregate even without a sink (e.g. tests)
//! {
//!     let _flow = obs::span("flow");
//!     {
//!         let _g = obs::span("graph_build");
//!         obs::count("graph.edges", 42);
//!     }
//!     obs::gauge("graph.nodes", 17);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("graph.edges"), 42);
//! assert_eq!(snap.span("flow/graph_build").unwrap().count, 1);
//! # obs::reset();
//! ```
//!
//! ## Sinks
//!
//! The `PREBOND3D_OBS` environment variable selects the sink on first use:
//!
//! * `off` (default) — no output, no aggregation, near-zero cost: every
//!   probe is one relaxed atomic load and an early return;
//! * `text` — span completions stream to stderr, indented by nesting
//!   depth; [`flush`] prints the counter/gauge table;
//! * `json:<path>` — span completions append JSON-lines events to
//!   `<path>`; [`flush`] appends aggregated `counters`/`gauges` records.
//!
//! Programs can override the environment with [`configure`]. Aggregation
//! into the in-process registry (read via [`snapshot`]) happens whenever a
//! sink is active *or* recording was forced on via [`record`] /
//! [`set_recording`] — the experiment harness uses the latter to build
//! machine-readable run reports regardless of sink choice.
//!
//! ## Threading
//!
//! The span stack is thread-local (nesting is per thread); counters and
//! the aggregate registry are global behind a mutex. Parallel callers
//! that need per-worker isolation wrap their work in [`capture`], which
//! installs a **thread-local registry** for the closure's duration: every
//! probe the closure emits (including probes from nested serial parallel
//! regions — see `prebond3d-pool`'s nesting rule) aggregates into that
//! registry instead of the global one, and is returned as a
//! [`Snapshot`]. Counter *sums* across captured workers equal the serial
//! run's counters exactly, because counters only ever add and each probe
//! lands in exactly one registry — merge order cannot change a sum.

#[cfg(feature = "obs-alloc")]
pub mod alloc;
pub mod hist;
pub mod json;
pub mod mem;
pub mod trace;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use json::Value;

/// Where events go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkConfig {
    /// Drop everything (the default).
    Off,
    /// Human-readable lines on stderr.
    Text,
    /// JSON-lines appended to a file.
    JsonFile(PathBuf),
}

impl SinkConfig {
    /// Parse a `PREBOND3D_OBS` value. Unknown values fall back to `Off`
    /// with a one-line warning on stderr.
    pub fn from_env_value(value: &str) -> SinkConfig {
        let v = value.trim();
        if v.is_empty() || v.eq_ignore_ascii_case("off") || v == "0" {
            SinkConfig::Off
        } else if v.eq_ignore_ascii_case("text") || v == "1" {
            SinkConfig::Text
        } else if let Some(path) = v.strip_prefix("json:") {
            SinkConfig::JsonFile(PathBuf::from(path))
        } else {
            eprintln!(
                "[obs] unknown PREBOND3D_OBS value `{v}` (expected off|text|json:<path>); \
                 observability stays off"
            );
            SinkConfig::Off
        }
    }
}

enum Sink {
    Off,
    Text,
    Json(BufWriter<std::fs::File>),
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// `/`-joined ancestry, e.g. `flow/plan/graph_build`.
    pub path: String,
    /// Leaf name.
    pub name: String,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// Completions recorded.
    pub count: u64,
    /// Total wall-clock time across completions, in nanoseconds.
    pub total_ns: u128,
}

impl SpanStat {
    /// Total milliseconds (convenience for reports).
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1.0e6
    }
}

#[derive(Default)]
struct Registry {
    /// Span stats in first-completion order (deterministic for the
    /// single-threaded flow and within one [`capture`] scope).
    spans: Vec<SpanStat>,
    span_index: HashMap<String, usize>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, hist::Hist>,
}

impl Registry {
    fn record_span(&mut self, path: &str, name: &'static str, depth: usize, dur_ns: u128) {
        match self.span_index.get(path) {
            Some(&i) => {
                self.spans[i].count += 1;
                self.spans[i].total_ns += dur_ns;
            }
            None => {
                let i = self.spans.len();
                self.spans.push(SpanStat {
                    path: path.to_string(),
                    name: name.to_string(),
                    depth,
                    count: 1,
                    total_ns: dur_ns,
                });
                self.span_index.insert(path.to_string(), i);
            }
        }
    }

    fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            spans: self.spans.clone(),
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

struct State {
    sink: Mutex<Sink>,
    sink_active: AtomicBool,
    recording: AtomicBool,
    /// Number of live [`capture_recorded`] scopes (across all threads);
    /// probes are active while it is non-zero. A counter rather than a
    /// bool so concurrent request-scoped captures in a long-lived server
    /// cannot turn recording off under each other.
    forced: AtomicU64,
    registry: Mutex<Registry>,
}

static STATE: OnceLock<State> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Registry installed by [`capture`] — probes on this thread aggregate
    /// here instead of the global registry while it is present.
    static LOCAL: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let st = State {
            sink: Mutex::new(Sink::Off),
            sink_active: AtomicBool::new(false),
            recording: AtomicBool::new(false),
            forced: AtomicU64::new(0),
            registry: Mutex::new(Registry::default()),
        };
        let cfg = std::env::var("PREBOND3D_OBS")
            .map_or(SinkConfig::Off, |v| SinkConfig::from_env_value(&v));
        install_sink(&st, cfg);
        st
    })
}

fn install_sink(st: &State, cfg: SinkConfig) {
    let sink = match cfg {
        SinkConfig::Off => Sink::Off,
        SinkConfig::Text => Sink::Text,
        SinkConfig::JsonFile(path) => {
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(f) => Sink::Json(BufWriter::new(f)),
                Err(e) => {
                    eprintln!(
                        "[obs] cannot open {}: {e}; observability stays off",
                        path.display()
                    );
                    Sink::Off
                }
            }
        }
    };
    st.sink_active
        .store(!matches!(sink, Sink::Off), Ordering::Relaxed);
    *st.sink.lock().unwrap() = sink;
}

/// Replace the sink at runtime (overrides `PREBOND3D_OBS`).
pub fn configure(cfg: SinkConfig) {
    install_sink(state(), cfg);
}

/// Is any probe live (sink active or recording forced)?
#[inline]
pub fn is_active() -> bool {
    let st = state();
    st.sink_active.load(Ordering::Relaxed)
        || st.recording.load(Ordering::Relaxed)
        || st.forced.load(Ordering::Relaxed) > 0
}

/// Force aggregation on/off independently of the sink. Returns the
/// previous value.
pub fn set_recording(on: bool) -> bool {
    state().recording.swap(on, Ordering::Relaxed)
}

/// RAII guard restoring the previous recording state on drop.
pub struct RecordingGuard {
    prev: bool,
}

impl Drop for RecordingGuard {
    fn drop(&mut self) {
        set_recording(self.prev);
    }
}

/// Enable recording for a scope: `let _rec = obs::record();`.
#[must_use = "recording stops when the guard drops"]
pub fn record() -> RecordingGuard {
    RecordingGuard {
        prev: set_recording(true),
    }
}

/// An in-flight span; completion is recorded when the guard drops.
///
/// Guards must drop in LIFO order (natural with RAII scoping) for the
/// hierarchical path to be correct.
#[must_use = "a span measures until the guard drops"]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
}

/// Open a span. Near-free when observability is off (and the event
/// timeline is disarmed).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_active() && !trace::armed() {
        return Span { start: None, name };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
        name,
    }
}

/// Statement form: `obs::span!("clique_partition");` holds the guard for
/// the rest of the enclosing block.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span($name);
    };
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos();
        let (path, depth) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let depth = stack.len().saturating_sub(1);
            let path = stack.join("/");
            stack.pop();
            (path, depth)
        });
        if trace::armed() {
            trace::complete(
                "span",
                self.name,
                start,
                dur_ns,
                Some(("path", path.as_str().into())),
            );
        }
        // Aggregation (and sink streaming below) only under an active
        // probe config; a trace-only run records the timeline and nothing
        // else.
        if !is_active() {
            return;
        }
        let st = state();
        let captured = LOCAL.with(|l| {
            if let Some(reg) = l.borrow_mut().as_mut() {
                reg.record_span(&path, self.name, depth, dur_ns);
                true
            } else {
                false
            }
        });
        if !captured {
            st.registry
                .lock()
                .unwrap()
                .record_span(&path, self.name, depth, dur_ns);
        }
        if st.sink_active.load(Ordering::Relaxed) {
            let mut sink = st.sink.lock().unwrap();
            match &mut *sink {
                Sink::Off => {}
                Sink::Text => {
                    eprintln!(
                        "[obs] {:indent$}{}: {:.3} ms",
                        "",
                        self.name,
                        dur_ns as f64 / 1.0e6,
                        indent = depth * 2
                    );
                }
                Sink::Json(w) => {
                    // Chaos site: a trace-sink write error must never take
                    // down the flow — the event is dropped and the run
                    // report records the degradation.
                    if let Some(e) = prebond3d_resilience::chaos::io_error("obs.sink") {
                        prebond3d_resilience::degrade::record(
                            "obs",
                            "drop_trace_event",
                            format!("trace sink write failed: {e}"),
                        );
                    } else {
                        let ev = Value::obj([
                            ("ev", "span".into()),
                            ("path", path.as_str().into()),
                            ("name", self.name.into()),
                            ("depth", depth.into()),
                            ("ns", (dur_ns as f64).into()),
                        ]);
                        let _ = writeln!(w, "{ev}");
                        let _ = w.flush();
                    }
                }
            }
        }
    }
}

/// Add `delta` to the monotonic counter `name`.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !is_active() || delta == 0 {
        return;
    }
    let captured = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            *reg.counters.entry(name).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if !captured {
        let mut reg = state().registry.lock().unwrap();
        *reg.counters.entry(name).or_insert(0) += delta;
    }
}

/// Record one sample into the log-bucketed histogram `name`
/// (see [`hist::Hist`]). By convention, names ending in `_ns` hold
/// wall-clock nanoseconds and have their value fields zeroed in reports
/// under `PREBOND3D_STABLE_MS`.
#[inline]
pub fn hist(name: &'static str, value: u64) {
    if !is_active() {
        return;
    }
    let captured = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.hists.entry(name).or_default().record(value);
            true
        } else {
            false
        }
    });
    if !captured {
        let mut reg = state().registry.lock().unwrap();
        reg.hists.entry(name).or_default().record(value);
    }
}

/// Record the latest value of gauge `name`.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if !is_active() {
        return;
    }
    let captured = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.gauges.insert(name, value);
            true
        } else {
            false
        }
    });
    if !captured {
        let mut reg = state().registry.lock().unwrap();
        reg.gauges.insert(name, value);
    }
}

/// A point-in-time copy of the aggregate registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Span stats in first-completion order.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, hist::Hist)>,
}

impl Snapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Snapshot {
        Snapshot {
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Latest gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Span stats for an exact `/`-joined path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Histogram by name, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&hist::Hist> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
    }

    /// Serialize as a JSON object (the run-report per-die payload).
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                Value::obj([
                    ("path", s.path.as_str().into()),
                    ("name", s.name.as_str().into()),
                    ("depth", s.depth.into()),
                    ("count", s.count.into()),
                    ("ms", s.total_ms().into()),
                ])
            })
            .collect();
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        let hists = Value::Obj(
            self.hists
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Value::obj([
            ("spans", Value::Arr(spans)),
            ("counters", counters),
            ("gauges", gauges),
            ("hists", hists),
        ])
    }
}

/// Copy out the aggregate registry.
pub fn snapshot() -> Snapshot {
    state().registry.lock().unwrap().to_snapshot()
}

/// Heap telemetry from the counting allocator as
/// `(bytes_total, bytes_current, bytes_peak)`, or `None` when the
/// `obs-alloc` feature is off. Callers need no feature gate of their own.
pub fn alloc_stats() -> Option<(u64, u64, u64)> {
    #[cfg(feature = "obs-alloc")]
    {
        Some((
            alloc::bytes_total(),
            alloc::bytes_current(),
            alloc::bytes_peak(),
        ))
    }
    #[cfg(not(feature = "obs-alloc"))]
    {
        None
    }
}

/// Run `f` with a fresh **thread-local** registry capturing every probe
/// it emits, and return `f`'s output alongside the captured [`Snapshot`].
///
/// This is the aggregation seam for parallel experiment drivers: each
/// worker thread wraps its die's flow in `capture`, so per-die sections
/// never race on (or reset) the global registry, and the caller merges
/// the returned snapshots in submission order. Nested captures stack;
/// the previous registry is restored even when `f` unwinds. Probes are
/// only live under a sink or [`record`] — the capture does not force
/// recording on by itself.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    /// Restores the previously installed registry on drop (unwind-safe).
    struct Restore {
        prev: Option<Registry>,
        done: bool,
    }
    impl Restore {
        fn finish(&mut self) -> Registry {
            self.done = true;
            let mine = LOCAL.with(|l| l.borrow_mut().take()).unwrap_or_default();
            LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
            mine
        }
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if !self.done {
                LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
            }
        }
    }
    let prev = LOCAL.with(|l| l.borrow_mut().replace(Registry::default()));
    let mut restore = Restore { prev, done: false };
    let out = f();
    let snap = restore.finish().to_snapshot();
    (out, snap)
}

/// [`capture`] with probes forced live for the closure's duration — the
/// request-scoped variant for long-lived servers: each job's flow records
/// into its own thread-local registry regardless of sink choice, and the
/// returned [`Snapshot`] is the job's telemetry payload.
///
/// Unlike [`record`] (a global bool whose guard restores the *previous*
/// value, which is racy across concurrent scopes), this uses a depth
/// counter, so any number of jobs may capture concurrently without turning
/// each other's probes off.
pub fn capture_recorded<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    struct Forced;
    impl Drop for Forced {
        fn drop(&mut self) {
            state().forced.fetch_sub(1, Ordering::Relaxed);
        }
    }
    state().forced.fetch_add(1, Ordering::Relaxed);
    let _forced = Forced;
    capture(f)
}

/// Clear the aggregate registry (the harness calls this between dies).
pub fn reset() {
    let mut reg = state().registry.lock().unwrap();
    *reg = Registry::default();
}

/// Emit the aggregated counters/gauges to the sink (text table or JSON
/// records) and flush file sinks. A no-op for `off`.
pub fn flush() {
    let st = state();
    if !st.sink_active.load(Ordering::Relaxed) {
        return;
    }
    let snap = snapshot();
    let mut sink = st.sink.lock().unwrap();
    match &mut *sink {
        Sink::Off => {}
        Sink::Text => {
            for (name, v) in &snap.counters {
                eprintln!("[obs] counter {name} = {v}");
            }
            for (name, v) in &snap.gauges {
                eprintln!("[obs] gauge   {name} = {v}");
            }
        }
        Sink::Json(w) => {
            for (name, v) in &snap.counters {
                let ev = Value::obj([
                    ("ev", "counter".into()),
                    ("name", name.as_str().into()),
                    ("value", (*v).into()),
                ]);
                let _ = writeln!(w, "{ev}");
            }
            for (name, v) in &snap.gauges {
                let ev = Value::obj([
                    ("ev", "gauge".into()),
                    ("name", name.as_str().into()),
                    ("value", (*v).into()),
                ]);
                let _ = writeln!(w, "{ev}");
            }
            let _ = w.flush();
        }
    }
}

//! A hand-rolled JSON value, writer and parser.
//!
//! The workspace's dependency policy (DESIGN.md §7) forbids `serde`; the
//! observability layer only needs to *emit* flat event lines and run
//! reports, and to *parse them back* in round-trip tests and downstream
//! tooling. This module implements exactly that subset of JSON — objects,
//! arrays, strings, finite numbers, booleans, null — with no external
//! crates.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are sorted (`BTreeMap`) so emitted documents
/// are deterministic for a given input.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers survive exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Arr(v)
    }
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        return write!(f, "null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write_num(f, *n),
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{}", escape(k), v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parse one JSON document.
///
/// # Errors
///
/// Returns a byte offset + message on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive here
                // byte-by-byte; rebuild via str slicing).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj([
            ("name", "clique_partition".into()),
            ("ns", 123456u64.into()),
            ("ok", true.into()),
            (
                "child",
                Value::Arr(vec![1u64.into(), Value::Null, "x\"y".into()]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_control_and_quotes() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Value::Num(1.5e6).to_string(), "1500000");
        assert_eq!(Value::Num(0.25).to_string(), "0.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("é"));
    }
}

//! Counting global allocator (the `obs-alloc` feature, on by default).
//!
//! Wraps the system allocator with three relaxed atomics — bytes ever
//! allocated, bytes currently live, and the high-water mark of live bytes
//! — so every binary linking `prebond3d-obs` gets `alloc.bytes_total` /
//! `alloc.bytes_peak` telemetry for free. The bench report layer samples
//! [`bytes_total`]/[`bytes_peak`] at phase boundaries; ROADMAP open item 2
//! (1M-gate scale tiers) needs exactly this curve.
//!
//! Overhead is two/three relaxed RMW ops per allocation on top of the
//! system allocator — noise next to the allocation itself. Builds that
//! want the untouched system allocator use `--no-default-features`.
//!
//! This is the one module in the workspace that needs `unsafe`
//! ([`GlobalAlloc`] is an unsafe trait): the crate lowers the workspace's
//! `unsafe_code = "forbid"` to `deny` so this file alone can opt out.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// The counting wrapper over [`System`]. Installed as the
/// `#[global_allocator]` when the `obs-alloc` feature is on.
pub struct CountingAlloc;

#[inline]
fn note_alloc(size: u64) {
    TOTAL.fetch_add(size, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn note_dealloc(size: u64) {
    // Saturating rather than wrapping: a foreign dealloc (impossible for a
    // from-birth global allocator, but cheap to guard) must not wrap the
    // live count to ~2^64 and wreck the peak.
    let mut live = CURRENT.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(size);
        match CURRENT.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(v) => live = v,
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_dealloc(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes ever allocated by this process (monotonic).
pub fn bytes_total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated minus freed).
pub fn bytes_current() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes.
pub fn bytes_peak() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_counters_see_a_heap_allocation() {
        let before_total = bytes_total();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after_total = bytes_total();
        assert!(
            after_total - before_total >= 1 << 16,
            "a 64 KiB allocation must advance bytes_total by at least its size"
        );
        assert!(bytes_peak() >= 1 << 16);
        drop(v);
        // `current` decreases on free; `total` never does.
        assert!(bytes_total() >= after_total);
    }
}

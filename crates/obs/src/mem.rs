//! Process-level memory telemetry from the kernel's point of view.
//!
//! The counting allocator ([`crate::alloc`]) sees heap traffic; this
//! module reads `/proc/self/status` for the resident-set numbers the OS
//! actually charges the process — `VmRSS` (current) and `VmHWM` (the
//! kernel-maintained high-water mark, which needs no sampling loop to be
//! exact). The bench report layer samples [`rss_now_kb`] at phase
//! boundaries and stamps [`rss_peak_kb`] into the final `mem` block.
//!
//! On non-Linux targets (or a hardened `/proc`) every probe returns
//! `None` and the report simply omits the RSS fields — telemetry is never
//! a portability liability.

/// Parse the first integer of a `Key: value kB` line in
/// `/proc/self/status`.
#[cfg(target_os = "linux")]
fn status_kb(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.strip_prefix(':')?;
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn status_kb(_key: &str) -> Option<u64> {
    None
}

/// Current resident set size in kilobytes (`VmRSS`), if available.
pub fn rss_now_kb() -> Option<u64> {
    status_kb("VmRSS")
}

/// Peak resident set size in kilobytes (`VmHWM`) — the kernel's own
/// high-water mark for this process, if available.
pub fn rss_peak_kb() -> Option<u64> {
    status_kb("VmHWM")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probes_are_sane_where_available() {
        // On Linux CI both must resolve and the peak bounds the current
        // value; elsewhere both are None and that is the contract.
        match (rss_now_kb(), rss_peak_kb()) {
            (Some(now), Some(peak)) => {
                assert!(now > 0);
                assert!(peak >= now / 2, "peak {peak} kB vs now {now} kB");
            }
            (None, None) => {}
            other => panic!("partially available RSS probes: {other:?}"),
        }
    }
}

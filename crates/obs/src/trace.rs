//! Event-timeline tracing in Chrome trace-event JSON.
//!
//! Aggregate span stats (the `lib.rs` registry) answer "how long did phase
//! X take in total"; this module answers "*when* did work happen, on which
//! thread". Setting `PREBOND3D_TRACE=<path>` (or calling [`configure`])
//! arms a process-global recorder: every completed [`crate::span`] becomes
//! a `ph:"X"` *complete* event on its thread's track, instrumented
//! subsystems add `ph:"i"` *instant* events (chaos firings, budget
//! degradations, checkpoint writes — routed here via
//! `prebond3d_resilience::hooks`), and pool workers name their tracks via
//! [`set_thread_name`]. [`flush`] writes the accumulated timeline as one
//! JSON document —
//!
//! ```json
//! {"displayTimeUnit":"ms","traceEvents":[{"ph":"X","name":...}, ...]}
//! ```
//!
//! — directly loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Writes are atomic (temp file + rename) and a panic
//! hook installed at arm time flushes best-effort, so even a crashed run
//! leaves a viewable timeline.
//!
//! Tracing is opt-in and deliberately outside the determinism surface:
//! timestamps live only in the trace file, never in `run_<exp>.json`.
//! When disarmed (the default) every probe is one relaxed atomic load.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::json::Value;

/// Cap on buffered events; beyond it events are dropped (and counted) so
/// a pathological run cannot exhaust memory through its own telemetry.
const MAX_EVENTS: usize = 1 << 20;

struct Inner {
    path: Option<PathBuf>,
    events: Vec<Value>,
    epoch: Instant,
    dropped: u64,
}

struct TraceState {
    armed: AtomicBool,
    inner: Mutex<Inner>,
}

static STATE: OnceLock<TraceState> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's stable track id (assigned on first traced event).
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn state() -> &'static TraceState {
    STATE.get_or_init(|| {
        let path = std::env::var("PREBOND3D_TRACE")
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let st = TraceState {
            armed: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                path: None,
                events: Vec::new(),
                epoch: Instant::now(),
                dropped: 0,
            }),
        };
        if let Some(path) = path {
            arm(&st, path);
        }
        st
    })
}

fn arm(st: &TraceState, path: PathBuf) {
    {
        let mut inner = st.inner.lock().unwrap();
        inner.path = Some(path);
        inner.events.clear();
        inner.dropped = 0;
        inner.epoch = Instant::now();
    }
    st.armed.store(true, Ordering::Relaxed);
    install_panic_flush();
    prebond3d_resilience::hooks::set_trace_hook(Some(resilience_instant));
}

/// The resilience-side hook: chaos firings, degradations and checkpoint
/// appends become instant events on the emitting thread's track.
fn resilience_instant(kind: &'static str, name: &str, detail: &str) {
    instant(kind, name, detail);
}

/// Arm tracing to `path`, or disarm with `None` (overrides
/// `PREBOND3D_TRACE`). Arming resets the event buffer and the timeline
/// epoch.
pub fn configure(path: Option<PathBuf>) {
    let st = state();
    match path {
        Some(p) => arm(st, p),
        None => {
            st.armed.store(false, Ordering::Relaxed);
            prebond3d_resilience::hooks::set_trace_hook(None);
            let mut inner = st.inner.lock().unwrap();
            inner.path = None;
            inner.events.clear();
            inner.dropped = 0;
        }
    }
}

/// Is the timeline recorder armed? One relaxed atomic load after the
/// first call (which resolves `PREBOND3D_TRACE` exactly once).
#[inline]
pub fn armed() -> bool {
    state().armed.load(Ordering::Relaxed)
}

/// The timeline epoch (`ts` 0). Span guards capture `Instant`s; events
/// are stored as microseconds relative to this.
fn micros_since_epoch(inner: &Inner, at: Instant) -> f64 {
    at.saturating_duration_since(inner.epoch).as_nanos() as f64 / 1.0e3
}

/// This thread's track id, assigning one (and emitting a default
/// `thread_name` metadata event) on first use.
fn tid(inner: &mut Inner) -> u64 {
    let t = TID.with(Cell::get);
    if t != 0 {
        return t;
    }
    let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    TID.with(|c| c.set(t));
    let name = if t == 1 {
        "main".to_string()
    } else {
        format!("thread-{t}")
    };
    push_thread_name(inner, t, &name);
    t
}

fn push_thread_name(inner: &mut Inner, tid: u64, name: &str) {
    push(
        inner,
        Value::obj([
            ("ph", "M".into()),
            ("name", "thread_name".into()),
            ("pid", u64::from(std::process::id()).into()),
            ("tid", tid.into()),
            ("args", Value::obj([("name", name.into())])),
        ]),
    );
}

fn push(inner: &mut Inner, ev: Value) {
    if inner.events.len() >= MAX_EVENTS {
        if inner.dropped == 0 {
            eprintln!("[obs] trace buffer full ({MAX_EVENTS} events); dropping further events");
        }
        inner.dropped += 1;
        return;
    }
    inner.events.push(ev);
}

/// Name this thread's track (pool workers call this on entry). Also
/// assigns the track id, so a worker that never claims a chunk still
/// appears in the timeline.
pub fn set_thread_name(name: &str) {
    if !armed() {
        return;
    }
    let st = state();
    let mut inner = st.inner.lock().unwrap();
    let t = TID.with(Cell::get);
    let t = if t != 0 {
        t
    } else {
        let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        TID.with(|c| c.set(t));
        t
    };
    push_thread_name(&mut inner, t, name);
}

/// Record a complete (`ph:"X"`) event: work named `name` in category
/// `cat` ran from `start` for `dur_ns` nanoseconds on this thread. `arg`
/// attaches one optional key/value pair (span path, chunk index, ...).
pub fn complete(
    cat: &'static str,
    name: &str,
    start: Instant,
    dur_ns: u128,
    arg: Option<(&'static str, Value)>,
) {
    if !armed() {
        return;
    }
    let st = state();
    let mut inner = st.inner.lock().unwrap();
    let ts = micros_since_epoch(&inner, start);
    let t = tid(&mut inner);
    let mut fields = vec![
        ("ph", Value::from("X")),
        ("name", name.into()),
        ("cat", cat.into()),
        ("ts", ts.into()),
        ("dur", (dur_ns as f64 / 1.0e3).into()),
        ("pid", u64::from(std::process::id()).into()),
        ("tid", t.into()),
    ];
    if let Some((k, v)) = arg {
        fields.push(("args", Value::obj([(k, v)])));
    }
    push(&mut inner, Value::obj(fields));
}

/// Record a thread-scoped instant (`ph:"i"`) event — a point in time with
/// no duration: a chaos firing, a budget degradation, a checkpoint write.
pub fn instant(cat: &'static str, name: &str, detail: &str) {
    if !armed() {
        return;
    }
    let st = state();
    let mut inner = st.inner.lock().unwrap();
    let ts = micros_since_epoch(&inner, Instant::now());
    let t = tid(&mut inner);
    let ev = Value::obj([
        ("ph", "i".into()),
        ("name", name.into()),
        ("cat", cat.into()),
        ("ts", ts.into()),
        ("pid", u64::from(std::process::id()).into()),
        ("tid", t.into()),
        ("s", "t".into()),
        ("args", Value::obj([("detail", detail.into())])),
    ]);
    push(&mut inner, ev);
}

/// Write the accumulated timeline to the armed path (atomic temp-file +
/// rename; repeated flushes rewrite the file with the growing event list).
/// A no-op when disarmed; write errors are reported on stderr — telemetry
/// must never take down the flow it observes.
pub fn flush() {
    if !armed() {
        return;
    }
    let st = state();
    let inner = st.inner.lock().unwrap();
    let Some(path) = inner.path.clone() else {
        return;
    };
    let mut doc_fields = vec![
        ("displayTimeUnit", Value::from("ms")),
        ("traceEvents", Value::Arr(inner.events.clone())),
    ];
    if inner.dropped > 0 {
        doc_fields.push(("droppedEvents", inner.dropped.into()));
    }
    let doc = Value::obj(doc_fields);
    drop(inner);
    if let Err(e) = prebond3d_resilience::atomic_write(&path, &format!("{doc}\n")) {
        eprintln!("[obs] trace flush failed: {e}");
    }
}

/// Number of buffered events (tests and diagnostics).
pub fn event_count() -> usize {
    let st = state();
    st.inner.lock().unwrap().events.len()
}

/// Flush the timeline when a panic unwinds past the flow, chaining the
/// previously installed hook. Installed once, at first arm.
fn install_panic_flush() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; serialize the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_probes_record_nothing() {
        let _l = LOCK.lock().unwrap();
        configure(None);
        complete("t", "x", Instant::now(), 10, None);
        instant("t", "y", "z");
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn armed_recorder_round_trips_through_the_parser() {
        let _l = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("prebond3d-trace-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("unit_trace.json");
        configure(Some(path.clone()));
        let t0 = Instant::now();
        complete(
            "span",
            "phase_a",
            t0,
            1_500,
            Some(("path", "flow/phase_a".into())),
        );
        instant("chaos", "pool.worker", "panic");
        set_thread_name("unit thread");
        flush();
        configure(None);

        let text = std::fs::read_to_string(&path).expect("trace written");
        let doc = crate::json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 3);
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("complete event");
        assert_eq!(x.get("name").unwrap().as_str(), Some("phase_a"));
        assert!((x.get("dur").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-9);
        let i = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .expect("instant event");
        assert_eq!(i.get("cat").unwrap().as_str(), Some("chaos"));
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

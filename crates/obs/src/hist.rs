//! Log-bucketed latency/value histograms with deterministic merge.
//!
//! A [`Hist`] is a fixed-size array of power-of-two buckets: value `v`
//! lands in bucket `⌈log2(v+1)⌉` (bucket 0 holds only zeros, bucket `i`
//! holds `2^(i-1) ..= 2^i - 1`). No allocation ever happens after
//! construction, recording is one shift + one add, and merging two
//! histograms is element-wise addition — associative and commutative, so
//! per-worker histograms folded in *any* order produce identical bucket
//! counts. That is the same contract the pool's chunk-ordered counter
//! merge relies on (DESIGN.md §8): a histogram of a deterministic value
//! stream is byte-identical at any `PREBOND3D_THREADS`.
//!
//! Quantiles are bucket-resolution estimates: [`Hist::quantile`] walks the
//! cumulative counts and reports the upper bound of the bucket containing
//! the requested rank (clamped to the exact observed maximum), so p50/p95/
//! p99 are within a factor of 2 of the true value — plenty for spotting a
//! latency-distribution regression, and free of any per-sample storage.
//!
//! By convention, histogram *names* ending in `_ns` hold wall-clock
//! nanoseconds: their value fields (sum/max/quantiles) are zeroed under
//! `PREBOND3D_STABLE_MS` by the report layer, while their sample `count`
//! — which only depends on how many events happened, not when — survives
//! and is regression-comparable.

use crate::json::Value;

/// Number of power-of-two buckets. Bucket 63 absorbs everything from
/// `2^62` up, which at nanosecond resolution is ~146 years — effectively
/// unbounded for any value this workspace records.
pub const BUCKETS: usize = 64;

/// A fixed-size power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// The bucket index for value `v`: 0 for 0, else `64 - leading_zeros(v)`
/// capped at the last bucket (so bucket `i ≥ 1` spans `2^(i-1)..2^i`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Hist {
    /// An empty histogram (`const`, so statics can hold one directly).
    pub const fn new() -> Hist {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Merge `other` into `self` (element-wise bucket addition). The
    /// operation is associative and commutative, so any merge order over
    /// a fixed multiset of samples yields identical state.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, 128-bit).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts (index = [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// containing the `q`-th ranked sample (q in `[0, 1]`), clamped to the
    /// exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Serialize as the report-layer JSON object: sample `count` plus the
    /// value summary (`sum`, `max`, `p50`, `p95`, `p99`). Bucket arrays
    /// stay in-process; the report only carries the summary.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("count", self.count.into()),
            ("sum", (self.sum.min(u128::from(u64::MAX)) as u64).into()),
            ("max", self.max.into()),
            ("p50", self.quantile(0.50).into()),
            ("p95", self.quantile(0.95).into()),
            ("p99", self.quantile(0.99).into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let samples: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2654435761) >> 32)
            .collect();
        let mut whole = Hist::new();
        for &s in &samples {
            whole.record(s);
        }
        // Split three ways, merge in two different orders.
        let mut parts: Vec<Hist> = (0..3).map(|_| Hist::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].record(s);
        }
        let mut ab_c = parts[0].clone();
        ab_c.merge(&parts[1]);
        ab_c.merge(&parts[2]);
        let mut c_ba = parts[2].clone();
        c_ba.merge(&parts[1]);
        c_ba.merge(&parts[0]);
        assert_eq!(ab_c, c_ba);
        assert_eq!(ab_c, whole);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // True median 500; the containing bucket [512, 1023] reports 1023.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to the exact max");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Hist::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn json_carries_the_summary() {
        let mut h = Hist::new();
        h.record(10);
        h.record(1000);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("sum").unwrap().as_u64(), Some(1010));
        assert_eq!(j.get("max").unwrap().as_u64(), Some(1000));
        assert!(j.get("p50").unwrap().as_u64().unwrap() >= 10);
    }
}

//! Upward-facing telemetry hooks.
//!
//! This crate sits at the bottom of the workspace (DESIGN.md §10) and must
//! not depend on `prebond3d-obs`, yet chaos firings, degradations and
//! checkpoint writes belong on the observability timeline. The seam is a
//! single installable function pointer: the obs layer registers
//! [`set_trace_hook`] when event tracing is armed, and the resilience
//! modules call [`emit`] at each noteworthy moment. With no hook installed
//! (the default, and the common case) an emit is one relaxed atomic load.
//!
//! A plain `fn` pointer — not a boxed closure — keeps this allocation-free
//! and `unsafe`-free: the pointer is stashed behind a mutex with an atomic
//! armed flag for the fast path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A telemetry sink for resilience events: `(kind, name, detail)`, e.g.
/// `("chaos", "pool.worker", "panic")` or `("checkpoint", "append",
/// "results/run_x.json.ckpt")`.
pub type TraceHook = fn(kind: &'static str, name: &str, detail: &str);

static ARMED: AtomicBool = AtomicBool::new(false);
static HOOK: Mutex<Option<TraceHook>> = Mutex::new(None);

/// Install (or with `None` remove) the process-global trace hook.
pub fn set_trace_hook(hook: Option<TraceHook>) {
    *HOOK.lock().unwrap() = hook;
    ARMED.store(hook.is_some(), Ordering::Release);
}

/// Forward an event to the installed hook, if any. Near-free when no hook
/// is installed; events are rare (faults, degradations, checkpoints), so
/// the armed-path mutex is uncontended in practice.
pub fn emit(kind: &'static str, name: &str, detail: &str) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let hook = *HOOK.lock().unwrap();
    if let Some(f) = hook {
        f(kind, name, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn test_hook(_kind: &'static str, _name: &str, _detail: &str) {
        SEEN.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn emit_reaches_the_installed_hook_and_only_then() {
        emit("chaos", "nothing", "installed");
        assert_eq!(SEEN.load(Ordering::Relaxed), 0);
        set_trace_hook(Some(test_hook));
        emit("chaos", "site", "detail");
        emit("degrade", "phase", "action");
        set_trace_hook(None);
        emit("chaos", "after", "removal");
        assert_eq!(SEEN.load(Ordering::Relaxed), 2);
    }
}

//! # prebond3d-resilience
//!
//! Zero-dependency fault-tolerance primitives for the experiment pipeline
//! (DESIGN.md §10). Four pillars, each usable on its own:
//!
//! * [`chaos`] — deterministic, seeded fault injection at instrumented
//!   sites (`PREBOND3D_CHAOS=<seed>:<rate>`), so every error path in the
//!   Fig. 6 flow is actually exercised instead of trusted;
//! * [`budget`] — cooperative phase deadlines (`PREBOND3D_BUDGET_MS`)
//!   checked inside the long loops (PODEM backtracking, fault-simulation
//!   batches, clique merging, annealing), degrading gracefully instead of
//!   running unbounded;
//! * [`degrade`] — a process-global registry of structured degradation /
//!   recovery records that the bench collector folds into
//!   `results/run_<exp>.json`;
//! * [`io`] — atomic (temp-file + rename) report writes and tolerant
//!   JSON-lines checkpoint primitives with contextual errors naming the
//!   file, feeding crash-safe resume (`PREBOND3D_RESUME=1`).
//!
//! The crate deliberately depends on nothing in-tree: every other crate
//! (netlist, pool, atpg, core, obs, bench) layers on top of it, so the
//! chaos/budget hooks can live at the lowest level without cycles.

pub mod budget;
pub mod chaos;
pub mod degrade;
pub mod hooks;
pub mod io;

pub use budget::Deadline;
pub use io::atomic_write;

/// FNV-1a over `bytes` — the workspace's stable, dependency-free hash.
/// Used for chaos-site gating and checkpoint config hashes; must never
/// change across versions or resumed runs would discard their checkpoints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Continue an FNV-1a hash with more bytes (for composite keys).
pub fn fnv1a_more(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Is crash-safe resume requested? `PREBOND3D_RESUME=1` (or a programmatic
/// override installed by [`force_resume`], which wins — the integration
/// tests must not race on process-global env vars).
pub fn resume_enabled() -> bool {
    match RESUME_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => matches!(
            std::env::var("PREBOND3D_RESUME").as_deref(),
            Ok("1") | Ok("on") | Ok("true") | Ok("yes")
        ),
    }
}

static RESUME_OVERRIDE: std::sync::atomic::AtomicI8 = std::sync::atomic::AtomicI8::new(-1);

/// Force resume on/off for this process regardless of the environment;
/// `None` restores env-driven behavior. Test hook.
pub fn force_resume(v: Option<bool>) {
    RESUME_OVERRIDE.store(
        match v {
            None => -1,
            Some(false) => 0,
            Some(true) => 1,
        },
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// Should reports zero out wall-clock fields? (`PREBOND3D_STABLE_MS=1` or
/// the [`force_stable_ms`] override.) Timing is the only nondeterministic
/// content of the run reports; zeroing it makes an interrupted-and-resumed
/// sweep byte-identical to an uninterrupted one, which the kill-and-resume
/// suite asserts.
pub fn stable_ms() -> bool {
    match STABLE_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => matches!(
            std::env::var("PREBOND3D_STABLE_MS").as_deref(),
            Ok("1") | Ok("on") | Ok("true") | Ok("yes")
        ),
    }
}

static STABLE_OVERRIDE: std::sync::atomic::AtomicI8 = std::sync::atomic::AtomicI8::new(-1);

/// Force stable-ms on/off for this process; `None` restores env-driven
/// behavior. Test hook.
pub fn force_stable_ms(v: Option<bool>) {
    STABLE_OVERRIDE.store(
        match v {
            None => -1,
            Some(false) => 0,
            Some(true) => 1,
        },
        std::sync::atomic::Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors; a change here invalidates every checkpoint.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_more(fnv1a(b"ab"), b"c"), fnv1a(b"abc"));
    }

    #[test]
    fn overrides_beat_the_environment() {
        force_resume(Some(true));
        assert!(resume_enabled());
        force_resume(Some(false));
        assert!(!resume_enabled());
        force_resume(None);

        force_stable_ms(Some(true));
        assert!(stable_ms());
        force_stable_ms(None);
    }
}

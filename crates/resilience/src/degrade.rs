//! Process-global registry of graceful-degradation records.
//!
//! When a phase cuts itself short — PODEM aborting faults at its budget,
//! annealing returning best-so-far, exact clique search stopping at its
//! incumbent, a report write falling back to stderr — it records a
//! structured entry here. The bench collector drains the registry once per
//! `finish()` and folds the entries into `results/run_<exp>.json` under
//! `degradations`, so a degraded run names exactly what it skipped instead
//! of silently producing weaker numbers.

use std::sync::Mutex;

/// One degradation: `phase` cut itself short by taking `action`, with a
/// human-readable `detail` (counts, file names, budget figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The phase that degraded (`atpg`, `anneal`, `clique.exact`, …).
    pub phase: &'static str,
    /// What it did instead of completing (`abort_faults`, `best_so_far`, …).
    pub action: &'static str,
    /// Free-form context: counts, budget, file names.
    pub detail: String,
}

static REGISTRY: Mutex<Vec<Degradation>> = Mutex::new(Vec::new());

/// Record one degradation.
pub fn record(phase: &'static str, action: &'static str, detail: impl Into<String>) {
    let detail = detail.into();
    crate::hooks::emit("degrade", phase, &format!("{action}: {detail}"));
    REGISTRY.lock().unwrap().push(Degradation {
        phase,
        action,
        detail,
    });
}

/// Drain the registry (the collector calls this once per `finish`).
pub fn drain() -> Vec<Degradation> {
    std::mem::take(&mut *REGISTRY.lock().unwrap())
}

/// Copy of the registry without draining (test assertions).
pub fn events() -> Vec<Degradation> {
    REGISTRY.lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The registry is process-global; serialize tests that touch it.
    static LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn record_then_drain_round_trips() {
        let _l = LOCK.lock().unwrap();
        drain();
        record("atpg", "abort_faults", "12 faults aborted at 50ms budget");
        record("anneal", "best_so_far", "stopped after 4096/16384 moves");
        let evs = events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, "atpg");
        let drained = drain();
        assert_eq!(drained, evs);
        assert!(drain().is_empty(), "drain empties the registry");
    }
}

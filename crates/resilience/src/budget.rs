//! Cooperative phase deadlines.
//!
//! `PREBOND3D_BUDGET_MS=<ms>` gives every *phase* (PODEM search, fault
//! simulation, clique merging, annealing, exact search) the same wall-clock
//! budget, counted from the moment the phase constructs its [`Deadline`].
//! The long loops poll [`Deadline::expired`] every few hundred iterations
//! and degrade gracefully on expiry: PODEM aborts the fault with a reason,
//! annealing returns best-so-far, exact clique search returns its
//! incumbent with `optimal = false`. Each such degradation is recorded via
//! [`crate::degrade`] so the run report names what was cut short.
//!
//! When no budget is configured, [`Deadline::none`] is returned and every
//! check is a branch on `Option::None` — no clock reads, so unbudgeted
//! runs stay exactly as deterministic as before.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// A point in time after which a phase should wind down. `Copy`, cheap to
/// pass by value into config structs and worker closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (the unbudgeted default). Checks
    /// against it never read the clock.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline {
            at: Some(Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// The deadline for a phase starting now: `PREBOND3D_BUDGET_MS` from
    /// the environment (or the [`force_budget_ms`] override), else
    /// [`Deadline::none`].
    pub fn for_phase() -> Self {
        match budget_ms() {
            Some(ms) => Deadline::in_ms(ms),
            None => Deadline::none(),
        }
    }

    /// Has the budget run out? `false` forever for [`Deadline::none`].
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Is there an actual budget attached (i.e. not [`Deadline::none`])?
    pub fn is_armed(&self) -> bool {
        self.at.is_some()
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

/// `-2` = unset (consult env), `-1` = forced off, `>= 0` = forced value.
static BUDGET_OVERRIDE: AtomicI64 = AtomicI64::new(-2);

thread_local! {
    /// Per-thread budget override: `None` = no override (fall through to
    /// the process override / environment), `Some(Some(ms))` = this thread
    /// runs under an `ms`-millisecond phase budget, `Some(None)` = this
    /// thread explicitly has *no* budget even if the process does.
    static THREAD_BUDGET: std::cell::Cell<Option<Option<u64>>> =
        const { std::cell::Cell::new(None) };
}

/// The configured per-phase budget in milliseconds, if any. Resolution
/// order: thread override (a serving job's `budget_ms`), process override
/// ([`force_budget_ms`]), then `PREBOND3D_BUDGET_MS`.
pub fn budget_ms() -> Option<u64> {
    if let Some(thread) = THREAD_BUDGET.with(std::cell::Cell::get) {
        return thread;
    }
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        -1 => None,
        ms if ms >= 0 => Some(ms as u64),
        _ => std::env::var("PREBOND3D_BUDGET_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok()),
    }
}

/// The raw thread-local override, for propagating into threads this one
/// spawns (the pool copies it into its workers so a budgeted serving job
/// stays budgeted inside parallel regions).
pub fn thread_budget() -> Option<Option<u64>> {
    THREAD_BUDGET.with(std::cell::Cell::get)
}

/// RAII guard restoring the previous thread budget on drop.
#[must_use = "dropping the guard immediately undoes the override"]
pub struct ThreadBudgetGuard {
    prev: Option<Option<u64>>,
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        THREAD_BUDGET.with(|t| t.set(self.prev));
    }
}

/// Install a thread-local budget override (see [`budget_ms`] for the
/// resolution order) until the returned guard drops. Pass a value read
/// from [`thread_budget`] to inherit a spawning thread's override.
pub fn install_thread_budget(v: Option<Option<u64>>) -> ThreadBudgetGuard {
    let prev = THREAD_BUDGET.with(|t| t.replace(v));
    ThreadBudgetGuard { prev }
}

/// Run `f` with this thread budgeted to `ms` milliseconds per phase
/// (`None` leaves the ambient configuration untouched). The override is
/// restored on exit, panics included.
pub fn with_thread_budget_ms<R>(ms: Option<u64>, f: impl FnOnce() -> R) -> R {
    let _guard = ms.map(|ms| install_thread_budget(Some(Some(ms))));
    f()
}

/// Is a phase budget configured at all? (`lintflow` consults this to
/// allow-list the timing violations a truncated search can leave behind.)
pub fn budget_armed() -> bool {
    budget_ms().is_some()
}

/// Force the per-phase budget for this process regardless of the
/// environment; `Some(None)` forces *no* budget, `None` restores
/// env-driven behavior. Test hook.
pub fn force_budget_ms(v: Option<Option<u64>>) {
    BUDGET_OVERRIDE.store(
        match v {
            None => -2,
            Some(None) => -1,
            Some(Some(ms)) => i64::try_from(ms).unwrap_or(i64::MAX),
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_armed());
        assert!(!d.expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::in_ms(0);
        assert!(d.is_armed());
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::in_ms(120_000);
        assert!(!d.expired());
    }

    #[test]
    fn thread_override_beats_process_override_and_restores() {
        force_budget_ms(Some(Some(500)));
        assert_eq!(budget_ms(), Some(500));
        let out = with_thread_budget_ms(Some(7), || {
            assert_eq!(budget_ms(), Some(7));
            assert_eq!(thread_budget(), Some(Some(7)));
            // An inner "no budget" override wins over everything.
            let g = install_thread_budget(Some(None));
            assert_eq!(budget_ms(), None);
            drop(g);
            budget_ms()
        });
        assert_eq!(out, Some(7));
        assert_eq!(budget_ms(), Some(500), "thread override restored");
        assert_eq!(thread_budget(), None);
        // `None` means "do not override".
        with_thread_budget_ms(None, || assert_eq!(budget_ms(), Some(500)));
        force_budget_ms(None);
    }

    #[test]
    fn thread_override_is_thread_local() {
        let _g = install_thread_budget(Some(Some(3)));
        assert_eq!(budget_ms(), Some(3));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(thread_budget(), None, "fresh threads are unbudgeted");
                let _inner = install_thread_budget(thread_budget());
                assert_eq!(thread_budget(), None);
            });
        });
        assert_eq!(budget_ms(), Some(3));
    }

    #[test]
    fn override_beats_environment() {
        force_budget_ms(Some(Some(5)));
        assert_eq!(budget_ms(), Some(5));
        assert!(budget_armed());
        assert!(Deadline::for_phase().is_armed());
        force_budget_ms(Some(None));
        assert_eq!(budget_ms(), None);
        assert!(!Deadline::for_phase().is_armed());
        force_budget_ms(None);
    }
}

//! Cooperative phase deadlines.
//!
//! `PREBOND3D_BUDGET_MS=<ms>` gives every *phase* (PODEM search, fault
//! simulation, clique merging, annealing, exact search) the same wall-clock
//! budget, counted from the moment the phase constructs its [`Deadline`].
//! The long loops poll [`Deadline::expired`] every few hundred iterations
//! and degrade gracefully on expiry: PODEM aborts the fault with a reason,
//! annealing returns best-so-far, exact clique search returns its
//! incumbent with `optimal = false`. Each such degradation is recorded via
//! [`crate::degrade`] so the run report names what was cut short.
//!
//! When no budget is configured, [`Deadline::none`] is returned and every
//! check is a branch on `Option::None` — no clock reads, so unbudgeted
//! runs stay exactly as deterministic as before.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// A point in time after which a phase should wind down. `Copy`, cheap to
/// pass by value into config structs and worker closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (the unbudgeted default). Checks
    /// against it never read the clock.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline {
            at: Some(Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// The deadline for a phase starting now: `PREBOND3D_BUDGET_MS` from
    /// the environment (or the [`force_budget_ms`] override), else
    /// [`Deadline::none`].
    pub fn for_phase() -> Self {
        match budget_ms() {
            Some(ms) => Deadline::in_ms(ms),
            None => Deadline::none(),
        }
    }

    /// Has the budget run out? `false` forever for [`Deadline::none`].
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Is there an actual budget attached (i.e. not [`Deadline::none`])?
    pub fn is_armed(&self) -> bool {
        self.at.is_some()
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

/// `-2` = unset (consult env), `-1` = forced off, `>= 0` = forced value.
static BUDGET_OVERRIDE: AtomicI64 = AtomicI64::new(-2);

/// The configured per-phase budget in milliseconds, if any.
pub fn budget_ms() -> Option<u64> {
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        -1 => None,
        ms if ms >= 0 => Some(ms as u64),
        _ => std::env::var("PREBOND3D_BUDGET_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok()),
    }
}

/// Is a phase budget configured at all? (`lintflow` consults this to
/// allow-list the timing violations a truncated search can leave behind.)
pub fn budget_armed() -> bool {
    budget_ms().is_some()
}

/// Force the per-phase budget for this process regardless of the
/// environment; `Some(None)` forces *no* budget, `None` restores
/// env-driven behavior. Test hook.
pub fn force_budget_ms(v: Option<Option<u64>>) {
    BUDGET_OVERRIDE.store(
        match v {
            None => -2,
            Some(None) => -1,
            Some(Some(ms)) => i64::try_from(ms).unwrap_or(i64::MAX),
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_armed());
        assert!(!d.expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::in_ms(0);
        assert!(d.is_armed());
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::in_ms(120_000);
        assert!(!d.expired());
    }

    #[test]
    fn override_beats_environment() {
        force_budget_ms(Some(Some(5)));
        assert_eq!(budget_ms(), Some(5));
        assert!(budget_armed());
        assert!(Deadline::for_phase().is_armed());
        force_budget_ms(Some(None));
        assert_eq!(budget_ms(), None);
        assert!(!Deadline::for_phase().is_armed());
        force_budget_ms(None);
    }
}

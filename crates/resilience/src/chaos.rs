//! Deterministic, seeded fault injection.
//!
//! `PREBOND3D_CHAOS=<seed>:<rate>` arms the registry: every instrumented
//! site keeps a per-site call counter, and call `k` at site `s` injects a
//! fault iff `fnv1a(seed ‖ s ‖ k)` maps below `rate` — reproducible for a
//! given seed regardless of what else the process does at *other* sites
//! (per-site counters make sites independent). Sites:
//!
//! | site            | injection                              |
//! |-----------------|----------------------------------------|
//! | `netlist.load`  | panic while generating a die           |
//! | `liberty.load`  | panic while building the cell library  |
//! | `pool.worker`   | panic inside a pool worker closure     |
//! | `timing.elmore` | NaN/∞ perturbation of an Elmore delay  |
//! | `io.write`      | `io::Error` on a report/checkpoint write |
//! | `obs.sink`      | `io::Error` on a trace-sink write      |
//!
//! Every injection is recorded in a process-global event log that the
//! bench collector drains into the run report, so the chaos suite can
//! assert each injected fault was recovered, degraded, or reported.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{fnv1a, fnv1a_more};

/// What an instrumented site does when its roll comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// `panic!` with a `chaos[<site>]` payload.
    Panic,
    /// An injected `std::io::Error`.
    Io,
    /// A NaN/∞ perturbation of a numeric value.
    NonFinite,
}

impl ChaosKind {
    /// Stable label used in the run report.
    pub fn label(self) -> &'static str {
        match self {
            ChaosKind::Panic => "panic",
            ChaosKind::Io => "io",
            ChaosKind::NonFinite => "non_finite",
        }
    }
}

/// One recorded injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Instrumented site (`pool.worker`, `io.write`, …).
    pub site: &'static str,
    /// Fault class.
    pub kind: ChaosKind,
    /// The site-local call index that fired (1-based).
    pub seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    seed: u64,
    /// Injection probability in [0, 1].
    rate: f64,
}

struct Registry {
    config: Option<Config>,
    /// `site → calls so far` (site names are interned `&'static str`s).
    counters: Mutex<Vec<(&'static str, AtomicU64)>>,
    events: Mutex<Vec<ChaosEvent>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn parse_env(v: &str) -> Option<Config> {
    let (seed, rate) = v.split_once(':')?;
    let seed = seed.trim().parse::<u64>().ok()?;
    let rate = rate.trim().parse::<f64>().ok()?;
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("[chaos] PREBOND3D_CHAOS rate {rate} outside [0,1]; chaos stays off");
        return None;
    }
    Some(Config { seed, rate })
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let config = std::env::var("PREBOND3D_CHAOS")
            .ok()
            .as_deref()
            .and_then(|v| {
                let parsed = parse_env(v);
                if parsed.is_none() && !v.trim().is_empty() {
                    eprintln!("[chaos] cannot parse PREBOND3D_CHAOS=`{v}` (want `<seed>:<rate>`)");
                }
                parsed
            });
        Registry {
            config,
            counters: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    })
}

/// Programmatic override for the chaos suite: arm with `(seed, rate)` or
/// disarm with `None`. Must be called before the first site is exercised
/// in env-armed processes only if the env is unset; in practice the tests
/// run with the env unset and install per-seed configs between runs.
pub fn install(config: Option<(u64, f64)>) {
    let reg = registry();
    // OnceLock holds the registry; the config lives behind a second cell
    // so tests can swap seeds. Interior mutability via a dedicated lock.
    OVERRIDE
        .get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap()
        .replace(config.map(|(seed, rate)| Config { seed, rate }));
    // Reset per-site counters and the event log for the new run.
    reg.counters.lock().unwrap().clear();
    reg.events.lock().unwrap().clear();
}

static OVERRIDE: OnceLock<Mutex<Option<Option<Config>>>> = OnceLock::new();

fn active_config() -> Option<Config> {
    if let Some(m) = OVERRIDE.get() {
        if let Some(over) = *m.lock().unwrap() {
            return over;
        }
    }
    registry().config
}

/// Is chaos injection armed at all?
pub fn armed() -> bool {
    active_config().is_some()
}

/// The armed `(seed, rate)`, if any — echoed into the run report so a
/// failing chaos run names its own reproduction recipe.
pub fn config() -> Option<(u64, f64)> {
    active_config().map(|c| (c.seed, c.rate))
}

/// Decide-and-count one call at `site`. Returns the 1-based call index
/// when this call injects.
fn roll(site: &'static str) -> Option<u64> {
    let cfg = active_config()?;
    let reg = registry();
    let seq = {
        let mut counters = reg.counters.lock().unwrap();
        match counters.iter().find(|(s, _)| *s == site) {
            Some((_, c)) => c.fetch_add(1, Ordering::Relaxed) + 1,
            None => {
                counters.push((site, AtomicU64::new(1)));
                1
            }
        }
    };
    let h = fnv1a_more(
        fnv1a_more(fnv1a(&cfg.seed.to_le_bytes()), site.as_bytes()),
        &seq.to_le_bytes(),
    );
    // Top 53 bits → uniform fraction in [0, 1).
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
    (frac < cfg.rate).then_some(seq)
}

fn record(site: &'static str, kind: ChaosKind, seq: u64) {
    registry()
        .events
        .lock()
        .unwrap()
        .push(ChaosEvent { site, kind, seq });
    crate::hooks::emit("chaos", site, kind.label());
}

/// Record an event without rolling — the schema probe uses this so the
/// golden files cover the chaos array's element shape.
pub fn note(site: &'static str, kind: ChaosKind) {
    record(site, kind, 0);
}

/// Panic-injection site. No-op unless armed and the roll fires.
///
/// # Panics
///
/// By design, with a `chaos[<site>]`-prefixed payload when the seeded roll
/// selects this call.
pub fn maybe_panic(site: &'static str) {
    if let Some(seq) = roll(site) {
        record(site, ChaosKind::Panic, seq);
        panic!("chaos[{site}] injected panic (call #{seq})");
    }
}

/// I/O-error-injection site: `Some(error)` when the roll fires, which the
/// caller returns in place of performing the write.
pub fn io_error(site: &'static str) -> Option<std::io::Error> {
    let seq = roll(site)?;
    record(site, ChaosKind::Io, seq);
    Some(std::io::Error::other(format!(
        "chaos[{site}] injected I/O error (call #{seq})"
    )))
}

/// Numeric-perturbation site: returns NaN or ∞ (alternating by call
/// index) in place of `value` when the roll fires.
pub fn perturb(site: &'static str, value: f64) -> f64 {
    match roll(site) {
        Some(seq) => {
            record(site, ChaosKind::NonFinite, seq);
            if seq % 2 == 0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        }
        None => value,
    }
}

/// Drain the event log (the collector calls this once per `finish`).
pub fn drain_events() -> Vec<ChaosEvent> {
    std::mem::take(&mut *registry().events.lock().unwrap())
}

/// Copy of the event log without draining (test assertions).
pub fn events() -> Vec<ChaosEvent> {
    registry().events.lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // Chaos config is process-global; serialize the tests that touch it.
    static LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn unarmed_sites_are_noops() {
        let _l = LOCK.lock().unwrap();
        install(None);
        maybe_panic("test.site");
        assert!(io_error("test.site").is_none());
        assert_eq!(perturb("test.site", 1.25), 1.25);
        assert!(drain_events().is_empty());
        install(None);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let _l = LOCK.lock().unwrap();
        let fire_pattern = |seed: u64| -> Vec<bool> {
            install(Some((seed, 0.3)));
            let fired: Vec<bool> = (0..64).map(|_| io_error("det.site").is_some()).collect();
            install(None);
            fired
        };
        let a = fire_pattern(7);
        let b = fire_pattern(7);
        let c = fire_pattern(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&f| f), "rate 0.3 over 64 calls must fire");
        assert!(!a.iter().all(|&f| f), "rate 0.3 must not always fire");
    }

    #[test]
    fn sites_roll_independently() {
        let _l = LOCK.lock().unwrap();
        install(Some((12, 0.5)));
        let a: Vec<bool> = (0..32).map(|_| io_error("site.a").is_some()).collect();
        install(Some((12, 0.5)));
        // Interleave calls to another site; site.a's schedule must not move.
        let b: Vec<bool> = (0..32)
            .map(|_| {
                let _ = perturb("site.b", 0.0);
                io_error("site.a").is_some()
            })
            .collect();
        install(None);
        assert_eq!(a, b, "per-site counters isolate sites");
    }

    #[test]
    fn panic_payload_names_the_site() {
        let _l = LOCK.lock().unwrap();
        install(Some((3, 1.0)));
        let err = std::panic::catch_unwind(|| maybe_panic("boom.site")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("chaos[boom.site]"), "{msg}");
        let evs = drain_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, ChaosKind::Panic);
        install(None);
    }

    #[test]
    fn perturbation_yields_non_finite() {
        let _l = LOCK.lock().unwrap();
        install(Some((4, 1.0)));
        let v1 = perturb("nan.site", 10.0);
        let v2 = perturb("nan.site", 10.0);
        install(None);
        assert!(!v1.is_finite() && !v2.is_finite());
        assert!(v1.is_nan() != v2.is_nan(), "alternates NaN and infinity");
    }
}

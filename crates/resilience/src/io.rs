//! Crash-safe I/O primitives: atomic report writes and tolerant
//! line-oriented checkpoints.
//!
//! * [`atomic_write`] writes via a temp file in the target directory and
//!   renames it into place, so a `SIGKILL` mid-write leaves either the old
//!   report or the new one — never a torn file. Errors are contextual and
//!   name the file being written.
//! * Checkpoints are append-only files of newline-terminated JSON entries
//!   under a one-line header naming the config hash. A torn final line
//!   (missing its newline, i.e. a crash mid-append) is silently dropped on
//!   load; a header/hash mismatch discards the whole checkpoint, so a
//!   resumed run never mixes units from a different configuration.
//!
//! This crate is dependency-free, so entries are opaque lines here; the
//! bench collector parses them as JSON on its side.
//!
//! Both write paths are chaos-instrumented at site `io.write`.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::chaos;

/// Wrap `e` with the operation and the file it targeted, so a full disk or
/// a missing `results/` dir is reported as more than "No such file".
fn with_context(op: &str, path: &Path, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{op} {}: {e}", path.display()))
}

/// Atomically replace `path` with `contents` (temp file + rename in the
/// same directory). The temp file name is derived from the target name, so
/// concurrent writers of *different* reports never collide.
///
/// # Errors
///
/// Any underlying I/O error (including one injected at chaos site
/// `io.write`), wrapped with the target path.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(e) = chaos::io_error("io.write") {
        return Err(with_context("write", path, e));
    }
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir).map_err(|e| with_context("create dir for", path, e))?;
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("report");
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    let mut f = fs::File::create(&tmp).map_err(|e| with_context("create", &tmp, e))?;
    f.write_all(contents.as_bytes())
        .map_err(|e| with_context("write", &tmp, e))?;
    f.sync_all().map_err(|e| with_context("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| with_context("rename into", path, e))
}

/// The one-line header that opens a checkpoint for config hash `hash`.
fn header(hash: u64) -> String {
    format!("checkpoint v1 config={hash:016x}")
}

/// Load the completed-unit entries of the checkpoint at `path` for config
/// hash `hash`. Returns `None` when there is no usable checkpoint: the
/// file is missing or unreadable, or its header names a different config
/// (a stale checkpoint from another selection must not poison a resume).
/// A torn final line — no trailing newline, i.e. the process died
/// mid-append — is dropped, not an error.
pub fn load_checkpoint(path: &Path, hash: u64) -> Option<Vec<String>> {
    let text = fs::read_to_string(path).ok()?;
    let complete = match text.rfind('\n') {
        Some(last) => &text[..last],
        None => return None, // not even a complete header line
    };
    let mut lines = complete.lines();
    if lines.next() != Some(header(hash).as_str()) {
        return None;
    }
    Some(lines.map(str::to_string).collect())
}

/// Append one completed-unit `entry` (a single line, no embedded newlines)
/// to the checkpoint at `path`, creating it with the config header when
/// absent. The entry and its newline go out in one `write_all`, so a crash
/// leaves at worst a torn final line that [`load_checkpoint`] drops.
///
/// # Errors
///
/// Any underlying I/O error (including one injected at chaos site
/// `io.write`), wrapped with the checkpoint path.
pub fn append_checkpoint(path: &Path, hash: u64, entry: &str) -> std::io::Result<()> {
    debug_assert!(!entry.contains('\n'), "checkpoint entries are single lines");
    if let Some(e) = chaos::io_error("io.write") {
        return Err(with_context("append to", path, e));
    }
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).map_err(|e| with_context("create dir for", path, e))?;
    }
    let fresh = load_checkpoint(path, hash).is_none();
    if fresh {
        // Missing, headerless, or stale-config checkpoint: start over.
        let mut f = fs::File::create(path).map_err(|e| with_context("create", path, e))?;
        f.write_all(format!("{}\n{entry}\n", header(hash)).as_bytes())
            .map_err(|e| with_context("write", path, e))?;
        f.sync_all().map_err(|e| with_context("sync", path, e))?;
        crate::hooks::emit("checkpoint", "append", &path.display().to_string());
        return Ok(());
    }
    // Terminate a torn final line (crash mid-append) so the new entry
    // stays on its own line; the garbage fragment is skipped on parse.
    let torn = fs::read_to_string(path).is_ok_and(|t| !t.is_empty() && !t.ends_with('\n'));
    let mut f = fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| with_context("open", path, e))?;
    let payload = if torn {
        format!("\n{entry}\n")
    } else {
        format!("{entry}\n")
    };
    f.write_all(payload.as_bytes())
        .map_err(|e| with_context("append to", path, e))?;
    f.sync_all().map_err(|e| with_context("sync", path, e))?;
    crate::hooks::emit("checkpoint", "append", &path.display().to_string());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("prebond3d-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("run_x.json");
        atomic_write(&path, "{\"a\":1}").unwrap();
        atomic_write(&path, "{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_errors_name_the_file() {
        // A path that routes *through* a regular file fails for any user.
        let dir = tmp_dir("ctx");
        let blocker = dir.join("blocker");
        fs::write(&blocker, "").unwrap();
        let path = blocker.join("run_x.json");
        let err = atomic_write(&path, "x").unwrap_err();
        assert!(
            err.to_string().contains("run_x.json"),
            "error must name the target: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_and_drops_torn_tail() {
        let dir = tmp_dir("ckpt");
        let path = dir.join("checkpoint_t.json");
        append_checkpoint(&path, 42, "{\"key\":\"a\"}").unwrap();
        append_checkpoint(&path, 42, "{\"key\":\"b\"}").unwrap();
        assert_eq!(
            load_checkpoint(&path, 42).unwrap(),
            vec!["{\"key\":\"a\"}".to_string(), "{\"key\":\"b\"}".to_string()]
        );
        // Simulate a crash mid-append: torn final line without newline.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"c\",\"trunc");
        fs::write(&path, &text).unwrap();
        assert_eq!(
            load_checkpoint(&path, 42).unwrap().len(),
            2,
            "torn tail dropped"
        );
        // Appending after the crash terminates the torn fragment on its
        // own (garbage) line; the new entry stays intact.
        append_checkpoint(&path, 42, "{\"key\":\"d\"}").unwrap();
        let entries = load_checkpoint(&path, 42).unwrap();
        assert!(entries.contains(&"{\"key\":\"d\"}".to_string()));
        assert!(entries.contains(&"{\"key\":\"a\"}".to_string()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_mismatch_discards_checkpoint() {
        let dir = tmp_dir("hash");
        let path = dir.join("checkpoint_t.json");
        append_checkpoint(&path, 1, "{\"key\":\"a\"}").unwrap();
        assert!(load_checkpoint(&path, 2).is_none(), "stale config rejected");
        // Appending under the new hash restarts the file.
        append_checkpoint(&path, 2, "{\"key\":\"b\"}").unwrap();
        assert_eq!(load_checkpoint(&path, 2).unwrap().len(), 1);
        assert!(load_checkpoint(&path, 1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        assert!(load_checkpoint(Path::new("/no/such/checkpoint.json"), 0).is_none());
    }
}

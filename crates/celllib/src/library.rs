//! The cell library: per-kind timing plus TSV and scan-reuse overheads.

use prebond3d_netlist::GateKind;

use crate::cell::{Capacitance, CellTiming, Resistance, Time};
use crate::wire::WireModel;

/// Electrical parameters of a TSV endpoint.
///
/// TSVs are short, fat vertical wires: large capacitance (a few tens of fF
/// including the landing pad / micro-bump), negligible resistance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvParams {
    /// Capacitance of the TSV + micro-bump seen by the driver.
    pub cap: Capacitance,
    /// Series resistance of the TSV barrel.
    pub res: Resistance,
}

impl TsvParams {
    /// Representative via-first 45 nm TSV: 35 fF, 50 mΩ.
    pub fn default_45nm() -> Self {
        TsvParams {
            cap: Capacitance(35.0),
            res: Resistance(0.00005),
        }
    }
}

/// Hardware overhead of reusing a scan flip-flop as a TSV wrapper cell
/// (Fig. 3 of the paper).
///
/// * Inbound reuse adds a 2:1 mux in front of the flip-flop's D pin
///   (Fig. 3a): one mux delay on the functional path and one mux input-cap
///   of extra load on the functional net.
/// * Outbound reuse adds an XOR tap plus mux (Fig. 3b): the TSV driver's
///   net gains the XOR input capacitance, and the flip-flop D path gains a
///   mux + XOR delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseOverhead {
    /// Delay added in series with the reused flip-flop's D input.
    pub mux_delay: Time,
    /// Extra capacitive load the mux presents to the functional driver.
    pub mux_input_cap: Capacitance,
    /// Delay of the observation XOR for outbound reuse.
    pub xor_delay: Time,
    /// Extra load the XOR tap presents to the outbound TSV's driving net.
    pub xor_input_cap: Capacitance,
}

impl ReuseOverhead {
    /// Values consistent with [`Library::nangate45_like`].
    pub fn default_45nm() -> Self {
        ReuseOverhead {
            mux_delay: Time(32.0),
            mux_input_cap: Capacitance(1.8),
            xor_delay: Time(30.0),
            xor_input_cap: Capacitance(2.1),
        }
    }
}

/// A complete synthetic standard-cell library.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    cells: Vec<CellTiming>, // indexed by GateKind discriminant order
    wire: WireModel,
    tsv: TsvParams,
    reuse: ReuseOverhead,
    /// Flip-flop clock-to-Q delay.
    pub clk_to_q: Time,
    /// Flip-flop setup time.
    pub setup: Time,
}

/// `GateKind::ALL` lists the kinds in declaration order, so the enum
/// discriminant *is* the slot — O(1) where a `position` scan over ALL
/// would put an 18-element linear search inside every STA arrival/required
/// update and every what-if query. `kind_order_matches_discriminants`
/// below pins the invariant.
#[inline]
fn kind_slot(kind: GateKind) -> usize {
    kind as usize
}

impl Library {
    /// A self-consistent 45 nm-class library (NanGate-like magnitudes).
    pub fn nangate45_like() -> Self {
        // Chaos site: stands in for a corrupt Liberty file on load.
        prebond3d_resilience::chaos::maybe_panic("liberty.load");
        let mut cells = vec![
            CellTiming {
                intrinsic: Time(0.0),
                drive_resistance: Resistance(0.0),
                input_cap: Capacitance(0.0),
                max_load: Capacitance(f64::INFINITY),
            };
            GateKind::ALL.len()
        ];
        let mut set = |kind: GateKind, intr: f64, rd: f64, cin: f64, cmax: f64| {
            cells[kind_slot(kind)] = CellTiming {
                intrinsic: Time(intr),
                drive_resistance: Resistance(rd),
                input_cap: Capacitance(cin),
                max_load: Capacitance(cmax),
            };
        };
        // kind, intrinsic ps, drive kΩ, input cap fF, max load fF
        set(GateKind::Input, 0.0, 0.4, 0.0, 120.0); // pad driver
        set(GateKind::Output, 0.0, 0.0, 1.5, f64::INFINITY);
        set(GateKind::Const0, 0.0, 0.2, 0.0, 200.0);
        set(GateKind::Const1, 0.0, 0.2, 0.0, 200.0);
        set(GateKind::Buf, 18.0, 0.9, 1.2, 70.0);
        set(GateKind::Not, 10.0, 1.0, 1.4, 60.0);
        set(GateKind::And, 26.0, 1.1, 1.6, 60.0);
        set(GateKind::Or, 28.0, 1.2, 1.6, 60.0);
        set(GateKind::Nand, 14.0, 1.3, 1.7, 60.0);
        set(GateKind::Nor, 16.0, 1.5, 1.7, 60.0);
        set(GateKind::Xor, 34.0, 1.4, 2.1, 55.0);
        set(GateKind::Xnor, 36.0, 1.4, 2.1, 55.0);
        set(GateKind::Mux2, 32.0, 1.3, 1.8, 55.0);
        set(GateKind::Dff, 84.0, 1.1, 1.9, 65.0); // clk→Q handled separately
        set(GateKind::ScanDff, 90.0, 1.1, 2.0, 65.0);
        set(GateKind::TsvIn, 0.0, 0.3, 0.0, 150.0); // bonded driver proxy
        set(GateKind::TsvOut, 0.0, 0.0, 35.0, f64::INFINITY); // the TSV load
        set(GateKind::Wrapper, 90.0, 1.1, 2.0, 65.0); // a gated scan cell

        Library {
            name: "synthetic45".to_string(),
            cells,
            wire: WireModel::m45(),
            tsv: TsvParams::default_45nm(),
            reuse: ReuseOverhead::default_45nm(),
            clk_to_q: Time(84.0),
            setup: Time(48.0),
        }
    }

    /// Assemble a library from explicit parts; cell timings start at the
    /// defaults of [`Library::nangate45_like`] and can be overridden with
    /// [`Library::set_timing`]. Used by the liberty-format parser.
    pub fn from_parts(
        name: String,
        wire: WireModel,
        tsv: TsvParams,
        reuse: ReuseOverhead,
        clk_to_q: Time,
        setup: Time,
    ) -> Self {
        let mut lib = Library::nangate45_like();
        lib.name = name;
        lib.wire = wire;
        lib.tsv = tsv;
        lib.reuse = reuse;
        lib.clk_to_q = clk_to_q;
        lib.setup = setup;
        lib
    }

    /// Override the timing parameters of one cell kind.
    pub fn set_timing(&mut self, kind: GateKind, timing: CellTiming) {
        self.cells[kind_slot(kind)] = timing;
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Timing parameters for `kind`.
    pub fn timing(&self, kind: GateKind) -> &CellTiming {
        &self.cells[kind_slot(kind)]
    }

    /// The interconnect model.
    pub fn wire(&self) -> &WireModel {
        &self.wire
    }

    /// TSV electrical parameters.
    pub fn tsv(&self) -> &TsvParams {
        &self.tsv
    }

    /// Scan-reuse overhead figures (Fig. 3 hardware).
    pub fn reuse(&self) -> &ReuseOverhead {
        &self.reuse
    }

    /// Default capacitance threshold for the paper's `cap_th`: the scan
    /// flip-flop's max output load (the shared wrapper cell must still
    /// drive everything attached to it).
    pub fn default_cap_th(&self) -> Capacitance {
        self.timing(GateKind::ScanDff).max_load
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::nangate45_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_order_matches_discriminants() {
        // `kind_slot` relies on `ALL` being in declaration order.
        for (i, &kind) in GateKind::ALL.iter().enumerate() {
            assert_eq!(kind as usize, i, "{kind} out of discriminant order");
        }
    }

    #[test]
    fn every_kind_has_parameters() {
        let lib = Library::nangate45_like();
        for kind in GateKind::ALL {
            let t = lib.timing(kind);
            assert!(t.input_cap.0 >= 0.0, "{kind} input cap");
            assert!(t.intrinsic.0 >= 0.0, "{kind} intrinsic");
        }
    }

    #[test]
    fn logic_cells_are_slower_than_inverter() {
        let lib = Library::nangate45_like();
        let inv = lib.timing(GateKind::Not).intrinsic;
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Mux2] {
            assert!(lib.timing(kind).intrinsic > inv, "{kind}");
        }
    }

    #[test]
    fn tsv_load_dominates_gate_caps() {
        let lib = Library::nangate45_like();
        assert!(lib.tsv().cap.0 > 10.0 * lib.timing(GateKind::Nand).input_cap.0);
        assert_eq!(lib.timing(GateKind::TsvOut).input_cap, lib.tsv().cap);
    }

    #[test]
    fn default_cap_th_is_scan_ff_max_load() {
        let lib = Library::nangate45_like();
        assert_eq!(lib.default_cap_th(), lib.timing(GateKind::ScanDff).max_load);
        assert_eq!(Library::default(), lib);
        assert_eq!(lib.name(), "synthetic45");
    }
}

//! Lumped-RC interconnect model.

use crate::cell::{Capacitance, Distance, Resistance, Time};

/// Per-unit-length wire parasitics and the Elmore delay estimate built on
/// them.
///
/// This is the "detailed wire delay information" the paper adds over
/// Agrawal's capacitance-only model: reusing a scan flip-flop far away from
/// a TSV adds a long wire whose delay and capacitance must be charged to
/// the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Wire resistance per micrometre.
    pub res_per_um: Resistance,
    /// Wire capacitance per micrometre.
    pub cap_per_um: Capacitance,
    /// Buffering interval: long wires are assumed to be buffered every
    /// `buffer_interval` µm by the implementation flow, so a *driver* never
    /// sees more than one interval's worth of wire capacitance. Delay
    /// still accumulates over the whole length.
    pub buffer_interval: Distance,
}

impl WireModel {
    /// Typical intermediate-layer 45 nm wire: 3.0 Ω/µm, 0.20 fF/µm,
    /// buffers every 120 µm.
    pub fn m45() -> Self {
        WireModel {
            res_per_um: Resistance(0.003),
            cap_per_um: Capacitance(0.20),
            buffer_interval: Distance(120.0),
        }
    }

    /// Wire capacitance as seen by the driving cell: saturates at one
    /// buffer interval.
    pub fn driver_load(&self, length: Distance) -> Capacitance {
        self.capacitance(Distance(length.0.min(self.buffer_interval.0)))
    }

    /// Total capacitance of a wire of `length`.
    pub fn capacitance(&self, length: Distance) -> Capacitance {
        Capacitance(self.cap_per_um.0 * length.0)
    }

    /// Total resistance of a wire of `length`.
    pub fn resistance(&self, length: Distance) -> Resistance {
        Resistance(self.res_per_um.0 * length.0)
    }

    /// Elmore delay of a wire of `length` terminating in `load`:
    /// `R_w · (C_w / 2 + C_load)`.
    pub fn elmore_delay(&self, length: Distance, load: Capacitance) -> Time {
        let rw = self.resistance(length);
        let cw = self.capacitance(length);
        rw * (Capacitance(cw.0 / 2.0) + load)
    }
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel::m45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_wire_is_free() {
        let w = WireModel::m45();
        assert_eq!(w.elmore_delay(Distance(0.0), Capacitance(10.0)), Time(0.0));
        assert_eq!(w.capacitance(Distance(0.0)), Capacitance(0.0));
    }

    #[test]
    fn delay_grows_superlinearly_with_length() {
        let w = WireModel::m45();
        let load = Capacitance(2.0);
        let d1 = w.elmore_delay(Distance(100.0), load);
        let d2 = w.elmore_delay(Distance(200.0), load);
        assert!(d2.0 > 2.0 * d1.0, "quadratic term dominates: {d1} vs {d2}");
    }

    #[test]
    fn driver_load_saturates() {
        let w = WireModel::m45();
        let short = w.driver_load(Distance(50.0));
        let at_limit = w.driver_load(w.buffer_interval);
        let long = w.driver_load(Distance(5000.0));
        assert!(short < at_limit);
        assert_eq!(at_limit, long, "buffered wires cap the driver load");
        assert!(w.capacitance(Distance(5000.0)) > long);
    }

    #[test]
    fn elmore_formula() {
        let w = WireModel {
            res_per_um: Resistance(0.01),
            cap_per_um: Capacitance(0.1),
            buffer_interval: Distance(1000.0),
        };
        // 100 µm: R = 1 kΩ, C = 10 fF; load 5 fF → 1 * (5 + 5) = 10 ps.
        let d = w.elmore_delay(Distance(100.0), Capacitance(5.0));
        assert!((d.0 - 10.0).abs() < 1e-9);
    }
}

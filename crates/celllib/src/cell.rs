//! Electrical unit newtypes and per-cell timing parameters.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Smaller of two values.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Larger of two values.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Time in picoseconds.
    Time,
    "ps"
);
unit!(
    /// Capacitance in femtofarads.
    Capacitance,
    "fF"
);
unit!(
    /// Resistance in kiloohms.
    Resistance,
    "kΩ"
);
unit!(
    /// Distance in micrometres (Manhattan metric throughout).
    Distance,
    "µm"
);

impl Mul<Capacitance> for Resistance {
    type Output = Time;
    /// `kΩ × fF = ps`: the RC product is directly a delay.
    fn mul(self, rhs: Capacitance) -> Time {
        Time(self.0 * rhs.0)
    }
}

/// Timing/electrical view of one library cell.
///
/// The delay model is the classic linear (lumped) one PrimeTime falls back
/// to without CCS data: `delay = intrinsic + R_drive × C_load`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Fixed delay through the cell with zero load.
    pub intrinsic: Time,
    /// Output drive resistance; slope of delay vs. load.
    pub drive_resistance: Resistance,
    /// Capacitance presented by each input pin.
    pub input_cap: Capacitance,
    /// Maximum load the output may legally drive (`max_capacitance` in a
    /// liberty file); the paper's `cap_th` defaults to this.
    pub max_load: Capacitance,
}

impl CellTiming {
    /// Propagation delay when driving `load`.
    pub fn delay(&self, load: Capacitance) -> Time {
        self.intrinsic + self.drive_resistance * load
    }

    /// `true` if `load` violates the cell's max-capacitance limit.
    pub fn overloaded(&self, load: Capacitance) -> bool {
        load > self.max_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        let t = Resistance(2.0) * Capacitance(3.0);
        assert_eq!(t, Time(6.0));
    }

    #[test]
    fn delay_is_affine_in_load() {
        let cell = CellTiming {
            intrinsic: Time(10.0),
            drive_resistance: Resistance(1.5),
            input_cap: Capacitance(1.0),
            max_load: Capacitance(50.0),
        };
        assert_eq!(cell.delay(Capacitance(0.0)), Time(10.0));
        assert_eq!(cell.delay(Capacitance(10.0)), Time(25.0));
        assert!(!cell.overloaded(Capacitance(50.0)));
        assert!(cell.overloaded(Capacitance(50.1)));
    }

    #[test]
    fn unit_arithmetic() {
        assert_eq!(Time(1.0) + Time(2.0), Time(3.0));
        assert_eq!(Time(5.0) - Time(2.0), Time(3.0));
        assert_eq!(-Time(1.0), Time(-1.0));
        assert_eq!(Time(2.0) * 3.0, Time(6.0));
        assert_eq!(Time(1.0).max(Time(2.0)), Time(2.0));
        assert_eq!(Time(1.0).min(Time(2.0)), Time(1.0));
        let total: Capacitance = [Capacitance(1.0), Capacitance(2.5)].into_iter().sum();
        assert_eq!(total, Capacitance(3.5));
        assert_eq!(Time::ZERO.0, 0.0);
        assert_eq!(format!("{}", Time(1.5)), "1.500 ps");
    }
}

//! A Liberty-flavoured text format for [`Library`].
//!
//! Real flows exchange cell libraries as `.lib` files; this module writes
//! and parses a compact subset (one group per cell, explicit units in the
//! header) so alternative libraries can be versioned next to designs and
//! diffed as text.
//!
//! ```text
//! library (synthetic45) {
//!   time_unit : 1ps; capacitance_unit : 1fF; resistance_unit : 1kohm;
//!   clk_to_q : 84; setup : 48;
//!   wire { res_per_um : 0.003; cap_per_um : 0.2; buffer_interval : 120; }
//!   tsv { cap : 35; res : 0.00005; }
//!   reuse { mux_delay : 32; mux_cap : 1.8; xor_delay : 30; xor_cap : 2.1; }
//!   cell (nand) { intrinsic : 14; drive : 1.3; input_cap : 1.7; max_load : 60; }
//!   ...
//! }
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use prebond3d_netlist::GateKind;

use crate::cell::{Capacitance, CellTiming, Distance, Resistance, Time};
use crate::library::{Library, ReuseOverhead, TsvParams};
use crate::wire::WireModel;

/// Serialize `library` into the Liberty-flavoured text form.
pub fn write(library: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", library.name());
    let _ = writeln!(
        out,
        "  time_unit : 1ps; capacitance_unit : 1fF; resistance_unit : 1kohm;"
    );
    let _ = writeln!(
        out,
        "  clk_to_q : {}; setup : {};",
        library.clk_to_q.0, library.setup.0
    );
    let w = library.wire();
    let _ = writeln!(
        out,
        "  wire {{ res_per_um : {}; cap_per_um : {}; buffer_interval : {}; }}",
        w.res_per_um.0, w.cap_per_um.0, w.buffer_interval.0
    );
    let t = library.tsv();
    let _ = writeln!(out, "  tsv {{ cap : {}; res : {}; }}", t.cap.0, t.res.0);
    let r = library.reuse();
    let _ = writeln!(
        out,
        "  reuse {{ mux_delay : {}; mux_cap : {}; xor_delay : {}; xor_cap : {}; }}",
        r.mux_delay.0, r.mux_input_cap.0, r.xor_delay.0, r.xor_input_cap.0
    );
    for kind in GateKind::ALL {
        let c = library.timing(kind);
        let _ = writeln!(
            out,
            "  cell ({}) {{ intrinsic : {}; drive : {}; input_cap : {}; max_load : {}; }}",
            kind.mnemonic(),
            c.intrinsic.0,
            c.drive_resistance.0,
            c.input_cap.0,
            c.max_load.0
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibertyError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LibertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "liberty parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for LibertyError {}

/// Split a `{ key : value; ... }` body into a map.
fn attrs(body: &str, line: usize) -> Result<HashMap<String, f64>, LibertyError> {
    let mut map = HashMap::new();
    for item in body.split(';') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (k, v) = item.split_once(':').ok_or_else(|| LibertyError {
            line,
            message: format!("expected `key : value`, got `{item}`"),
        })?;
        let value: f64 = v.trim().parse().map_err(|_| LibertyError {
            line,
            message: format!("bad number `{}`", v.trim()),
        })?;
        map.insert(k.trim().to_string(), value);
    }
    Ok(map)
}

fn take(map: &HashMap<String, f64>, key: &str, line: usize) -> Result<f64, LibertyError> {
    map.get(key).copied().ok_or_else(|| LibertyError {
        line,
        message: format!("missing attribute `{key}`"),
    })
}

/// Parse the text form produced by [`write`].
///
/// # Errors
///
/// Returns [`LibertyError`] on malformed syntax or missing attributes.
pub fn parse(text: &str) -> Result<Library, LibertyError> {
    let mut name = String::new();
    let mut clk_to_q = None;
    let mut setup = None;
    let mut wire = None;
    let mut tsv = None;
    let mut reuse = None;
    let mut cells: HashMap<GateKind, CellTiming> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line == "}" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("library") {
            let inner = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.split_once(')'))
                .ok_or_else(|| LibertyError {
                    line: lineno,
                    message: "malformed library header".into(),
                })?;
            name = inner.0.trim().to_string();
            continue;
        }
        if line.starts_with("time_unit") {
            // Unit declarations are fixed in this subset (ps/fF/kΩ);
            // accept and ignore them.
            continue;
        }
        if line.starts_with("clk_to_q") {
            let map = attrs(line, lineno)?;
            if let Some(v) = map.get("clk_to_q") {
                clk_to_q = Some(Time(*v));
            }
            if let Some(v) = map.get("setup") {
                setup = Some(Time(*v));
            }
            continue;
        }
        fn grab_body(l: &str) -> Option<&str> {
            l.split_once('{')
                .and_then(|(_, b)| b.rsplit_once('}'))
                .map(|(b, _)| b)
        }
        if line.starts_with("wire") {
            let body = grab_body(line).ok_or_else(|| LibertyError {
                line: lineno,
                message: "malformed wire group".into(),
            })?;
            let map = attrs(body, lineno)?;
            wire = Some(WireModel {
                res_per_um: Resistance(take(&map, "res_per_um", lineno)?),
                cap_per_um: Capacitance(take(&map, "cap_per_um", lineno)?),
                buffer_interval: Distance(take(&map, "buffer_interval", lineno)?),
            });
            continue;
        }
        if line.starts_with("tsv") {
            let body = grab_body(line).ok_or_else(|| LibertyError {
                line: lineno,
                message: "malformed tsv group".into(),
            })?;
            let map = attrs(body, lineno)?;
            tsv = Some(TsvParams {
                cap: Capacitance(take(&map, "cap", lineno)?),
                res: Resistance(take(&map, "res", lineno)?),
            });
            continue;
        }
        if line.starts_with("reuse") {
            let body = grab_body(line).ok_or_else(|| LibertyError {
                line: lineno,
                message: "malformed reuse group".into(),
            })?;
            let map = attrs(body, lineno)?;
            reuse = Some(ReuseOverhead {
                mux_delay: Time(take(&map, "mux_delay", lineno)?),
                mux_input_cap: Capacitance(take(&map, "mux_cap", lineno)?),
                xor_delay: Time(take(&map, "xor_delay", lineno)?),
                xor_input_cap: Capacitance(take(&map, "xor_cap", lineno)?),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("cell") {
            let (kind_str, after) = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.split_once(')'))
                .ok_or_else(|| LibertyError {
                    line: lineno,
                    message: "malformed cell header".into(),
                })?;
            let kind = GateKind::from_mnemonic(kind_str.trim()).ok_or_else(|| LibertyError {
                line: lineno,
                message: format!("unknown cell kind `{}`", kind_str.trim()),
            })?;
            let body = grab_body(after).ok_or_else(|| LibertyError {
                line: lineno,
                message: "malformed cell group".into(),
            })?;
            let map = attrs(body, lineno)?;
            cells.insert(
                kind,
                CellTiming {
                    intrinsic: Time(take(&map, "intrinsic", lineno)?),
                    drive_resistance: Resistance(take(&map, "drive", lineno)?),
                    input_cap: Capacitance(take(&map, "input_cap", lineno)?),
                    max_load: Capacitance(take(&map, "max_load", lineno)?),
                },
            );
            continue;
        }
        return Err(LibertyError {
            line: lineno,
            message: format!("unrecognized statement `{line}`"),
        });
    }

    let mut library = Library::from_parts(
        name,
        wire.ok_or_else(|| LibertyError {
            line: 0,
            message: "missing wire group".into(),
        })?,
        tsv.ok_or_else(|| LibertyError {
            line: 0,
            message: "missing tsv group".into(),
        })?,
        reuse.ok_or_else(|| LibertyError {
            line: 0,
            message: "missing reuse group".into(),
        })?,
        clk_to_q.ok_or_else(|| LibertyError {
            line: 0,
            message: "missing clk_to_q".into(),
        })?,
        setup.ok_or_else(|| LibertyError {
            line: 0,
            message: "missing setup".into(),
        })?,
    );
    for (kind, timing) in cells {
        library.set_timing(kind, timing);
    }
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_library() {
        let lib = Library::nangate45_like();
        let text = write(&lib);
        let parsed = parse(&text).expect("emitted text parses");
        assert_eq!(parsed, lib);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad = "library (x) {\n  wat : 3;\n}";
        // `wat : 3;` is an unrecognized statement on line 2.
        match parse(bad) {
            Err(e) => assert_eq!(e.line, 2),
            Ok(_) => panic!("must not parse"),
        }
    }

    #[test]
    fn missing_groups_are_reported() {
        let partial = "library (x) {\n  clk_to_q : 84; setup : 48;\n}";
        let err = parse(partial).unwrap_err();
        assert!(err.message.contains("missing"), "{err}");
    }

    #[test]
    fn custom_cells_override_defaults() {
        let mut text = write(&Library::nangate45_like());
        text = text.replace(
            "cell (nand) { intrinsic : 14;",
            "cell (nand) { intrinsic : 99;",
        );
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.timing(GateKind::Nand).intrinsic, Time(99.0));
    }
}

//! # prebond3d-celllib
//!
//! A synthetic 45 nm-class standard-cell library: electrical parameters for
//! every [`prebond3d_netlist::GateKind`], a lumped-RC wire model, and
//! TSV/scan-reuse overhead figures.
//!
//! The paper's flow consumed a commercial 45 nm library through Design
//! Compiler/PrimeTime; this crate substitutes self-consistent parameters in
//! the same ballpark as the open NanGate 45 nm PDK. Only *relative* timing
//! matters to the wrapper-cell-minimization algorithm (its thresholds
//! `cap_th`, `s_th`, `d_th` are expressed against these same numbers), so a
//! self-consistent library preserves the algorithmic behaviour.
//!
//! Units across the whole workspace: **picoseconds** for time,
//! **femtofarads** for capacitance, **kΩ** for resistance and
//! **micrometres** for distance. `1 kΩ × 1 fF = 1 ps`, so delay arithmetic
//! needs no conversion factors.
//!
//! # Example
//!
//! ```
//! use prebond3d_celllib::{Capacitance, Library};
//! use prebond3d_netlist::GateKind;
//!
//! let lib = Library::nangate45_like();
//! let nand = lib.timing(GateKind::Nand);
//! // Gate delay at a 10 fF load:
//! let d = nand.delay(Capacitance(10.0));
//! assert!(d.0 > 0.0);
//! ```

pub mod cell;
pub mod liberty;
pub mod library;
pub mod wire;

pub use cell::{Capacitance, CellTiming, Distance, Resistance, Time};
pub use library::{Library, ReuseOverhead, TsvParams};
pub use wire::WireModel;

//! Seeded pseudo-random numbers with no external dependencies.
//!
//! The repo builds in network-isolated environments, so it cannot pull
//! `rand` from a registry. Everything random in the workspace — synthetic
//! netlist generation, annealing moves, ATPG pattern fill — only ever needs
//! a *seeded, deterministic, decent-quality* stream, which SplitMix64
//! provides in ~10 lines. The API mirrors the `rand` subset the workspace
//! used (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`) so call
//! sites read the same; swapping a registry `rand` back in would only
//! change the concrete streams, never the algorithms under test.
//!
//! Determinism is part of the contract: the same seed yields the same
//! sequence on every platform (pure wrapping integer arithmetic, no
//! platform entropy), which the reproduction relies on for its
//! `flow_is_deterministic`-style tests.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 generator.
///
/// Named `StdRng` after the `rand` type it replaces, so call sites are
/// drop-in. Passes through a full 2^64 period with well-mixed output
/// (Steele et al., "Fast splittable pseudorandom number generators").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

/// `rand`-compat module path: `prebond3d_rng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

impl StdRng {
    /// Seed the generator. Identical seeds yield identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit value (the SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value of a primitive type (`bool`, `u32`, `u64`, `f64`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform value in an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift (Lemire) keeps bias below 2^-64 without loops.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample {
    /// Draw one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`StdRng::gen_range`] can sample.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}

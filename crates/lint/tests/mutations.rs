//! Acceptance sweep for the lint pipeline: a clean die through the real
//! flow produces zero errors at deep depth, and seeded mutations of each
//! artifact trip the matching `P3xxx` code — one mutation per pass, so a
//! regression that silently disables a pass fails here, not in the field.

use prebond3d_celllib::{Library, Time};
use prebond3d_dft::insert_scan;
use prebond3d_lint::diagnostic::{
    COMBINATIONAL_LOOP, DATAFLOW_CONST_NET, DATAFLOW_UNTESTABLE_BOUNDARY, DATAFLOW_X_CONE,
    MISSION_MISMATCH, NEGATIVE_POST_SLACK, REPORT_UNPARSABLE, SCAN_MISSING_CELL, TSV_UNWRAPPED,
    WRAPPER_FANOUT_LEAK,
};
use prebond3d_lint::flow::lint_flow;
use prebond3d_lint::{Depth, LintContext, Linter};
use prebond3d_netlist::itc99::{generate_die, DieSpec};
use prebond3d_netlist::{Gate, GateKind, Netlist};
use prebond3d_place::{place, PlaceConfig};
use prebond3d_rng::StdRng;
use prebond3d_wcm::flow::{FlowConfig, Method};
use prebond3d_wcm::{run_flow, FlowResult};

const SEED: u64 = 0x3D1C;

fn die() -> Netlist {
    generate_die(&DieSpec {
        name: "mut".to_string(),
        gates: 200,
        scan_flip_flops: 16,
        inbound_tsvs: 6,
        outbound_tsvs: 6,
        primary_inputs: 5,
        primary_outputs: 5,
        seed: SEED,
    })
}

fn flow(die: &Netlist) -> (FlowResult, Library, FlowConfig) {
    let placement = place(die, &PlaceConfig::default(), SEED);
    let library = Library::nangate45_like();
    let config = FlowConfig::area_optimized(Method::Ours);
    let result = run_flow(die, &placement, &library, &config).unwrap();
    (result, library, config)
}

fn rebuild(netlist: &Netlist, f: impl FnOnce(&mut Vec<Gate>, &mut StdRng)) -> Netlist {
    let mut gates: Vec<Gate> = netlist.iter().map(|(_, g)| g.clone()).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    f(&mut gates, &mut rng);
    Netlist::from_gates(netlist.name().to_string(), gates).unwrap()
}

/// The unmutated baseline: the full flow lints clean at deep depth.
#[test]
fn clean_flow_has_zero_errors() {
    let n = die();
    let (result, library, config) = flow(&n);
    let report = lint_flow("clean", &n, &result, &library, &config, Depth::Deep);
    assert!(!report.has_errors(), "{}", report.render());
    assert_eq!(report.passes_run.len(), 8, "all default passes must run");
}

/// structure: a raw gate list with a combinational cycle trips P3005.
#[test]
fn mutation_trips_structure_pass() {
    let n = die();
    let mut gates: Vec<Gate> = n.iter().map(|(_, g)| g.clone()).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    // Tie two seeded combinational gates into each other: a genuine
    // two-gate cycle, whatever the rest of the topology looks like.
    let comb: Vec<usize> = gates
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind.is_combinational() && !g.inputs.is_empty())
        .map(|(i, _)| i)
        .collect();
    let a = comb[rng.gen_range(0..comb.len())];
    let b = loop {
        let c = comb[rng.gen_range(0..comb.len())];
        if c != a {
            break c;
        }
    };
    gates[a].inputs[0] = prebond3d_netlist::GateId(b as u32);
    gates[b].inputs[0] = prebond3d_netlist::GateId(a as u32);
    let report = Linter::with_default_passes().run(&LintContext::new("mut").with_gates(&gates));
    assert!(
        !report.with_code(COMBINATIONAL_LOOP).is_empty(),
        "expected P3005, got:\n{}",
        report.render()
    );
}

/// dataflow: tying a seeded AND input to a fresh constant makes its output
/// provably constant and trips P3801.
#[test]
fn mutation_trips_dataflow_pass() {
    let n = die();
    let mutated = rebuild(&n, |gates, rng| {
        let c0 = prebond3d_netlist::GateId(gates.len() as u32);
        gates.push(Gate::new("mut_c0", GateKind::Const0, vec![]));
        let ands: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::And)
            .map(|(i, _)| i)
            .collect();
        assert!(!ands.is_empty(), "die has no AND gates to constify");
        let v = ands[rng.gen_range(0..ands.len())];
        gates[v].inputs[0] = c0;
    });
    let report = Linter::with_default_passes().run(&LintContext::new("mut").with_netlist(&mutated));
    assert!(
        !report.with_code(DATAFLOW_CONST_NET).is_empty(),
        "expected P3801, got:\n{}",
        report.render()
    );
}

/// dataflow: de-scanning a seeded flip-flop roots an X-only cone no
/// wrapper configuration can control and trips P3803.
#[test]
fn mutation_trips_dataflow_x_cone() {
    let n = die();
    let mutated = rebuild(&n, |gates, rng| {
        let scans: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::ScanDff)
            .map(|(i, _)| i)
            .collect();
        let v = scans[rng.gen_range(0..scans.len())];
        gates[v].kind = GateKind::Dff;
    });
    let report = Linter::with_default_passes().run(&LintContext::new("mut").with_netlist(&mutated));
    assert!(
        !report.with_code(DATAFLOW_X_CONE).is_empty(),
        "expected P3803, got:\n{}",
        report.render()
    );
}

/// dataflow: an outbound TSV rewired to a constant driver is a statically
/// untestable boundary — P3805, an Error (the serve admission gate).
#[test]
fn mutation_trips_dataflow_boundary_gate() {
    let n = die();
    let mutated = rebuild(&n, |gates, rng| {
        let c1 = prebond3d_netlist::GateId(gates.len() as u32);
        gates.push(Gate::new("mut_c1", GateKind::Const1, vec![]));
        let tsvs: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::TsvOut)
            .map(|(i, _)| i)
            .collect();
        let v = tsvs[rng.gen_range(0..tsvs.len())];
        gates[v].inputs[0] = c1;
    });
    let report = Linter::with_default_passes().run(&LintContext::new("mut").with_netlist(&mutated));
    assert!(
        !report.with_code(DATAFLOW_UNTESTABLE_BOUNDARY).is_empty(),
        "expected P3805, got:\n{}",
        report.render()
    );
    assert!(report.has_errors(), "P3805 must be Error severity");
}

/// wrapper-mux: a consumer reading the raw TSV around its mux trips P3101.
#[test]
fn mutation_trips_wrapper_pass() {
    let n = die();
    let (result, ..) = flow(&n);
    let testable = &result.testable;
    let mux = testable
        .netlist
        .iter()
        .find(|(_, g)| g.name.starts_with("wrapmux__"))
        .map(|(id, _)| id)
        .expect("flow wraps at least one inbound TSV");
    let tsv = testable.netlist.gate(mux).inputs[0];
    let mutated = rebuild(&testable.netlist, |gates, rng| {
        // A seeded combinational gate other than the mux now taps the raw
        // TSV directly — exactly the leak the wrapper isolates against.
        let victims: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|&(i, g)| g.kind.is_combinational() && !g.inputs.is_empty() && i != mux.index())
            .map(|(i, _)| i)
            .collect();
        let v = victims[rng.gen_range(0..victims.len())];
        gates[v].inputs[0] = tsv;
    });
    let te = mutated.find("test_en").unwrap();
    let report = Linter::with_default_passes().run(
        &LintContext::new("mut")
            .with_netlist(&mutated)
            .with_test_en(te),
    );
    assert!(
        !report.with_code(WRAPPER_FANOUT_LEAK).is_empty(),
        "expected P3101, got:\n{}",
        report.render()
    );
}

/// scan-chain: dropping a seeded cell from the chain trips P3201.
#[test]
fn mutation_trips_scan_pass() {
    let n = die();
    let (scanned, mut chain) = insert_scan(&n).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    chain.order.remove(rng.gen_range(0..chain.order.len()));
    let report = Linter::with_default_passes().run(
        &LintContext::new("mut")
            .with_netlist(&scanned)
            .with_chain(&chain),
    );
    assert!(
        !report.with_code(SCAN_MISSING_CELL).is_empty(),
        "expected P3201, got:\n{}",
        report.render()
    );
}

/// tsv-coverage: dropping a seeded plan assignment trips P3301.
#[test]
fn mutation_trips_coverage_pass() {
    let n = die();
    let (result, ..) = flow(&n);
    let mut plan = result.plan.clone();
    let mut rng = StdRng::seed_from_u64(SEED);
    // Keep removing until some TSV loses its wrap (an assignment can be
    // control-only, covering no TSV at all).
    while !plan.assignments.is_empty() {
        let victim = plan
            .assignments
            .remove(rng.gen_range(0..plan.assignments.len()));
        if !victim.inbound.is_empty() || !victim.outbound.is_empty() {
            break;
        }
    }
    let report = Linter::with_default_passes()
        .run(&LintContext::new("mut").with_original(&n).with_plan(&plan));
    assert!(
        !report.with_code(TSV_UNWRAPPED).is_empty(),
        "expected P3301, got:\n{}",
        report.render()
    );
}

/// timing-model: negative post-insertion slack trips P3404.
#[test]
fn mutation_trips_timing_pass() {
    let report = Linter::with_default_passes()
        .run(&LintContext::new("mut").with_post_sta(Time(-3.25), Time(1000.0)));
    assert!(
        !report.with_code(NEGATIVE_POST_SLACK).is_empty(),
        "expected P3404, got:\n{}",
        report.render()
    );
}

/// mission-equiv: corrupting mission logic in the testable die trips P3501.
#[test]
fn mutation_trips_mission_pass() {
    let n = die();
    let (result, ..) = flow(&n);
    let testable = &result.testable;
    let mut rng = StdRng::seed_from_u64(SEED);
    // Invert a seeded 2-input gate's function; try candidates until the
    // co-simulation actually observes the flip at a sink (a mutation can
    // land in logic masked off by the sampled patterns).
    let candidates: Vec<usize> = testable
        .netlist
        .iter()
        .filter(|(_, g)| matches!(g.kind, GateKind::And | GateKind::Or))
        .map(|(id, _)| id.index())
        .collect();
    assert!(!candidates.is_empty(), "die has no and/or gates to corrupt");
    let mut tripped = false;
    for _ in 0..candidates.len().min(16) {
        let victim = candidates[rng.gen_range(0..candidates.len())];
        let mutated = rebuild(&testable.netlist, |gates, _| {
            gates[victim].kind = match gates[victim].kind {
                GateKind::And => GateKind::Nand,
                _ => GateKind::Nor,
            };
        });
        let mut corrupted = result.testable.clone();
        corrupted.netlist = mutated;
        let report = Linter::with_default_passes().run(
            &LintContext::new("mut")
                .with_original(&n)
                .with_testable(&corrupted)
                .with_mission(4, SEED)
                .with_depth(Depth::Deep),
        );
        if !report.with_code(MISSION_MISMATCH).is_empty() {
            tripped = true;
            break;
        }
    }
    assert!(
        tripped,
        "no seeded gate-kind flip produced a P3501 mismatch"
    );
}

/// report-schema: a truncated run report trips P3601.
#[test]
fn mutation_trips_report_pass() {
    let text = r#"{"experiment":"mut","elapsed_ms":1,"sections":["#;
    let report = Linter::with_default_passes()
        .run(&LintContext::new("mut").with_report("run_mut.json", text));
    assert!(
        !report.with_code(REPORT_UNPARSABLE).is_empty(),
        "expected P3601, got:\n{}",
        report.render()
    );
}

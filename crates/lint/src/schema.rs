//! JSON → type-schema reduction for the report-schema pass.
//!
//! Mirrors the reduction in `tests/report_schema.rs`: a document collapses
//! to one sorted `path: type` line per distinct field, with the
//! dynamically-keyed `counters`/`gauges` objects collapsing to a single
//! `map<number>` entry. Unlike the test helper this version never panics:
//! a non-numeric counter value surfaces as an extra schema line, which the
//! pass then reports as drift.

use std::collections::BTreeSet;

use prebond3d_obs::json::Value;

/// Reduce `doc` to its sorted set of `path: type` schema lines.
pub fn schema_lines(doc: &Value) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk("$", doc, &mut out);
    out
}

fn walk(path: &str, v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Num(_) => {
            out.insert(format!("{path}: number"));
        }
        Value::Str(_) => {
            out.insert(format!("{path}: string"));
        }
        Value::Arr(items) => {
            out.insert(format!("{path}: array"));
            for item in items {
                walk(&format!("{path}[]"), item, out);
            }
        }
        Value::Obj(map) => {
            if path.ends_with(".counters") || path.ends_with(".gauges") {
                out.insert(format!("{path}: map<number>"));
                // A non-numeric metric value is schema drift; emit its line
                // so the comparison against the golden set flags it.
                for (k, v) in map {
                    if !matches!(v, Value::Num(_)) {
                        walk(&format!("{path}.{k}"), v, out);
                    }
                }
                return;
            }
            // Histogram maps are keyed by dynamic metric/phase names; a
            // value that is not a full histogram summary is drift.
            if path.ends_with(".hists") {
                out.insert(format!("{path}: map<hist>"));
                for (k, v) in map {
                    if !is_hist_summary(v) {
                        walk(&format!("{path}.{k}"), v, out);
                    }
                }
                return;
            }
            out.insert(format!("{path}: object"));
            for (k, v) in map {
                walk(&format!("{path}.{k}"), v, out);
            }
        }
    }
}

/// Is `v` a histogram summary object (`count`/`sum`/`max`/`p50`/`p95`/
/// `p99`, all numeric)?
fn is_hist_summary(v: &Value) -> bool {
    ["count", "sum", "max", "p50", "p95", "p99"]
        .iter()
        .all(|field| matches!(v.get(field), Some(Value::Num(_))))
}

/// Parse a golden schema file (one `path: type` line per row) into a set.
pub fn parse_golden(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Schema lines present in `actual` but not sanctioned by `golden`.
///
/// Validation is closed-world on *fields*: every field the document
/// carries must appear in the golden schema with the same type. Fields the
/// golden schema names but the document omits are tolerated (reports only
/// emit sections for work that actually ran).
pub fn drift<'a>(actual: &'a BTreeSet<String>, golden: &BTreeSet<String>) -> Vec<&'a String> {
    actual
        .iter()
        .filter(|line| !golden.contains(*line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_obs::json::parse;

    #[test]
    fn reduction_matches_expected_lines() {
        let doc = parse(r#"{"a":1,"b":[{"c":"x"},{"c":"y"}],"counters":{"k":2}}"#).unwrap();
        let lines = schema_lines(&doc);
        let expect: BTreeSet<String> = [
            "$: object",
            "$.a: number",
            "$.b: array",
            "$.b[]: object",
            "$.b[].c: string",
            "$.counters: map<number>",
        ]
        .into_iter()
        .map(str::to_string)
        .collect();
        assert_eq!(lines, expect);
    }

    #[test]
    fn hist_maps_collapse_and_malformed_entries_surface() {
        let doc = parse(
            r#"{"hists":{"flow":{"count":1,"sum":2,"max":2,"p50":2,"p95":2,"p99":2},
                         "bad":{"count":1}}}"#,
        )
        .unwrap();
        let lines = schema_lines(&doc);
        assert!(lines.contains("$.hists: map<hist>"));
        // The well-formed entry stays collapsed...
        assert!(!lines.iter().any(|l| l.starts_with("$.hists.flow")));
        // ...the malformed one surfaces as drift lines.
        assert!(lines.contains("$.hists.bad: object"));
    }

    #[test]
    fn non_numeric_counter_shows_up_as_extra_line() {
        let doc = parse(r#"{"counters":{"bad":"oops"}}"#).unwrap();
        let lines = schema_lines(&doc);
        assert!(lines.contains("$.counters.bad: string"));
    }

    #[test]
    fn drift_is_one_sided() {
        let golden = parse_golden("$: object\n$.a: number\n$.b: string\n");
        let actual: BTreeSet<String> = ["$: object", "$.a: string"]
            .into_iter()
            .map(str::to_string)
            .collect();
        let d = drift(&actual, &golden);
        assert_eq!(d, vec!["$.a: string"]);
        // Missing `$.b` is tolerated.
        let subset: BTreeSet<String> = ["$: object"].into_iter().map(str::to_string).collect();
        assert!(drift(&subset, &golden).is_empty());
    }
}

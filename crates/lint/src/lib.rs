//! # prebond3d-lint
//!
//! Static-analysis pass framework for the `prebond3d` flow: design-rule
//! checks over netlists, wrapper plans, scan chains, timing models and
//! machine-readable run reports, reported as [`Diagnostic`]s with stable
//! `P3xxx` codes.
//!
//! The paper's value proposition is that wrapper-cell reduction stays
//! *safe* — zero timing violations (Table III) and bounded testability
//! loss (Tables IV/V). This crate makes those contracts, plus the
//! structural invariants underneath them, explicitly checkable at every
//! stage of the Fig. 6 flow:
//!
//! | pass            | codes        | checks                                      |
//! |-----------------|--------------|---------------------------------------------|
//! | `structure`     | P3001–P3007  | arity, names, wiring, loops, dead logic      |
//! | `dataflow`      | P3801–P3806  | fixpoint constants, X-cones, static testability |
//! | `wrapper-mux`   | P3101–P3103  | inserted wrapper-mux transparency            |
//! | `scan-chain`    | P3201–P3203  | chain connectivity and single-pass ordering  |
//! | `tsv-coverage`  | P3301–P3305  | every pre-bond crossing wrapped or justified |
//! | `timing-model`  | P3401–P3404  | wire-model monotonicity, thresholds, slack   |
//! | `mission-equiv` | P3501        | mission-mode co-simulation equivalence       |
//! | `report-schema` | P3601–P3602  | run/BENCH report JSON schema                 |
//!
//! # Example
//!
//! ```
//! use prebond3d_lint::{LintContext, Linter};
//! use prebond3d_netlist::itc99;
//!
//! let die = itc99::generate_flat("demo", 200, 16, 6, 6, 5);
//! let report = Linter::with_default_passes()
//!     .run(&LintContext::new("demo").with_netlist(&die));
//! assert!(!report.has_errors(), "{}", report.render());
//! ```
//!
//! Severity policy: `Error` findings violate a paper contract and fail
//! lint-gated runs; `Warn` findings are suspicious but tolerated; `Info`
//! findings attach rationale without judging. Codes are allow-listable per
//! [`Linter`] run — e.g. the bench harness allows `P3404` for the Agrawal
//! and Li baselines in the tight scenario, whose timing violations are the
//! paper's intended Table III result.

pub mod context;
pub mod diagnostic;
pub mod flow;
pub mod passes;
pub mod sarif;
pub mod schema;

use std::collections::BTreeSet;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;

pub use context::{Depth, LintContext};
pub use diagnostic::{Code, Diagnostic, Location, Severity, REGISTRY};

/// One static-analysis pass.
pub trait Pass {
    /// Stable pass name (kebab-case; used in reports).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;
    /// Codes this pass may emit.
    fn codes(&self) -> &'static [Code];
    /// Inspect `ctx` and append findings to `out`. A pass whose inputs are
    /// absent from the context emits nothing.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// A configured pass pipeline with per-run allow-listing.
pub struct Linter {
    passes: Vec<Box<dyn Pass>>,
    allow: BTreeSet<u16>,
    allow_ranges: Vec<(u16, u16)>,
}

impl Linter {
    /// A linter with no passes (register your own).
    pub fn new() -> Self {
        Linter {
            passes: Vec::new(),
            allow: BTreeSet::new(),
            allow_ranges: Vec::new(),
        }
    }

    /// A linter with the full default pipeline.
    pub fn with_default_passes() -> Self {
        let mut l = Linter::new();
        l.register(Box::new(passes::structure::StructurePass));
        l.register(Box::new(passes::dataflow::DataflowPass));
        l.register(Box::new(passes::wrapper::WrapperMuxPass));
        l.register(Box::new(passes::scan::ScanChainPass));
        l.register(Box::new(passes::coverage::TsvCoveragePass));
        l.register(Box::new(passes::timing::TimingModelPass));
        l.register(Box::new(passes::mission::MissionEquivPass));
        l.register(Box::new(passes::report::ReportSchemaPass));
        l
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Suppress a code for this linter's runs (counted, not reported).
    #[must_use]
    pub fn allow(mut self, code: Code) -> Self {
        self.allow.insert(code.0);
        self
    }

    /// Suppress an entire code category, written with trailing `x`
    /// wildcards: `"P38xx"` allows every dataflow code, `"P330x"` the
    /// whole TSV-coverage block.
    ///
    /// # Panics
    ///
    /// Panics when `pattern` is not `P` followed by four characters —
    /// leading digits then at least one trailing `x` — because a
    /// malformed category is a programming error at the call site, not
    /// an input-data condition.
    #[must_use]
    pub fn allow_category(mut self, pattern: &str) -> Self {
        let body = pattern.strip_prefix('P').unwrap_or(pattern);
        let wild = body
            .chars()
            .rev()
            .take_while(|c| matches!(c, 'x' | 'X'))
            .count();
        let digits = &body[..body.len() - wild];
        assert!(
            body.len() == 4
                && wild >= 1
                && !digits.is_empty()
                && digits.bytes().all(|b| b.is_ascii_digit()),
            "malformed code category `{pattern}` (want e.g. `P38xx`)"
        );
        let span = 10u16.pow(wild as u32);
        let base: u16 = digits.parse::<u16>().unwrap() * span;
        self.allow_ranges.push((base, base + (span - 1)));
        self
    }

    /// The registered passes.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Run every pass over `ctx` and collect the findings.
    pub fn run(&self, ctx: &LintContext<'_>) -> LintReport {
        let _span = obs::span("lint");
        let mut all = Vec::new();
        let mut passes_run = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            pass.run(ctx, &mut all);
            passes_run.push(pass.name());
        }
        let allowed = |code: u16| {
            self.allow.contains(&code)
                || self
                    .allow_ranges
                    .iter()
                    .any(|&(lo, hi)| (lo..=hi).contains(&code))
        };
        let (kept, suppressed): (Vec<_>, Vec<_>) =
            all.into_iter().partition(|d| !allowed(d.code.0));
        let mut diagnostics = kept;
        // Most severe first, then by code and location, for stable output.
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.location.artifact.cmp(&b.location.artifact))
                .then(a.location.item.cmp(&b.location.item))
        });
        obs::count("lint.diagnostics", diagnostics.len() as u64);
        LintReport {
            artifact: ctx.artifact.clone(),
            diagnostics,
            suppressed: suppressed.len(),
            passes_run,
        }
    }
}

impl Default for Linter {
    fn default() -> Self {
        Linter::with_default_passes()
    }
}

/// The outcome of one [`Linter`] run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The context's artifact label.
    pub artifact: String,
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings dropped by the allow-list.
    pub suppressed: usize,
    /// Names of the passes that ran.
    pub passes_run: Vec<&'static str>,
}

impl LintReport {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when any Error-severity finding survived the allow-list.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Findings carrying `code`.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Merge another report's findings into this one (multi-die runs).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.suppressed += other.suppressed;
    }

    /// Human-readable rendering, one line per finding plus a tally.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info, {} suppressed",
            self.artifact,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            self.suppressed,
        );
        out
    }

    /// Serialize for `results/lint_<exp>.json`.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("artifact", self.artifact.as_str().into()),
            ("errors", self.count(Severity::Error).into()),
            ("warnings", self.count(Severity::Warn).into()),
            ("infos", self.count(Severity::Info).into()),
            ("suppressed", self.suppressed.into()),
            (
                "passes",
                Value::Arr(self.passes_run.iter().map(|p| Value::from(*p)).collect()),
            ),
            (
                "diagnostics",
                Value::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_covers_the_whole_registry() {
        let linter = Linter::with_default_passes();
        let mut covered = BTreeSet::new();
        for pass in linter.passes() {
            for &code in pass.codes() {
                assert!(covered.insert(code.0), "{code} claimed by two passes");
                assert!(
                    diagnostic::registry_row(code).is_some(),
                    "{code} not in the registry"
                );
            }
        }
        for &(code, ..) in REGISTRY {
            assert!(covered.contains(&code.0), "{code} not claimed by any pass");
        }
    }

    #[test]
    fn empty_context_is_clean() {
        let report = Linter::with_default_passes().run(&LintContext::new("empty"));
        assert!(report.diagnostics.is_empty());
        assert!(!report.has_errors());
        assert_eq!(report.passes_run.len(), 8);
    }

    #[test]
    fn allow_list_suppresses_and_counts() {
        let mut linter = Linter::new();
        struct Emit;
        impl Pass for Emit {
            fn name(&self) -> &'static str {
                "emit"
            }
            fn description(&self) -> &'static str {
                "test pass"
            }
            fn codes(&self) -> &'static [Code] {
                &[diagnostic::TSV_UNWRAPPED]
            }
            fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::new(
                    diagnostic::TSV_UNWRAPPED,
                    Location::artifact(&ctx.artifact),
                    "synthetic",
                ));
            }
        }
        linter.register(Box::new(Emit));
        let strict = linter.run(&LintContext::new("x"));
        assert!(strict.has_errors());

        let mut linter = Linter::new();
        linter.register(Box::new(Emit));
        let relaxed = linter
            .allow(diagnostic::TSV_UNWRAPPED)
            .run(&LintContext::new("x"));
        assert!(!relaxed.has_errors());
        assert_eq!(relaxed.suppressed, 1);
    }

    #[test]
    fn category_allow_list_suppresses_the_whole_band() {
        struct Emit;
        impl Pass for Emit {
            fn name(&self) -> &'static str {
                "emit"
            }
            fn description(&self) -> &'static str {
                "test pass"
            }
            fn codes(&self) -> &'static [Code] {
                &[
                    diagnostic::TSV_UNWRAPPED,
                    diagnostic::DATAFLOW_UNTESTABLE_BOUNDARY,
                ]
            }
            fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
                for code in self.codes() {
                    out.push(Diagnostic::new(
                        *code,
                        Location::artifact(&ctx.artifact),
                        "synthetic",
                    ));
                }
            }
        }
        let mut linter = Linter::new();
        linter.register(Box::new(Emit));
        // P33xx suppresses the coverage finding but not the dataflow one.
        let report = linter.allow_category("P33xx").run(&LintContext::new("x"));
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(
            report.diagnostics[0].code,
            diagnostic::DATAFLOW_UNTESTABLE_BOUNDARY
        );
        // P380x catches the dataflow band too.
        let mut linter = Linter::new();
        linter.register(Box::new(Emit));
        let report = linter
            .allow_category("P33xx")
            .allow_category("P380x")
            .run(&LintContext::new("x"));
        assert_eq!(report.suppressed, 2);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    #[should_panic(expected = "malformed code category")]
    fn malformed_category_panics() {
        let _ = Linter::new().allow_category("P3x8x");
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = LintReport {
            artifact: "die".into(),
            diagnostics: vec![Diagnostic::new(
                diagnostic::SCAN_MISSING_CELL,
                Location::item("die", "q3"),
                "missing",
            )],
            suppressed: 2,
            passes_run: vec!["scan-chain"],
        };
        let text = report.render();
        assert!(text.contains("P3201"));
        assert!(text.contains("1 error(s)"));
        let json = report.to_json();
        assert_eq!(json.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("suppressed").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("diagnostics").unwrap().as_arr().unwrap().len(), 1);
    }
}

//! Diagnostics: stable codes, severities and locations.
//!
//! Every finding a lint pass can emit is registered here with a **stable**
//! `P3xxx` code. Codes are part of the machine-readable contract
//! (`results/lint_<exp>.json`, allow-lists, CI greps): once published a
//! code's meaning never changes and retired codes are never recycled.
//!
//! Code blocks by pass family:
//!
//! | range  | pass            | subject                                   |
//! |--------|-----------------|-------------------------------------------|
//! | P300x  | `structure`     | netlist DAG invariants beyond the builder |
//! | P310x  | `wrapper-mux`   | inserted wrapper-mux wiring               |
//! | P320x  | `scan-chain`    | scan-chain connectivity/ordering          |
//! | P330x  | `tsv-coverage`  | pre-bond TSV boundary coverage            |
//! | P340x  | `timing-model`  | timing-model/threshold sanity, slack      |
//! | P350x  | `mission-equiv` | mission-mode co-simulation                |
//! | P360x  | `report-schema` | run/BENCH report JSON schema              |
//! | P370x  | `report-schema` | serving report (`BENCH_serve`) consistency |
//! | P380x  | `dataflow`      | fixpoint constant/X propagation, static testability |

use std::fmt;

use prebond3d_obs::json::Value;

/// Severity of a diagnostic.
///
/// `Error` findings violate a paper contract (Table III's zero violations,
/// full TSV coverage, transparent insertion) and fail lint-gated runs;
/// `Warn` findings are suspicious but not contract-breaking; `Info`
/// findings attach rationale (e.g. why a cone-overlapping share is
/// admissible) without judging it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Context a reviewer may want; never fails a run.
    Info,
    /// Suspicious structure worth a look; never fails a run.
    Warn,
    /// A violated invariant; fails lint-gated runs.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stable diagnostic code (`P3xxx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

// --- structure (P300x) --------------------------------------------------
/// Gate arity does not match its kind.
pub const ARITY_MISMATCH: Code = Code(3001);
/// Two gates share one instance name.
pub const DUPLICATE_NAME: Code = Code(3002);
/// A gate input references a non-existent gate id.
pub const DANGLING_INPUT: Code = Code(3003);
/// A gate input references a non-driving kind (output/TSV-out marker).
pub const NON_DRIVING_INPUT: Code = Code(3004);
/// The combinational subgraph contains a cycle.
pub const COMBINATIONAL_LOOP: Code = Code(3005);
/// Combinational logic that reaches no sink (unobservable).
pub const DEAD_LOGIC: Code = Code(3006);
/// A source (PI, inbound TSV) that drives nothing.
pub const UNUSED_SOURCE: Code = Code(3007);

// --- wrapper-mux (P310x) ------------------------------------------------
/// A wrapped inbound TSV still feeds functional logic directly.
pub const WRAPPER_FANOUT_LEAK: Code = Code(3101);
/// Wrapper-mux wiring cannot be made transparent (wrong select/data pins).
pub const WRAPPER_NON_TRANSPARENT: Code = Code(3102);
/// A wrapper mux drives nothing: the wrap has no effect.
pub const WRAPPER_DANGLING_MUX: Code = Code(3103);

// --- scan-chain (P320x) -------------------------------------------------
/// A scan-accessible cell is missing from the chain.
pub const SCAN_MISSING_CELL: Code = Code(3201);
/// A cell appears more than once in the chain.
pub const SCAN_DUPLICATE_CELL: Code = Code(3202);
/// A chain entry is not a scan-accessible cell.
pub const SCAN_NOT_A_CELL: Code = Code(3203);

// --- tsv-coverage (P330x) -----------------------------------------------
/// A pre-bond TSV crossing no wrapper cell serves.
pub const TSV_UNWRAPPED: Code = Code(3301);
/// A TSV wrapped by more than one assignment.
pub const TSV_DOUBLE_WRAPPED: Code = Code(3302);
/// An assignment references wrong-kind ids or reuses a flip-flop twice.
pub const TSV_INVALID_ASSIGNMENT: Code = Code(3303);
/// A shared scan-FF wrap with overlapping cones, with its justification.
pub const TSV_SHARED_OVERLAP: Code = Code(3304);
/// Overlapping-cone sharing under a policy that forbids it.
pub const TSV_OVERLAP_FORBIDDEN: Code = Code(3305);

// --- timing-model (P340x) -----------------------------------------------
/// Wire delay is not monotone in distance.
pub const WIRE_DELAY_NON_MONOTONE: Code = Code(3401);
/// Driver-visible wire load is not monotone in distance.
pub const WIRE_LOAD_NON_MONOTONE: Code = Code(3402);
/// Thresholds (`d_th`/`s_th`/`cap_th`/`cov_th`/`p_th`) are not sane.
pub const THRESHOLDS_INSANE: Code = Code(3403);
/// Negative worst slack after DFT insertion.
pub const NEGATIVE_POST_SLACK: Code = Code(3404);

// --- mission-equiv (P350x) ----------------------------------------------
/// Mission-mode co-simulation mismatch at a functional sink.
pub const MISSION_MISMATCH: Code = Code(3501);

// --- report-schema (P360x) ----------------------------------------------
/// A run/BENCH report file is not parseable JSON.
pub const REPORT_UNPARSABLE: Code = Code(3601);
/// A run/BENCH report drifted from its golden schema.
pub const REPORT_SCHEMA_DRIFT: Code = Code(3602);
/// A run/BENCH report omits the expected telemetry blocks (hists/mem).
pub const REPORT_MISSING_TELEMETRY: Code = Code(3603);
/// A BENCH report's work rows omit the wide-lane/retime counters.
pub const REPORT_MISSING_WORK_COUNTERS: Code = Code(3605);

// --- report-schema, serving reports (P370x) ------------------------------
/// A serving report's job accounting does not balance
/// (`jobs.submitted != jobs.done + jobs.failed`).
pub const SERVE_JOBS_UNACCOUNTED: Code = Code(3701);
/// A serving report recorded zero warm-cache hits — the run never
/// exercised the cross-request cache it exists to measure.
pub const SERVE_CACHE_COLD: Code = Code(3702);
/// A serving report's journal accounting leaves jobs unaccounted
/// (`recovery.journal_pending > 0` after the run drained).
pub const SERVE_JOURNAL_UNACCOUNTED_JOB: Code = Code(3703);
/// A serving report omits the recovery telemetry block — the durability
/// drills (crash recovery, dedup) never ran or were dropped.
pub const SERVE_REPORT_MISSING_RECOVERY_TELEMETRY: Code = Code(3704);

// --- dataflow (P380x) -----------------------------------------------------
/// A combinational net the value-set fixpoint proves constant.
pub const DATAFLOW_CONST_NET: Code = Code(3801);
/// A gate whose output cannot reach any capture point even fully wrapped.
pub const DATAFLOW_DEAD_GATE: Code = Code(3802);
/// An unscanned state element rooting an X-only cone no wrapper recovers.
pub const DATAFLOW_X_CONE: Code = Code(3803);
/// Summary: stuck-at faults provably untestable pre-bond (Deep only).
pub const DATAFLOW_UNTESTABLE_FAULTS: Code = Code(3804);
/// A TSV boundary net statically untestable however the die is wrapped.
pub const DATAFLOW_UNTESTABLE_BOUNDARY: Code = Code(3805);
/// Summary: nets with saturated SCOAP detect cost pre-bond (Deep only).
pub const DATAFLOW_HARD_TO_TEST: Code = Code(3806);

/// One registry row: code, short name, default severity, description.
pub type RegistryRow = (Code, &'static str, Severity, &'static str);

/// The full, stable code registry. Ordered by code; append-only.
pub const REGISTRY: &[RegistryRow] = &[
    (
        ARITY_MISMATCH,
        "arity-mismatch",
        Severity::Error,
        "gate arity does not match its kind",
    ),
    (
        DUPLICATE_NAME,
        "duplicate-name",
        Severity::Error,
        "two gates share one instance name",
    ),
    (
        DANGLING_INPUT,
        "dangling-input",
        Severity::Error,
        "gate input references a missing gate",
    ),
    (
        NON_DRIVING_INPUT,
        "non-driving-input",
        Severity::Error,
        "gate input references a non-driving kind",
    ),
    (
        COMBINATIONAL_LOOP,
        "combinational-loop",
        Severity::Error,
        "combinational subgraph contains a cycle",
    ),
    (
        DEAD_LOGIC,
        "dead-logic",
        Severity::Warn,
        "combinational logic reaches no sink",
    ),
    (
        UNUSED_SOURCE,
        "unused-source",
        Severity::Warn,
        "source drives nothing",
    ),
    (
        WRAPPER_FANOUT_LEAK,
        "wrapper-fanout-leak",
        Severity::Error,
        "wrapped inbound TSV still feeds logic directly",
    ),
    (
        WRAPPER_NON_TRANSPARENT,
        "wrapper-non-transparent",
        Severity::Error,
        "wrapper mux select/data wiring is wrong",
    ),
    (
        WRAPPER_DANGLING_MUX,
        "wrapper-dangling-mux",
        Severity::Warn,
        "wrapper mux drives nothing",
    ),
    (
        SCAN_MISSING_CELL,
        "scan-missing-cell",
        Severity::Error,
        "scan-accessible cell missing from the chain",
    ),
    (
        SCAN_DUPLICATE_CELL,
        "scan-duplicate-cell",
        Severity::Error,
        "cell appears more than once in the chain",
    ),
    (
        SCAN_NOT_A_CELL,
        "scan-not-a-cell",
        Severity::Error,
        "chain entry is not a scan-accessible cell",
    ),
    (
        TSV_UNWRAPPED,
        "tsv-unwrapped",
        Severity::Error,
        "pre-bond TSV crossing left unwrapped",
    ),
    (
        TSV_DOUBLE_WRAPPED,
        "tsv-double-wrapped",
        Severity::Error,
        "TSV wrapped by more than one assignment",
    ),
    (
        TSV_INVALID_ASSIGNMENT,
        "tsv-invalid-assignment",
        Severity::Error,
        "assignment references wrong-kind ids or double-reuses a flip-flop",
    ),
    (
        TSV_SHARED_OVERLAP,
        "tsv-shared-overlap",
        Severity::Info,
        "shared wrap with overlapping cones (justification attached)",
    ),
    (
        TSV_OVERLAP_FORBIDDEN,
        "tsv-overlap-forbidden",
        Severity::Error,
        "cone-overlapping share under a no-overlap policy",
    ),
    (
        WIRE_DELAY_NON_MONOTONE,
        "wire-delay-non-monotone",
        Severity::Error,
        "wire delay not monotone in distance",
    ),
    (
        WIRE_LOAD_NON_MONOTONE,
        "wire-load-non-monotone",
        Severity::Error,
        "driver wire load not monotone in distance",
    ),
    (
        THRESHOLDS_INSANE,
        "thresholds-insane",
        Severity::Error,
        "threshold values are not sane",
    ),
    (
        NEGATIVE_POST_SLACK,
        "negative-post-slack",
        Severity::Error,
        "negative worst slack after DFT insertion",
    ),
    (
        MISSION_MISMATCH,
        "mission-mismatch",
        Severity::Error,
        "mission-mode co-simulation mismatch at a functional sink",
    ),
    (
        REPORT_UNPARSABLE,
        "report-unparsable",
        Severity::Error,
        "report file is not valid JSON",
    ),
    (
        REPORT_SCHEMA_DRIFT,
        "report-schema-drift",
        Severity::Error,
        "report drifted from its golden schema",
    ),
    (
        REPORT_MISSING_TELEMETRY,
        "report-missing-telemetry",
        Severity::Warn,
        "report omits the expected telemetry blocks (hists/mem)",
    ),
    (
        REPORT_MISSING_WORK_COUNTERS,
        "report-missing-work-counters",
        Severity::Warn,
        "bench report's work rows omit the wide-lane/retime counters",
    ),
    (
        SERVE_JOBS_UNACCOUNTED,
        "serve-jobs-unaccounted",
        Severity::Error,
        "serving report's submitted jobs do not balance done + failed",
    ),
    (
        SERVE_CACHE_COLD,
        "serve-cache-cold",
        Severity::Warn,
        "serving report recorded zero warm-cache hits",
    ),
    (
        SERVE_JOURNAL_UNACCOUNTED_JOB,
        "serve-journal-unaccounted-job",
        Severity::Error,
        "serving report left journaled jobs pending after the drain",
    ),
    (
        SERVE_REPORT_MISSING_RECOVERY_TELEMETRY,
        "serve-report-missing-recovery-telemetry",
        Severity::Warn,
        "serving report omits the recovery telemetry block",
    ),
    (
        DATAFLOW_CONST_NET,
        "dataflow-const-net",
        Severity::Warn,
        "combinational net provably constant on every pattern",
    ),
    (
        DATAFLOW_DEAD_GATE,
        "dataflow-dead-gate",
        Severity::Warn,
        "gate output cannot reach any capture point even fully wrapped",
    ),
    (
        DATAFLOW_X_CONE,
        "dataflow-x-cone",
        Severity::Warn,
        "unscanned state roots an uncontrollable X-only cone",
    ),
    (
        DATAFLOW_UNTESTABLE_FAULTS,
        "dataflow-untestable-faults",
        Severity::Info,
        "stuck-at faults provably untestable pre-bond",
    ),
    (
        DATAFLOW_UNTESTABLE_BOUNDARY,
        "dataflow-untestable-boundary",
        Severity::Error,
        "TSV boundary statically untestable however wrapped",
    ),
    (
        DATAFLOW_HARD_TO_TEST,
        "dataflow-hard-to-test",
        Severity::Info,
        "nets with saturated SCOAP detect cost pre-bond",
    ),
];

/// Look up a code's registry row.
pub fn registry_row(code: Code) -> Option<&'static RegistryRow> {
    REGISTRY.iter().find(|(c, ..)| *c == code)
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Location {
    /// The artifact being linted: a netlist/die label, a report path, …
    pub artifact: String,
    /// The specific item inside the artifact (gate, sink, TSV, field).
    pub item: Option<String>,
}

impl Location {
    /// Location with artifact only.
    pub fn artifact(artifact: impl Into<String>) -> Self {
        Location {
            artifact: artifact.into(),
            item: None,
        }
    }

    /// Location with artifact and item.
    pub fn item(artifact: impl Into<String>, item: impl Into<String>) -> Self {
        Location {
            artifact: artifact.into(),
            item: Some(item.into()),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.item {
            Some(item) => write!(f, "{}:{item}", self.artifact),
            None => f.write_str(&self.artifact),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable `P3xxx` code.
    pub code: Code,
    /// Effective severity (the registry default unless a pass escalates).
    pub severity: Severity,
    /// What it points at.
    pub location: Location,
    /// Human-readable statement of the finding.
    pub message: String,
    /// Optional remediation / rationale hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic with the code's registry-default severity.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not in [`REGISTRY`] — an unregistered code is a
    /// programming error in the pass, not an input-data condition.
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Self {
        let (_, _, severity, _) =
            registry_row(code).unwrap_or_else(|| panic!("unregistered lint code {code}"));
        Diagnostic {
            code,
            severity: *severity,
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help/rationale string.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Override the severity (e.g. escalate a Warn under a strict policy).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Serialize for `results/lint_<exp>.json`.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("code", Value::Str(self.code.to_string())),
            ("severity", self.severity.label().into()),
            ("artifact", self.location.artifact.as_str().into()),
            ("message", self.message.as_str().into()),
        ];
        if let Some(item) = &self.location.item {
            pairs.push(("item", item.as_str().into()));
        }
        if let Some(help) = &self.help {
            pairs.push(("help", help.as_str().into()));
        }
        Value::obj(pairs)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.location, self.message
        )?;
        if let Some(help) = &self.help {
            write!(f, "\n    = help: {help}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_sorted_and_in_band() {
        let mut prev = 0u16;
        for &(code, name, _, desc) in REGISTRY {
            assert!(code.0 > prev, "{code} out of order or duplicated");
            assert!(
                (3000..4000).contains(&code.0),
                "{code} outside the P3xxx band"
            );
            assert!(!name.is_empty() && !desc.is_empty());
            prev = code.0;
        }
    }

    #[test]
    fn diagnostic_uses_registry_severity() {
        let d = Diagnostic::new(TSV_UNWRAPPED, Location::item("die0", "tsv_in3"), "m");
        assert_eq!(d.severity, Severity::Error);
        let d = Diagnostic::new(DEAD_LOGIC, Location::artifact("die0"), "m");
        assert_eq!(d.severity, Severity::Warn);
        let d = d.with_severity(Severity::Error);
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unregistered_code_panics() {
        let _ = Diagnostic::new(Code(3999), Location::artifact("x"), "m");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Code(3301).to_string(), "P3301");
        let d = Diagnostic::new(
            TSV_UNWRAPPED,
            Location::item("b11 Die0", "tsv_in3"),
            "unwrapped",
        )
        .with_help("add an assignment");
        let text = d.to_string();
        assert!(text.contains("P3301"));
        assert!(text.contains("error"));
        assert!(text.contains("b11 Die0:tsv_in3"));
        assert!(text.contains("help: add an assignment"));
    }

    #[test]
    fn json_carries_all_fields() {
        let d = Diagnostic::new(MISSION_MISMATCH, Location::item("die", "po3"), "diverged")
            .with_help("co-simulate");
        let j = d.to_json();
        assert_eq!(j.get("code").unwrap().as_str(), Some("P3501"));
        assert_eq!(j.get("severity").unwrap().as_str(), Some("error"));
        assert_eq!(j.get("item").unwrap().as_str(), Some("po3"));
        assert_eq!(j.get("help").unwrap().as_str(), Some("co-simulate"));
    }
}

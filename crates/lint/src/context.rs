//! The lint context: everything a pass may inspect.
//!
//! A [`LintContext`] is a bag of optional references to flow artifacts.
//! Each pass looks at the slices it understands and silently skips when
//! its inputs are absent, so one [`crate::Linter`] run works at any stage
//! of the Fig. 6 flow: right after netlist generation (structure only),
//! after scan insertion (plus chain checks), or after the full flow
//! (everything including post-insertion timing and mission co-simulation).

use prebond3d_celllib::{Library, Time};
use prebond3d_dft::{ScanChain, TestableDie, WrapPlan};
use prebond3d_netlist::{Gate, GateId, Netlist};
use prebond3d_wcm::Thresholds;

/// How expensive a check the linter may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Depth {
    /// Structural checks only: suitable as an inline gate after every flow
    /// stage (linear in netlist size).
    #[default]
    Quick,
    /// Everything, including cone-overlap justification and mission-mode
    /// co-simulation (quadratic-ish; for the `prebond3d-lint` binary and
    /// tests).
    Deep,
}

/// Artifacts available to the lint passes. All fields are optional;
/// construct with [`LintContext::new`] and chain the `with_*` builders.
#[derive(Default)]
pub struct LintContext<'a> {
    /// Label for diagnostics (die name, report path, …).
    pub artifact: String,
    /// A *validated* netlist to lint (testable die if present, else the
    /// original die).
    pub netlist: Option<&'a Netlist>,
    /// A raw, possibly-invalid gate list — lets the structure pass report
    /// every violation where the builder stops at the first.
    pub gates: Option<&'a [Gate]>,
    /// The pre-DFT die (reference for coverage and mission checks).
    pub original: Option<&'a Netlist>,
    /// The wrapper plan under audit.
    pub plan: Option<&'a WrapPlan>,
    /// The DFT-inserted die (needed for mission co-simulation).
    pub testable: Option<&'a TestableDie>,
    /// The `test_en` control input of [`Self::netlist`].
    pub test_en: Option<GateId>,
    /// The stitched scan chain, checked against [`Self::netlist`].
    pub chain: Option<&'a ScanChain>,
    /// The cell library (timing-model sanity checks).
    pub library: Option<&'a Library>,
    /// The flow thresholds (sanity checks).
    pub thresholds: Option<&'a Thresholds>,
    /// Whether the policy in force admits overlapped-cone sharing.
    pub allow_overlap: bool,
    /// Post-insertion worst negative slack, if STA ran.
    pub wns_after: Option<Time>,
    /// The clock period the scenario used.
    pub clock_period: Option<Time>,
    /// Report documents to schema-check: `(label, JSON text)`.
    pub reports: Vec<(String, String)>,
    /// Mission co-simulation batches (0 disables the mission pass).
    pub mission_batches: usize,
    /// Mission co-simulation seed.
    pub mission_seed: u64,
    /// Check depth.
    pub depth: Depth,
}

impl<'a> LintContext<'a> {
    /// Empty context labelled `artifact`. Overlapped-cone sharing defaults
    /// to allowed (the paper's own policy).
    pub fn new(artifact: impl Into<String>) -> Self {
        LintContext {
            artifact: artifact.into(),
            allow_overlap: true,
            mission_seed: 0xC0FFEE,
            ..LintContext::default()
        }
    }

    /// Attach a validated netlist.
    #[must_use]
    pub fn with_netlist(mut self, netlist: &'a Netlist) -> Self {
        self.netlist = Some(netlist);
        self
    }

    /// Attach a raw gate list (pre-validation structure linting).
    #[must_use]
    pub fn with_gates(mut self, gates: &'a [Gate]) -> Self {
        self.gates = Some(gates);
        self
    }

    /// Attach the pre-DFT die.
    #[must_use]
    pub fn with_original(mut self, original: &'a Netlist) -> Self {
        self.original = Some(original);
        self
    }

    /// Attach the wrapper plan.
    #[must_use]
    pub fn with_plan(mut self, plan: &'a WrapPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attach the DFT-inserted die (also sets netlist and `test_en`).
    #[must_use]
    pub fn with_testable(mut self, testable: &'a TestableDie) -> Self {
        self.testable = Some(testable);
        self.netlist = Some(&testable.netlist);
        self.test_en = Some(testable.test_en);
        self
    }

    /// Set the `test_en` gate of the attached netlist.
    #[must_use]
    pub fn with_test_en(mut self, test_en: GateId) -> Self {
        self.test_en = Some(test_en);
        self
    }

    /// Attach the scan chain.
    #[must_use]
    pub fn with_chain(mut self, chain: &'a ScanChain) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Attach the cell library.
    #[must_use]
    pub fn with_library(mut self, library: &'a Library) -> Self {
        self.library = Some(library);
        self
    }

    /// Attach the flow thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: &'a Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Set the overlapped-cone sharing policy.
    #[must_use]
    pub fn with_overlap_policy(mut self, allow: bool) -> Self {
        self.allow_overlap = allow;
        self
    }

    /// Attach the post-insertion STA verdict.
    #[must_use]
    pub fn with_post_sta(mut self, wns: Time, clock_period: Time) -> Self {
        self.wns_after = Some(wns);
        self.clock_period = Some(clock_period);
        self
    }

    /// Queue a report document for schema checking.
    #[must_use]
    pub fn with_report(mut self, label: impl Into<String>, text: impl Into<String>) -> Self {
        self.reports.push((label.into(), text.into()));
        self
    }

    /// Enable mission co-simulation with `batches × 64` patterns.
    #[must_use]
    pub fn with_mission(mut self, batches: usize, seed: u64) -> Self {
        self.mission_batches = batches;
        self.mission_seed = seed;
        self
    }

    /// Set the check depth.
    #[must_use]
    pub fn with_depth(mut self, depth: Depth) -> Self {
        self.depth = depth;
        self
    }
}

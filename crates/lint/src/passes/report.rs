//! Report-schema pass.
//!
//! The bench binaries emit machine-readable run reports
//! (`results/run_<exp>.json`, `results/BENCH_<exp>.json`) that downstream
//! tooling parses; a silent schema drift breaks that tooling long after
//! the run that introduced it. This pass re-validates any report attached
//! to the context: unparsable JSON is P3601, and any field path whose
//! shape is absent from the golden schema is P3602.
//!
//! The goldens are the same files `tests/report_schema.rs` pins
//! (`tests/golden/*.schema.txt`), embedded at compile time so the lint
//! binary needs no working directory. Drift is one-sided on purpose:
//! reports may legally *omit* optional sections (a lite run has no
//! speedup block), but may not *invent* shapes the golden never saw.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::context::LintContext;
use crate::diagnostic::{
    Code, Diagnostic, Location, REPORT_MISSING_TELEMETRY, REPORT_MISSING_WORK_COUNTERS,
    REPORT_SCHEMA_DRIFT, REPORT_UNPARSABLE, SERVE_CACHE_COLD, SERVE_JOBS_UNACCOUNTED,
    SERVE_JOURNAL_UNACCOUNTED_JOB, SERVE_REPORT_MISSING_RECOVERY_TELEMETRY,
};
use crate::schema;
use crate::Pass;
use prebond3d_obs::json::Value;

/// Cap on drift findings per report, to keep a wholesale corruption from
/// flooding the output.
const MAX_DRIFT: usize = 5;

static RUN_GOLDEN: OnceLock<BTreeSet<String>> = OnceLock::new();
static BENCH_GOLDEN: OnceLock<BTreeSet<String>> = OnceLock::new();
static SERVE_GOLDEN: OnceLock<BTreeSet<String>> = OnceLock::new();

fn run_golden() -> &'static BTreeSet<String> {
    RUN_GOLDEN.get_or_init(|| {
        schema::parse_golden(include_str!(
            "../../../../tests/golden/run_report.schema.txt"
        ))
    })
}

fn bench_golden() -> &'static BTreeSet<String> {
    BENCH_GOLDEN.get_or_init(|| {
        schema::parse_golden(include_str!(
            "../../../../tests/golden/bench_report.schema.txt"
        ))
    })
}

fn serve_golden() -> &'static BTreeSet<String> {
    SERVE_GOLDEN.get_or_init(|| {
        schema::parse_golden(include_str!(
            "../../../../tests/golden/serve_report.schema.txt"
        ))
    })
}

/// Is this label the serving benchmark report (`BENCH_serve.json`)?
fn is_serve_report(base: &str) -> bool {
    base.starts_with("BENCH_serve")
}

/// Pick the golden schema for a report label (file basename); `None` for
/// artifacts the pass does not know how to validate. `BENCH_serve` must
/// match before the generic `BENCH_` prefix: the serving report has a
/// jobs/cache shape the per-die bench golden never saw.
fn golden_for(label: &str) -> Option<&'static BTreeSet<String>> {
    let base = label.rsplit('/').next().unwrap_or(label);
    if is_serve_report(base) {
        Some(serve_golden())
    } else if base.starts_with("BENCH_") {
        Some(bench_golden())
    } else if base.starts_with("run_") {
        Some(run_golden())
    } else {
        None
    }
}

/// The report-schema pass.
pub struct ReportSchemaPass;

impl Pass for ReportSchemaPass {
    fn name(&self) -> &'static str {
        "report-schema"
    }

    fn description(&self) -> &'static str {
        "run reports parse and match the golden schema"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            REPORT_UNPARSABLE,
            REPORT_SCHEMA_DRIFT,
            REPORT_MISSING_TELEMETRY,
            REPORT_MISSING_WORK_COUNTERS,
            SERVE_JOBS_UNACCOUNTED,
            SERVE_CACHE_COLD,
            SERVE_JOURNAL_UNACCOUNTED_JOB,
            SERVE_REPORT_MISSING_RECOVERY_TELEMETRY,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (label, text) in &ctx.reports {
            let Some(golden) = golden_for(label) else {
                continue;
            };
            let value = match prebond3d_obs::json::parse(text) {
                Ok(v) => v,
                Err(e) => {
                    out.push(Diagnostic::new(
                        REPORT_UNPARSABLE,
                        Location::item(&ctx.artifact, label.clone()),
                        format!("report is not valid JSON: {e}"),
                    ));
                    continue;
                }
            };
            let actual = schema::schema_lines(&value);
            let drift = schema::drift(&actual, golden);
            for line in drift.iter().take(MAX_DRIFT) {
                out.push(
                    Diagnostic::new(
                        REPORT_SCHEMA_DRIFT,
                        Location::item(&ctx.artifact, label.clone()),
                        format!("shape not in the golden schema: {line}"),
                    )
                    .with_help(
                        "if the new field is intentional, regenerate \
                         tests/golden/*.schema.txt via tests/report_schema.rs",
                    ),
                );
            }
            if drift.len() > MAX_DRIFT {
                out.push(Diagnostic::new(
                    REPORT_SCHEMA_DRIFT,
                    Location::item(&ctx.artifact, label.clone()),
                    format!("... and {} more drifting shapes", drift.len() - MAX_DRIFT),
                ));
            }
            check_telemetry_blocks(label, &value, &ctx.artifact, out);
            check_work_counters(label, &value, &ctx.artifact, out);
            let base = label.rsplit('/').next().unwrap_or(label);
            if is_serve_report(base) {
                check_serve_consistency(label, &value, &ctx.artifact, out);
            }
        }
    }
}

/// Reports grown after the telemetry round carry `hists` + `mem` (run
/// reports) resp. `mem` + `pool` (bench reports); the serving report
/// carries `cache` + `jobs` + `mem`. A report omitting them is probably
/// produced by a stale binary — worth a warning, not a failure, since
/// lite fixtures legitimately skip optional blocks.
fn check_telemetry_blocks(label: &str, value: &Value, artifact: &str, out: &mut Vec<Diagnostic>) {
    let base = label.rsplit('/').next().unwrap_or(label);
    let expected: &[&str] = if is_serve_report(base) {
        &["cache", "jobs", "mem"]
    } else if base.starts_with("BENCH_") {
        &["mem", "pool"]
    } else {
        &["hists", "mem"]
    };
    let missing: Vec<&str> = expected
        .iter()
        .copied()
        .filter(|key| !matches!(value.get(key), Some(Value::Obj(_))))
        .collect();
    if !missing.is_empty() {
        out.push(
            Diagnostic::new(
                REPORT_MISSING_TELEMETRY,
                Location::item(artifact, label.to_string()),
                format!("report omits telemetry block(s): {}", missing.join(", ")),
            )
            .with_help("regenerate the report with a current bench binary"),
        );
    }
}

/// Work counters the wide-lane / incremental-STA perf round records
/// (DESIGN.md §16). A per-die BENCH report that carries work rows but
/// none of these was produced by a stale perf binary whose probes predate
/// the round — the obs-diff gate would then silently stop covering them.
/// Serving reports are exempt: their work rows measure the warm cache
/// (`serve.cache_misses`), not the fault-sim/STA hot paths.
const EXPECTED_WORK_COUNTERS: [&str; 2] = ["atpg.pattern_batches", "sta.node_retimes"];

/// P3605: a non-serve BENCH report with a non-empty `work[]` array but no
/// row for any of [`EXPECTED_WORK_COUNTERS`].
fn check_work_counters(label: &str, value: &Value, artifact: &str, out: &mut Vec<Diagnostic>) {
    let base = label.rsplit('/').next().unwrap_or(label);
    if is_serve_report(base) || !base.starts_with("BENCH_") {
        return;
    }
    let Some(Value::Arr(work)) = value.get("work") else {
        return;
    };
    if work.is_empty() {
        return;
    }
    let recorded = |name: &str| {
        work.iter()
            .any(|row| row.get("counter").and_then(Value::as_str) == Some(name))
    };
    if EXPECTED_WORK_COUNTERS.iter().any(|c| recorded(c)) {
        return;
    }
    out.push(
        Diagnostic::new(
            REPORT_MISSING_WORK_COUNTERS,
            Location::item(artifact, label.to_string()),
            format!(
                "work rows lack the wide-lane/retime counters ({})",
                EXPECTED_WORK_COUNTERS.join(", ")
            ),
        )
        .with_help(
            "regenerate the report with a current perf binary — the wide-lane \
             fault-sim and incremental-STA probes record these counters",
        ),
    );
}

/// Cross-field invariants of the serving report that the schema cannot
/// express: every submitted job must drain to done or failed (a lost job
/// means the daemon's queue leaked under load), and a serving run whose
/// warm cache never hit is measuring nothing the daemon exists for.
fn check_serve_consistency(label: &str, value: &Value, artifact: &str, out: &mut Vec<Diagnostic>) {
    let num = |block: &str, key: &str| -> Option<u64> {
        value
            .get(block)
            .and_then(|b| b.get(key))
            .and_then(Value::as_u64)
    };
    if let (Some(submitted), Some(done), Some(failed)) = (
        num("jobs", "submitted"),
        num("jobs", "done"),
        num("jobs", "failed"),
    ) {
        if submitted != done + failed {
            out.push(
                Diagnostic::new(
                    SERVE_JOBS_UNACCOUNTED,
                    Location::item(artifact, label.to_string()),
                    format!(
                        "job accounting does not balance: {submitted} submitted, \
                         {done} done + {failed} failed"
                    ),
                )
                .with_help("a job vanished between the daemon's queue and its workers"),
            );
        }
    }
    if num("cache", "hits") == Some(0) {
        out.push(
            Diagnostic::new(
                SERVE_CACHE_COLD,
                Location::item(artifact, label.to_string()),
                "warm cache never hit during the serving run".to_string(),
            )
            .with_help("the loadgen mix should replay at least one substrate"),
        );
    }
    // Durability invariants (DESIGN.md §15). A report without a recovery
    // block was produced by a pre-journal loadgen binary — warn; a report
    // whose journal still holds pending jobs after the run drained means
    // accepted work was lost across the crash drill — that's an error.
    if matches!(value.get("recovery"), Some(Value::Obj(_))) {
        if let Some(pending) = num("recovery", "journal_pending") {
            if pending > 0 {
                out.push(
                    Diagnostic::new(
                        SERVE_JOURNAL_UNACCOUNTED_JOB,
                        Location::item(artifact, label.to_string()),
                        format!(
                            "{pending} journaled job(s) still pending after the \
                             recovery drill drained"
                        ),
                    )
                    .with_help(
                        "an accepted job was neither replayed to done nor failed \
                         — the daemon's crash recovery lost work",
                    ),
                );
            }
        }
    } else {
        out.push(
            Diagnostic::new(
                SERVE_REPORT_MISSING_RECOVERY_TELEMETRY,
                Location::item(artifact, label.to_string()),
                "report omits the recovery telemetry block".to_string(),
            )
            .with_help("regenerate the report with a current loadgen binary"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};

    /// Minimal run report that satisfies the golden schema, telemetry
    /// blocks included.
    fn valid_run_report() -> String {
        r#"{
            "elapsed_ms": 12.0,
            "experiment": "smoke",
            "hists": {"flow": {"count": 1, "sum": 9, "max": 9,
                               "p50": 9, "p95": 9, "p99": 9}},
            "mem": {"alloc_bytes_total": 100, "alloc_bytes_peak": 50,
                    "rss_now_kb": 10, "rss_peak_kb": 12,
                    "rss_sampled_kb": {"count": 1, "sum": 10, "max": 10,
                                       "p50": 10, "p95": 10, "p99": 10}},
            "sections": [{
                "label": "flow",
                "ms": 11.0,
                "counters": {"gates": 10},
                "gauges": {"wns": 4},
                "hists": {"probe.latency_ns": {"count": 2, "sum": 7, "max": 4,
                                               "p50": 4, "p95": 4, "p99": 4}},
                "spans": [{"name": "sta", "path": "flow/sta",
                           "count": 1, "depth": 1, "ms": 3.0}]
            }]
        }"#
        .to_string()
    }

    fn lint(label: &str, text: String) -> crate::LintReport {
        Linter::with_default_passes().run(&LintContext::new("t").with_report(label, text))
    }

    #[test]
    fn valid_report_is_clean() {
        let report = lint("run_smoke.json", valid_run_report());
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            report.with_code(REPORT_MISSING_TELEMETRY).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn missing_telemetry_blocks_warn_without_failing() {
        // A pre-telemetry report: parseable, schema-clean, but without
        // hists/mem blocks.
        let text = r#"{"elapsed_ms": 1.0, "experiment": "old", "sections": []}"#.to_string();
        let report = lint("run_old.json", text);
        let warns = report.with_code(REPORT_MISSING_TELEMETRY);
        assert_eq!(warns.len(), 1, "{}", report.render());
        assert!(warns[0].message.contains("hists, mem"));
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn truncated_report_is_unparsable() {
        let mut text = valid_run_report();
        text.truncate(text.len() / 2);
        let report = lint("run_smoke.json", text);
        assert_eq!(report.with_code(REPORT_UNPARSABLE).len(), 1);
    }

    #[test]
    fn invented_field_is_drift() {
        let text = valid_run_report().replace("\"experiment\": \"smoke\"", "\"experiment\": 42");
        let report = lint("run_smoke.json", text);
        let drift = report.with_code(REPORT_SCHEMA_DRIFT);
        assert_eq!(drift.len(), 1, "{}", report.render());
        assert!(drift[0].message.contains("$.experiment: number"));
    }

    #[test]
    fn missing_optional_section_is_not_drift() {
        // Omitting sections entirely leaves only known shapes behind.
        let text = r#"{"elapsed_ms": 1.0, "experiment": "lite", "sections": []}"#.to_string();
        let report = lint("run_lite.json", text);
        assert!(
            report.with_code(REPORT_SCHEMA_DRIFT).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unknown_labels_are_skipped() {
        let report = lint("notes.json", "not json at all".to_string());
        assert!(report.with_code(REPORT_UNPARSABLE).is_empty());
    }

    /// Minimal per-die bench report that satisfies the bench golden
    /// schema and carries the perf round's work counters.
    fn valid_bench_report() -> String {
        r#"{
            "experiment": "perf",
            "threads": 4,
            "elapsed_ms": 10.0,
            "mem": {"alloc_bytes_total": 100, "alloc_bytes_peak": 50,
                    "rss_now_kb": 10, "rss_peak_kb": 12,
                    "rss_sampled_kb": {"count": 1, "sum": 10, "max": 10,
                                       "p50": 10, "p95": 10, "p99": 10}},
            "pool": {"chunk_wait": {"count": 1, "sum": 2, "max": 2,
                                    "p50": 2, "p95": 2, "p99": 2}},
            "phases": [{"path": "flow", "count": 1, "ms": 4.0,
                        "p50_ns": 0, "p95_ns": 0, "p99_ns": 0, "max_ns": 0}],
            "work": [{"counter": "atpg.gate_evals", "substrate": "b01 Die0",
                      "reference": 800, "optimized": 400, "reduction": 0.5},
                     {"counter": "atpg.pattern_batches",
                      "substrate": "b01 Die0 wide lanes",
                      "reference": 8, "optimized": 1, "reduction": 0.875},
                     {"counter": "sta.node_retimes", "substrate": "b01 Die0",
                      "reference": 900, "optimized": 40, "reduction": 0.955}]
        }"#
        .to_string()
    }

    #[test]
    fn bench_report_with_lane_and_retime_rows_is_clean() {
        let report = lint("BENCH_perf.json", valid_bench_report());
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            report.with_code(REPORT_MISSING_WORK_COUNTERS).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn bench_report_without_lane_or_retime_rows_warns() {
        // Keep only the gate-evals row: a stale perf binary's output.
        let text = valid_bench_report().replace("atpg.pattern_batches", "probe.cache_hits");
        let text = text.replace("sta.node_retimes", "graph.cone_word_ops");
        let report = lint("BENCH_perf.json", text);
        let warns = report.with_code(REPORT_MISSING_WORK_COUNTERS);
        assert_eq!(warns.len(), 1, "{}", report.render());
        assert!(warns[0].message.contains("atpg.pattern_batches"));
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn bench_report_with_empty_work_rows_is_exempt() {
        // A lite run records no work rows at all — nothing to flag.
        let start = valid_bench_report().find("\"work\"").unwrap();
        let mut text = valid_bench_report()[..start].to_string();
        text.push_str("\"work\": []\n        }");
        let report = lint("BENCH_lite.json", text);
        assert!(
            report.with_code(REPORT_MISSING_WORK_COUNTERS).is_empty(),
            "{}",
            report.render()
        );
    }

    /// Minimal serving report that satisfies the serve golden schema and
    /// both cross-field invariants.
    fn valid_serve_report() -> String {
        r#"{
            "experiment": "serve",
            "threads": 0,
            "elapsed_ms": 0.0,
            "clients": 3,
            "jobs_per_client": 6,
            "seed": 7,
            "phases": [{"path": "serve_place", "count": 3, "ms": 4.0,
                        "p50_ns": 0, "p95_ns": 0, "p99_ns": 0, "max_ns": 0}],
            "hists": {"serve.latency_warm_ns": {"count": 4, "sum": 8, "max": 3,
                                                "p50": 2, "p95": 3, "p99": 3}},
            "jobs": {"submitted": 21, "done": 21, "failed": 0,
                     "protocol_errors": 0},
            "cache": {"hits": 18, "misses": 3, "evictions": 0,
                      "entries": 3, "budget": 1000},
            "mem": {"rss_now_kb": 0, "rss_peak_kb": 0},
            "backpressure": {"shed": 3, "shed_deterministic": 3,
                             "retry_after_frames": 3},
            "recovery": {"recovered": 3, "deduped": 3, "journal_pending": 0,
                         "journal_done": 6, "kill_recovered": 4},
            "work": [{"counter": "serve.cache_misses", "substrate": "job mix",
                      "reference": 21, "optimized": 3, "reduction": 0.857}]
        }"#
        .to_string()
    }

    #[test]
    fn serve_report_routes_to_its_own_golden() {
        // A valid serving report is clean — in particular it does NOT
        // drift against the per-die bench golden the generic `BENCH_`
        // prefix would have picked.
        let report = lint("BENCH_serve.json", valid_serve_report());
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            report.with_code(REPORT_MISSING_TELEMETRY).is_empty(),
            "{}",
            report.render()
        );
        // Serving work rows measure the warm cache, not the fault-sim/STA
        // hot paths — P3605 must not fire on them.
        assert!(
            report.with_code(REPORT_MISSING_WORK_COUNTERS).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn serve_report_with_unbalanced_jobs_is_flagged() {
        let text = valid_serve_report().replace(r#""done": 21"#, r#""done": 19"#);
        let report = lint("BENCH_serve.json", text);
        let findings = report.with_code(SERVE_JOBS_UNACCOUNTED);
        assert_eq!(findings.len(), 1, "{}", report.render());
        assert!(findings[0].message.contains("21 submitted"));
        assert!(report.has_errors());
    }

    #[test]
    fn serve_report_with_cold_cache_warns() {
        let text = valid_serve_report().replace(r#""hits": 18"#, r#""hits": 0"#);
        let report = lint("BENCH_serve.json", text);
        assert_eq!(report.with_code(SERVE_CACHE_COLD).len(), 1);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn serve_report_with_pending_journal_jobs_is_flagged() {
        let text =
            valid_serve_report().replace(r#""journal_pending": 0"#, r#""journal_pending": 2"#);
        let report = lint("BENCH_serve.json", text);
        let findings = report.with_code(SERVE_JOURNAL_UNACCOUNTED_JOB);
        assert_eq!(findings.len(), 1, "{}", report.render());
        assert!(findings[0].message.contains("2 journaled job(s)"));
        assert!(report.has_errors());
    }

    #[test]
    fn serve_report_without_recovery_block_warns() {
        let text = valid_serve_report().replace(r#""recovery":"#, r#""recovery_gone":"#);
        let report = lint("BENCH_serve.json", text);
        let warns = report.with_code(SERVE_REPORT_MISSING_RECOVERY_TELEMETRY);
        assert_eq!(warns.len(), 1, "{}", report.render());
    }

    #[test]
    fn serve_report_missing_cache_block_warns() {
        let text = valid_serve_report().replace(r#""cache":"#, r#""cache_gone":"#);
        let report = lint("BENCH_serve.json", text);
        let warns = report.with_code(REPORT_MISSING_TELEMETRY);
        assert_eq!(warns.len(), 1, "{}", report.render());
        assert!(warns[0].message.contains("cache"));
    }
}

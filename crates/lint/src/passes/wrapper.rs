//! Wrapper-mux pass: the inserted Fig. 2/Fig. 3 hardware must be wired
//! for transparency.
//!
//! DFT insertion ([`prebond3d_dft::testable::apply`]) names its gates by
//! convention — `wrapmux__<tsv>` for the inbound isolation mux and
//! `wrapdmux__<ff>` for the reused flip-flop's capture mux — and the
//! mission-mode guarantee rests on three wiring facts this pass checks
//! statically:
//!
//! * every wrapper mux selects on `test_en` and passes the raw signal on
//!   the `0` branch (P3102 otherwise: non-transparent);
//! * a wrapped inbound TSV feeds **only** its mux — any remaining direct
//!   consumer sees floating pre-bond data in test mode and stale wrapper
//!   data post-insertion (P3101: fanout leak);
//! * the mux actually drives something, else the wrap is dead hardware
//!   (P3103, warning).

use prebond3d_netlist::{GateId, GateKind, Netlist};

use crate::context::LintContext;
use crate::diagnostic::{
    Code, Diagnostic, Location, WRAPPER_DANGLING_MUX, WRAPPER_FANOUT_LEAK, WRAPPER_NON_TRANSPARENT,
};
use crate::Pass;

/// The wrapper-mux pass.
pub struct WrapperMuxPass;

impl Pass for WrapperMuxPass {
    fn name(&self) -> &'static str {
        "wrapper-mux"
    }

    fn description(&self) -> &'static str {
        "inserted wrapper-mux wiring is transparent in mission mode"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            WRAPPER_FANOUT_LEAK,
            WRAPPER_NON_TRANSPARENT,
            WRAPPER_DANGLING_MUX,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(netlist) = ctx.netlist else { return };
        let Some(test_en) = ctx.test_en else { return };
        for (id, gate) in netlist.iter() {
            if let Some(tsv_name) = gate.name.strip_prefix("wrapmux__") {
                check_inbound_mux(&ctx.artifact, netlist, id, tsv_name, test_en, out);
            } else if gate.name.starts_with("wrapdmux__") {
                check_capture_mux(&ctx.artifact, netlist, id, test_en, out);
            }
        }
    }
}

fn check_inbound_mux(
    artifact: &str,
    netlist: &Netlist,
    mux: GateId,
    tsv_name: &str,
    test_en: GateId,
    out: &mut Vec<Diagnostic>,
) {
    let gate = netlist.gate(mux);
    let loc = || Location::item(artifact, &gate.name);
    if gate.kind != GateKind::Mux2 {
        out.push(Diagnostic::new(
            WRAPPER_NON_TRANSPARENT,
            loc(),
            format!("wrapper mux is a {}, not a mux2", gate.kind),
        ));
        return;
    }
    if gate.inputs[2] != test_en {
        out.push(
            Diagnostic::new(
                WRAPPER_NON_TRANSPARENT,
                loc(),
                format!(
                    "select pin is `{}`, not test_en",
                    netlist.gate(gate.inputs[2]).name
                ),
            )
            .with_help("mission mode needs test_en on the select so the raw TSV passes through"),
        );
    }
    let Some(tsv) = netlist.find(tsv_name) else {
        out.push(Diagnostic::new(
            WRAPPER_NON_TRANSPARENT,
            loc(),
            format!("no TSV named `{tsv_name}` behind this mux"),
        ));
        return;
    };
    if gate.inputs[0] != tsv {
        out.push(
            Diagnostic::new(
                WRAPPER_NON_TRANSPARENT,
                loc(),
                format!(
                    "mission branch (data0) is `{}`, not the raw TSV `{tsv_name}`",
                    netlist.gate(gate.inputs[0]).name
                ),
            )
            .with_help("data0 must carry the functional TSV signal"),
        );
    }
    let cell_kind = netlist.gate(gate.inputs[1]).kind;
    if !matches!(cell_kind, GateKind::ScanDff | GateKind::Wrapper) {
        out.push(Diagnostic::new(
            WRAPPER_NON_TRANSPARENT,
            loc(),
            format!(
                "test branch (data1) is `{}` ({cell_kind}), not a wrapper cell",
                netlist.gate(gate.inputs[1]).name
            ),
        ));
    }
    // The raw TSV must fan out only into this mux.
    for &consumer in netlist.fanout(tsv) {
        if consumer != mux {
            out.push(
                Diagnostic::new(
                    WRAPPER_FANOUT_LEAK,
                    Location::item(artifact, tsv_name),
                    format!(
                        "wrapped TSV still feeds `{}` directly, bypassing its mux",
                        netlist.gate(consumer).name
                    ),
                )
                .with_help("pre-bond the raw TSV floats; every consumer must go through the mux"),
            );
        }
    }
    if netlist.fanout(mux).is_empty() {
        out.push(Diagnostic::new(
            WRAPPER_DANGLING_MUX,
            loc(),
            "wrapper mux drives nothing; the wrap has no effect".to_string(),
        ));
    }
}

fn check_capture_mux(
    artifact: &str,
    netlist: &Netlist,
    mux: GateId,
    test_en: GateId,
    out: &mut Vec<Diagnostic>,
) {
    let gate = netlist.gate(mux);
    if gate.kind != GateKind::Mux2 {
        out.push(Diagnostic::new(
            WRAPPER_NON_TRANSPARENT,
            Location::item(artifact, &gate.name),
            format!("capture mux is a {}, not a mux2", gate.kind),
        ));
        return;
    }
    if gate.inputs[2] != test_en {
        out.push(Diagnostic::new(
            WRAPPER_NON_TRANSPARENT,
            Location::item(artifact, &gate.name),
            format!(
                "capture-mux select is `{}`, not test_en",
                netlist.gate(gate.inputs[2]).name
            ),
        ));
    }
    if netlist.fanout(mux).is_empty() {
        out.push(Diagnostic::new(
            WRAPPER_DANGLING_MUX,
            Location::item(artifact, &gate.name),
            "capture mux drives nothing".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};
    use prebond3d_dft::{testable, WrapPlan};
    use prebond3d_netlist::{Gate, GateKind, Netlist, NetlistBuilder};

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti0");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        b.tsv_out(q, "to0");
        b.output(q, "o");
        b.finish().unwrap()
    }

    fn lint(netlist: &Netlist) -> crate::LintReport {
        let te = netlist.find("test_en").expect("testable die has test_en");
        Linter::with_default_passes()
            .run(&LintContext::new("t").with_netlist(netlist).with_test_en(te))
    }

    #[test]
    fn real_insertion_is_clean() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let report = lint(&t.netlist);
        assert!(!report.has_errors(), "{}", report.render());
    }

    /// Rebuild the testable netlist with one gate mutated.
    fn mutate(netlist: &Netlist, f: impl Fn(&mut Vec<Gate>)) -> Netlist {
        let mut gates: Vec<Gate> = netlist.iter().map(|(_, g)| g.clone()).collect();
        f(&mut gates);
        Netlist::from_gates(netlist.name().to_string(), gates).unwrap()
    }

    #[test]
    fn wrong_select_pin_is_non_transparent() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let a = t.netlist.find("a").unwrap();
        let mux = t.netlist.find("wrapmux__ti0").unwrap();
        let bad = mutate(&t.netlist, |gates| {
            gates[mux.index()].inputs[2] = a;
        });
        let report = lint(&bad);
        assert!(
            !report.with_code(WRAPPER_NON_TRANSPARENT).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn swapped_data_pins_are_non_transparent() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let mux = t.netlist.find("wrapmux__ti0").unwrap();
        let bad = mutate(&t.netlist, |gates| {
            gates[mux.index()].inputs.swap(0, 1);
        });
        let report = lint(&bad);
        assert!(!report.with_code(WRAPPER_NON_TRANSPARENT).is_empty());
    }

    #[test]
    fn direct_tsv_consumer_is_a_fanout_leak() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let ti = t.netlist.find("ti0").unwrap();
        let g = t.netlist.find("g").unwrap();
        let mux = t.netlist.find("wrapmux__ti0").unwrap();
        let bad = mutate(&t.netlist, |gates| {
            // Rewire `g` back to the raw TSV, bypassing the mux.
            for input in &mut gates[g.index()].inputs {
                if *input == mux {
                    *input = ti;
                }
            }
        });
        let report = lint(&bad);
        let leaks = report.with_code(WRAPPER_FANOUT_LEAK);
        assert_eq!(leaks.len(), 1, "{}", report.render());
        assert_eq!(leaks[0].location.item.as_deref(), Some("ti0"));
        // The now-unconsumed mux is also flagged as dangling.
        assert!(!report.with_code(WRAPPER_DANGLING_MUX).is_empty());
    }
}

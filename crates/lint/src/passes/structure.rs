//! Structure pass: netlist DAG invariants beyond the builder.
//!
//! [`prebond3d_netlist::Netlist::from_gates`] enforces arity, name
//! uniqueness, wiring and acyclicity — but it stops at the *first*
//! violation and refuses to construct. This pass reports **every**
//! violation over a raw gate list, and adds two liveness checks the
//! builder does not perform at all: dead combinational logic (P3006) and
//! unused sources (P3007). On an already-validated [`Netlist`] the
//! builder-level checks re-verify trivially and the liveness checks do
//! the real work.

use std::collections::HashMap;

use prebond3d_netlist::{Gate, GateKind};

use crate::context::LintContext;
use crate::diagnostic::{
    Code, Diagnostic, Location, ARITY_MISMATCH, COMBINATIONAL_LOOP, DANGLING_INPUT, DEAD_LOGIC,
    DUPLICATE_NAME, NON_DRIVING_INPUT, UNUSED_SOURCE,
};
use crate::Pass;

/// Cap on per-code findings so a thoroughly broken netlist stays readable.
const MAX_PER_CODE: usize = 16;

/// The structure pass.
pub struct StructurePass;

impl Pass for StructurePass {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn description(&self) -> &'static str {
        "netlist DAG invariants: arity, names, wiring, loops, liveness"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            ARITY_MISMATCH,
            DUPLICATE_NAME,
            DANGLING_INPUT,
            NON_DRIVING_INPUT,
            COMBINATIONAL_LOOP,
            DEAD_LOGIC,
            UNUSED_SOURCE,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(gates) = ctx.gates {
            let refs: Vec<&Gate> = gates.iter().collect();
            lint_gates(&ctx.artifact, &refs, out);
        } else if let Some(netlist) = ctx.netlist {
            let refs: Vec<&Gate> = netlist.iter().map(|(_, g)| g).collect();
            lint_gates(&ctx.artifact, &refs, out);
        }
    }
}

/// A bounded emitter: keeps diagnostics per code below [`MAX_PER_CODE`]
/// and closes each capped code with a `+N more` summary.
struct Emitter<'a> {
    artifact: &'a str,
    counts: HashMap<u16, usize>,
    out: &'a mut Vec<Diagnostic>,
}

impl<'a> Emitter<'a> {
    fn emit(&mut self, code: Code, item: &str, message: String) {
        let n = self.counts.entry(code.0).or_insert(0);
        *n += 1;
        match (*n).cmp(&(MAX_PER_CODE + 1)) {
            std::cmp::Ordering::Less => {
                self.out.push(Diagnostic::new(
                    code,
                    Location::item(self.artifact, item),
                    message,
                ));
            }
            std::cmp::Ordering::Equal => {
                self.out.push(Diagnostic::new(
                    code,
                    Location::artifact(self.artifact),
                    format!("further {code} findings elided"),
                ));
            }
            std::cmp::Ordering::Greater => {}
        }
    }
}

/// Lint a gate list (raw or from a validated netlist).
pub fn lint_gates(artifact: &str, gates: &[&Gate], out: &mut Vec<Diagnostic>) {
    let mut e = Emitter {
        artifact,
        counts: HashMap::new(),
        out,
    };

    // Name uniqueness.
    let mut first_owner: HashMap<&str, usize> = HashMap::new();
    for (i, gate) in gates.iter().enumerate() {
        if let Some(&prev) = first_owner.get(gate.name.as_str()) {
            e.emit(
                DUPLICATE_NAME,
                &gate.name,
                format!("gate #{i} reuses the name of gate #{prev}"),
            );
        } else {
            first_owner.insert(gate.name.as_str(), i);
        }
    }

    // Arity and wiring.
    let mut wiring_broken = false;
    for gate in gates {
        if gate.inputs.len() != gate.kind.arity() {
            e.emit(
                ARITY_MISMATCH,
                &gate.name,
                format!(
                    "kind `{}` takes {} input(s), found {}",
                    gate.kind,
                    gate.kind.arity(),
                    gate.inputs.len()
                ),
            );
        }
        for &input in &gate.inputs {
            match gates.get(input.index()) {
                None => {
                    wiring_broken = true;
                    e.emit(
                        DANGLING_INPUT,
                        &gate.name,
                        format!("input {input} does not exist ({} gates)", gates.len()),
                    );
                }
                Some(driver) if matches!(driver.kind, GateKind::Output | GateKind::TsvOut) => {
                    e.emit(
                        NON_DRIVING_INPUT,
                        &gate.name,
                        format!("driven by `{}`, a non-driving {}", driver.name, driver.kind),
                    );
                }
                Some(_) => {}
            }
        }
    }

    // Graph-shape checks need resolvable edges.
    if wiring_broken {
        return;
    }
    check_loops(&mut e, gates);
    check_liveness(&mut e, gates);
}

/// Kahn's algorithm over combinational edges, as in `Netlist::from_gates`,
/// but reporting every gate stuck on a cycle. Fanouts live in a CSR
/// (offsets + one flat edge array) instead of a `Vec` per gate — one
/// allocation instead of `gates.len()`.
fn check_loops(e: &mut Emitter<'_>, gates: &[&Gate]) {
    let mut arcs: Vec<(u32, u32)> = Vec::new();
    let mut indeg = vec![0usize; gates.len()];
    for (i, gate) in gates.iter().enumerate() {
        for &input in &gate.inputs {
            arcs.push((input.index() as u32, i as u32));
        }
        indeg[i] = if gate.kind.is_sequential() || gate.kind.arity() == 0 {
            0
        } else {
            gate.inputs.len()
        };
    }
    let fanouts = prebond3d_netlist::Csr::from_arcs(gates.len(), &arcs);
    let mut queue: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = queue.pop() {
        for &j in fanouts.neighbors(i) {
            let j = j as usize;
            if gates[j].kind.is_sequential() {
                continue;
            }
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    for (i, &d) in indeg.iter().enumerate() {
        if d > 0 {
            e.emit(
                COMBINATIONAL_LOOP,
                &gates[i].name,
                "stuck on a combinational cycle".to_string(),
            );
        }
    }
}

/// Liveness: combinational logic must reach a sink; sources must drive
/// something. Both are warnings — dead hardware is waste, not breakage.
fn check_liveness(e: &mut Emitter<'_>, gates: &[&Gate]) {
    // Mark alive backwards from sinks, crossing flip-flops (their D cone
    // is alive because the state is architectural).
    let mut alive = vec![false; gates.len()];
    let mut stack: Vec<usize> = gates
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            matches!(g.kind, GateKind::Output | GateKind::TsvOut) || g.kind.is_sequential()
        })
        .map(|(i, _)| i)
        .collect();
    for &i in &stack {
        alive[i] = true;
    }
    while let Some(i) = stack.pop() {
        for &input in &gates[i].inputs {
            if !alive[input.index()] {
                alive[input.index()] = true;
                stack.push(input.index());
            }
        }
    }

    let mut has_fanout = vec![false; gates.len()];
    for gate in gates {
        for &input in &gate.inputs {
            has_fanout[input.index()] = true;
        }
    }

    for (i, gate) in gates.iter().enumerate() {
        let is_pure_logic = gate.kind.is_combinational()
            && !matches!(gate.kind, GateKind::Output | GateKind::TsvOut);
        if is_pure_logic && !alive[i] {
            e.emit(
                DEAD_LOGIC,
                &gate.name,
                format!("{} gate reaches no sink", gate.kind),
            );
        }
        // Sequential sources (scan cells, wrapper cells) are observed
        // through the scan chain, so a floating Q is legitimate.
        if gate.kind.is_source() && !gate.kind.is_sequential() && !has_fanout[i] {
            e.emit(
                UNUSED_SOURCE,
                &gate.name,
                format!("{} source drives nothing", gate.kind),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};
    use prebond3d_netlist::{Gate, GateId, GateKind, NetlistBuilder};

    fn run_on_gates(gates: &[Gate]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let refs: Vec<&Gate> = gates.iter().collect();
        lint_gates("t", &refs, &mut out);
        out
    }

    #[test]
    fn reports_every_violation_not_just_the_first() {
        let gates = vec![
            Gate::new("a", GateKind::Input, vec![]),
            Gate::new("a", GateKind::Input, vec![]),
            Gate::new("g", GateKind::And, vec![GateId(0)]),
            Gate::new("o", GateKind::Output, vec![GateId(0)]),
            Gate::new("h", GateKind::Not, vec![GateId(3)]),
        ];
        let out = run_on_gates(&gates);
        let codes: Vec<u16> = out.iter().map(|d| d.code.0).collect();
        assert!(codes.contains(&DUPLICATE_NAME.0));
        assert!(codes.contains(&ARITY_MISMATCH.0));
        assert!(codes.contains(&NON_DRIVING_INPUT.0));
    }

    #[test]
    fn detects_combinational_loop_in_raw_gates() {
        let gates = vec![
            Gate::new("g0", GateKind::Not, vec![GateId(1)]),
            Gate::new("g1", GateKind::Not, vec![GateId(0)]),
        ];
        let out = run_on_gates(&gates);
        assert_eq!(
            out.iter().filter(|d| d.code == COMBINATIONAL_LOOP).count(),
            2
        );
    }

    #[test]
    fn sequential_feedback_is_legal() {
        let gates = vec![
            Gate::new("q", GateKind::Dff, vec![GateId(1)]),
            Gate::new("d", GateKind::Not, vec![GateId(0)]),
        ];
        let out = run_on_gates(&gates);
        assert!(out.iter().all(|d| d.code != COMBINATIONAL_LOOP));
    }

    #[test]
    fn dangling_input_suppresses_graph_checks() {
        let gates = vec![Gate::new("g", GateKind::Not, vec![GateId(9)])];
        let out = run_on_gates(&gates);
        assert!(out.iter().any(|d| d.code == DANGLING_INPUT));
        assert!(out.iter().all(|d| d.code != DEAD_LOGIC));
    }

    #[test]
    fn dead_logic_and_unused_sources_warn_on_valid_netlists() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let unused = b.input("unused");
        let live = b.gate(GateKind::Not, &[a], "live");
        let dead = b.gate(GateKind::Not, &[a], "dead");
        b.output(live, "o");
        let n = b.finish().unwrap();
        let _ = (unused, dead);
        let report = Linter::with_default_passes().run(&LintContext::new("t").with_netlist(&n));
        assert!(!report.has_errors());
        let dead_hits = report.with_code(DEAD_LOGIC);
        assert_eq!(dead_hits.len(), 1);
        assert_eq!(dead_hits[0].location.item.as_deref(), Some("dead"));
        let unused_hits = report.with_code(UNUSED_SOURCE);
        assert_eq!(unused_hits.len(), 1);
        assert_eq!(unused_hits[0].location.item.as_deref(), Some("unused"));
    }

    #[test]
    fn floating_scan_cell_is_not_an_unused_source() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, &[a], "g");
        b.scan_dff(g, "q"); // no Q fanout: observed via scan only
        b.output(a, "o");
        let n = b.finish().unwrap();
        let report = Linter::with_default_passes().run(&LintContext::new("t").with_netlist(&n));
        assert!(report.with_code(UNUSED_SOURCE).is_empty());
    }

    #[test]
    fn findings_are_capped_per_code() {
        let mut gates = vec![Gate::new("a", GateKind::Input, vec![])];
        for i in 0..40 {
            gates.push(Gate::new(format!("g{i}"), GateKind::And, vec![GateId(0)]));
        }
        let out = run_on_gates(&gates);
        let arity = out.iter().filter(|d| d.code == ARITY_MISMATCH).count();
        assert_eq!(
            arity,
            MAX_PER_CODE + 1,
            "capped findings plus one elision note"
        );
    }
}

//! TSV-coverage pass: every pre-bond crossing wrapped or justified.
//!
//! Pre-bond, an inbound TSV floats and an outbound TSV is unobservable;
//! the wrapper plan must cover **every** crossing exactly once (P3301 /
//! P3302), with well-formed assignments (P3303). Where the plan reuses a
//! scan flip-flop whose cones overlap a wrapped TSV's — the paper's
//! Fig. 4 subtlety — the pass attaches the cone-overlap rationale as an
//! Info finding (P3304) under the default policy, or flags it as an Error
//! (P3305) when the policy in force forbids overlapped sharing (the
//! `without_overlap` ablation and the Agrawal/Li baselines).
//!
//! Unlike [`prebond3d_dft::WrapPlan::validate`], which stops at the first
//! violation, this pass reports all of them.

use std::collections::HashSet;

use prebond3d_netlist::{ConeSet, GateId, GateKind, Netlist};
use prebond3d_wcm::Thresholds;

use crate::context::{Depth, LintContext};
use crate::diagnostic::{
    Code, Diagnostic, Location, TSV_DOUBLE_WRAPPED, TSV_INVALID_ASSIGNMENT, TSV_OVERLAP_FORBIDDEN,
    TSV_SHARED_OVERLAP, TSV_UNWRAPPED,
};
use crate::Pass;
use prebond3d_dft::{WrapPlan, WrapperSource};

/// The TSV-coverage pass.
pub struct TsvCoveragePass;

impl Pass for TsvCoveragePass {
    fn name(&self) -> &'static str {
        "tsv-coverage"
    }

    fn description(&self) -> &'static str {
        "every pre-bond TSV crossing wrapped exactly once, shares justified"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            TSV_UNWRAPPED,
            TSV_DOUBLE_WRAPPED,
            TSV_INVALID_ASSIGNMENT,
            TSV_SHARED_OVERLAP,
            TSV_OVERLAP_FORBIDDEN,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(original), Some(plan)) = (ctx.original, ctx.plan) else {
            return;
        };
        check_coverage(ctx, original, plan, out);
        if ctx.depth == Depth::Deep {
            check_overlaps(ctx, original, plan, out);
        }
    }
}

fn name_of(netlist: &Netlist, id: GateId) -> String {
    netlist
        .get(id)
        .map_or_else(|| id.to_string(), |g| g.name.clone())
}

fn check_coverage(
    ctx: &LintContext<'_>,
    original: &Netlist,
    plan: &WrapPlan,
    out: &mut Vec<Diagnostic>,
) {
    let mut seen_tsv: HashSet<GateId> = HashSet::new();
    let mut seen_ff: HashSet<GateId> = HashSet::new();
    for (i, a) in plan.assignments.iter().enumerate() {
        if let WrapperSource::ReusedScanFf(ff) = a.source {
            match original.get(ff) {
                Some(g) if g.kind == GateKind::ScanDff => {}
                _ => out.push(Diagnostic::new(
                    TSV_INVALID_ASSIGNMENT,
                    Location::item(&ctx.artifact, name_of(original, ff)),
                    format!("assignment {i} reuses {ff}, which is not a scan flip-flop"),
                )),
            }
            if !seen_ff.insert(ff) {
                out.push(
                    Diagnostic::new(
                        TSV_INVALID_ASSIGNMENT,
                        Location::item(&ctx.artifact, name_of(original, ff)),
                        format!("assignment {i} reuses a flip-flop already claimed earlier"),
                    )
                    .with_help("a scan flip-flop can implement at most one wrapper cell"),
                );
            }
        }
        for (&t, want) in a
            .inbound
            .iter()
            .map(|t| (t, GateKind::TsvIn))
            .chain(a.outbound.iter().map(|t| (t, GateKind::TsvOut)))
        {
            match original.get(t) {
                Some(g) if g.kind == want => {}
                _ => out.push(Diagnostic::new(
                    TSV_INVALID_ASSIGNMENT,
                    Location::item(&ctx.artifact, name_of(original, t)),
                    format!("assignment {i} lists {t} as {want}, but it is not"),
                )),
            }
            if !seen_tsv.insert(t) {
                out.push(Diagnostic::new(
                    TSV_DOUBLE_WRAPPED,
                    Location::item(&ctx.artifact, name_of(original, t)),
                    format!("assignment {i} wraps a TSV already wrapped earlier"),
                ));
            }
        }
    }
    for t in original
        .inbound_tsvs()
        .into_iter()
        .chain(original.outbound_tsvs())
    {
        if !seen_tsv.contains(&t) {
            out.push(
                Diagnostic::new(
                    TSV_UNWRAPPED,
                    Location::item(&ctx.artifact, &original.gate(t).name),
                    format!(
                        "pre-bond {} crossing has no wrapper cell",
                        original.gate(t).kind
                    ),
                )
                .with_help("add a dedicated cell or a reused scan flip-flop assignment"),
            );
        }
    }
}

/// Deep check: for every reused flip-flop, test cone overlap against each
/// of its TSVs (Algorithm 1 line 19) and attach the rationale.
fn check_overlaps(
    ctx: &LintContext<'_>,
    original: &Netlist,
    plan: &WrapPlan,
    out: &mut Vec<Diagnostic>,
) {
    for a in &plan.assignments {
        let WrapperSource::ReusedScanFf(ff) = a.source else {
            continue;
        };
        if original.get(ff).is_none() {
            continue; // already reported as P3303
        }
        let mut roots: Vec<GateId> = vec![ff];
        roots.extend(
            a.inbound
                .iter()
                .chain(a.outbound.iter())
                .copied()
                .filter(|&t| original.get(t).is_some()),
        );
        let cones = ConeSet::compute(original, &roots);
        for &t in roots.iter().skip(1) {
            let Some(overlap) = cones.try_cones_overlap(ff, t) else {
                continue;
            };
            if !overlap {
                continue;
            }
            let ff_name = &original.gate(ff).name;
            let tsv_name = &original.gate(t).name;
            if ctx.allow_overlap {
                out.push(
                    Diagnostic::new(
                        TSV_SHARED_OVERLAP,
                        Location::item(&ctx.artifact, tsv_name),
                        format!("share with `{ff_name}` has overlapping cones"),
                    )
                    .with_help(justification(ctx.thresholds)),
                );
            } else {
                out.push(
                    Diagnostic::new(
                        TSV_OVERLAP_FORBIDDEN,
                        Location::item(&ctx.artifact, tsv_name),
                        format!(
                            "share with `{ff_name}` has overlapping cones under a no-overlap policy"
                        ),
                    )
                    .with_help("this configuration set cov_th = 0 and p_th = 0"),
                );
            }
        }
    }
}

fn justification(thresholds: Option<&Thresholds>) -> String {
    match thresholds {
        Some(th) => format!(
            "admitted by the testability probe: coverage loss ≤ {:.3}%, extra patterns ≤ {}",
            th.cov_th * 100.0,
            th.p_th
        ),
        None => {
            "admitted by the testability probe within the flow's cov_th/p_th budget".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};
    use prebond3d_dft::WrapAssignment;
    use prebond3d_netlist::NetlistBuilder;

    /// Die where the scan FF's cones overlap ti's fanout cone.
    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        b.tsv_out(q, "to");
        b.output(q, "o");
        b.finish().unwrap()
    }

    fn lint(n: &Netlist, plan: &WrapPlan, depth: Depth, allow: bool) -> crate::LintReport {
        Linter::with_default_passes().run(
            &LintContext::new("t")
                .with_original(n)
                .with_plan(plan)
                .with_depth(depth)
                .with_overlap_policy(allow),
        )
    }

    #[test]
    fn complete_plan_is_clean() {
        let n = die();
        let report = lint(&n, &WrapPlan::all_dedicated(&n), Depth::Quick, true);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn unwrapped_tsvs_are_all_reported() {
        let n = die();
        let report = lint(&n, &WrapPlan::default(), Depth::Quick, true);
        let unwrapped = report.with_code(TSV_UNWRAPPED);
        assert_eq!(unwrapped.len(), 2, "{}", report.render());
    }

    #[test]
    fn double_wrap_and_bad_kind_are_reported_together() {
        let n = die();
        let ti = n.find("ti").unwrap();
        let g = n.find("g").unwrap();
        let plan = WrapPlan {
            assignments: vec![
                WrapAssignment {
                    source: WrapperSource::Dedicated,
                    inbound: vec![ti],
                    outbound: vec![],
                },
                WrapAssignment {
                    source: WrapperSource::ReusedScanFf(g), // not a scan FF
                    inbound: vec![ti],                      // double wrap
                    outbound: vec![n.find("to").unwrap()],
                },
            ],
        };
        let report = lint(&n, &plan, Depth::Quick, true);
        assert_eq!(report.with_code(TSV_DOUBLE_WRAPPED).len(), 1);
        assert_eq!(report.with_code(TSV_INVALID_ASSIGNMENT).len(), 1);
    }

    #[test]
    fn overlapping_share_is_info_or_error_by_policy() {
        let n = die();
        let plan = WrapPlan {
            assignments: vec![WrapAssignment {
                source: WrapperSource::ReusedScanFf(n.find("q").unwrap()),
                inbound: vec![n.find("ti").unwrap()],
                outbound: vec![n.find("to").unwrap()],
            }],
        };
        let tolerant = lint(&n, &plan, Depth::Deep, true);
        assert!(
            !tolerant.with_code(TSV_SHARED_OVERLAP).is_empty(),
            "{}",
            tolerant.render()
        );
        assert!(!tolerant.has_errors());

        let strict = lint(&n, &plan, Depth::Deep, false);
        assert!(!strict.with_code(TSV_OVERLAP_FORBIDDEN).is_empty());
        assert!(strict.has_errors());

        // Quick depth skips cone computation entirely.
        let quick = lint(&n, &plan, Depth::Quick, false);
        assert!(quick.with_code(TSV_OVERLAP_FORBIDDEN).is_empty());
    }
}

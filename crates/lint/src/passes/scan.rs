//! Scan-chain pass: connectivity and single-pass ordering.
//!
//! The stitched chain is how pre-bond test patterns get in and out; every
//! scan-accessible cell (scan flip-flop or wrapper cell) must appear in
//! the chain exactly once (P3201 missing / P3202 duplicated), and nothing
//! else may be stitched in (P3203).

use std::collections::HashSet;

use crate::context::LintContext;
use crate::diagnostic::{
    Code, Diagnostic, Location, SCAN_DUPLICATE_CELL, SCAN_MISSING_CELL, SCAN_NOT_A_CELL,
};
use crate::Pass;
use prebond3d_netlist::{GateId, GateKind};

/// The scan-chain pass.
pub struct ScanChainPass;

impl Pass for ScanChainPass {
    fn name(&self) -> &'static str {
        "scan-chain"
    }

    fn description(&self) -> &'static str {
        "every scan-accessible cell is stitched into the chain exactly once"
    }

    fn codes(&self) -> &'static [Code] {
        &[SCAN_MISSING_CELL, SCAN_DUPLICATE_CELL, SCAN_NOT_A_CELL]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(netlist), Some(chain)) = (ctx.netlist, ctx.chain) else {
            return;
        };
        let name_of = |id: GateId| {
            netlist
                .get(id)
                .map_or_else(|| id.to_string(), |g| g.name.clone())
        };

        let mut seen: HashSet<GateId> = HashSet::with_capacity(chain.order.len());
        for &cell in &chain.order {
            match netlist.get(cell) {
                Some(g) if matches!(g.kind, GateKind::ScanDff | GateKind::Wrapper) => {}
                Some(g) => {
                    out.push(Diagnostic::new(
                        SCAN_NOT_A_CELL,
                        Location::item(&ctx.artifact, &g.name),
                        format!("chain entry is a {}, not a scan-accessible cell", g.kind),
                    ));
                }
                None => {
                    out.push(Diagnostic::new(
                        SCAN_NOT_A_CELL,
                        Location::item(&ctx.artifact, cell.to_string()),
                        "chain entry references a gate outside the netlist".to_string(),
                    ));
                }
            }
            if !seen.insert(cell) {
                out.push(
                    Diagnostic::new(
                        SCAN_DUPLICATE_CELL,
                        Location::item(&ctx.artifact, name_of(cell)),
                        "cell stitched into the chain more than once".to_string(),
                    )
                    .with_help("a duplicated cell shifts its neighbour's data over itself"),
                );
            }
        }

        for (id, gate) in netlist.iter() {
            if matches!(gate.kind, GateKind::ScanDff | GateKind::Wrapper) && !seen.contains(&id) {
                out.push(
                    Diagnostic::new(
                        SCAN_MISSING_CELL,
                        Location::item(&ctx.artifact, &gate.name),
                        format!("{} is not stitched into the scan chain", gate.kind),
                    )
                    .with_help("an unstitched cell is neither controllable nor observable"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};
    use prebond3d_dft::{insert_scan, ScanChain};
    use prebond3d_netlist::{Netlist, NetlistBuilder};

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let q1 = b.dff(a, "q1");
        let q2 = b.dff(q1, "q2");
        b.output(q2, "o");
        b.finish().unwrap()
    }

    fn lint(netlist: &Netlist, chain: &ScanChain) -> crate::LintReport {
        Linter::with_default_passes().run(
            &LintContext::new("t")
                .with_netlist(netlist)
                .with_chain(chain),
        )
    }

    #[test]
    fn full_chain_is_clean() {
        let (scanned, chain) = insert_scan(&die()).unwrap();
        let report = lint(&scanned, &chain);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn dropped_cell_is_missing() {
        let (scanned, mut chain) = insert_scan(&die()).unwrap();
        let dropped = chain.order.pop().unwrap();
        let report = lint(&scanned, &chain);
        let missing = report.with_code(SCAN_MISSING_CELL);
        assert_eq!(missing.len(), 1);
        assert_eq!(
            missing[0].location.item.as_deref(),
            Some(scanned.gate(dropped).name.as_str())
        );
    }

    #[test]
    fn duplicated_cell_is_flagged() {
        let (scanned, mut chain) = insert_scan(&die()).unwrap();
        chain.order.push(chain.order[0]);
        let report = lint(&scanned, &chain);
        assert_eq!(report.with_code(SCAN_DUPLICATE_CELL).len(), 1);
    }

    #[test]
    fn non_cell_entry_is_flagged() {
        let (scanned, mut chain) = insert_scan(&die()).unwrap();
        chain.order.push(scanned.find("a").unwrap());
        chain.order.push(prebond3d_netlist::GateId(999));
        let report = lint(&scanned, &chain);
        let hits = report.with_code(SCAN_NOT_A_CELL);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|d| d.message.contains("input")));
        assert!(hits
            .iter()
            .any(|d| d.message.contains("outside the netlist")));
    }
}

//! Timing-model sanity pass.
//!
//! The reuse decisions all lean on the Elmore wire model and the
//! threshold vector, so a corrupted model silently corrupts every
//! downstream number. This pass probes the model like a property test:
//! wire delay and driver load must be monotone non-decreasing in distance
//! (P3401 / P3402), the thresholds must be internally sane (P3403), and —
//! when the context carries post-insertion STA results — the worst slack
//! must not be negative (P3404), the paper's Table III acceptance bar.

use prebond3d_celllib::{Capacitance, Distance, Library};
use prebond3d_wcm::Thresholds;

use crate::context::LintContext;
use crate::diagnostic::{
    Code, Diagnostic, Location, NEGATIVE_POST_SLACK, THRESHOLDS_INSANE, WIRE_DELAY_NON_MONOTONE,
    WIRE_LOAD_NON_MONOTONE,
};
use crate::Pass;

/// Distances (µm) the wire model is probed at. Chosen to straddle the
/// buffer interval of realistic models so saturation plateaus are covered.
const PROBE_UM: &[f64] = &[
    0.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 120.0, 150.0, 200.0, 400.0, 800.0, 1600.0,
];

/// Fixed sink load (fF) used for the delay probe.
const PROBE_LOAD_FF: f64 = 5.0;

/// The timing-model pass.
pub struct TimingModelPass;

impl Pass for TimingModelPass {
    fn name(&self) -> &'static str {
        "timing-model"
    }

    fn description(&self) -> &'static str {
        "wire model monotone, thresholds sane, post-insertion slack non-negative"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            WIRE_DELAY_NON_MONOTONE,
            WIRE_LOAD_NON_MONOTONE,
            THRESHOLDS_INSANE,
            NEGATIVE_POST_SLACK,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(library) = ctx.library {
            check_wire_model(&ctx.artifact, library, out);
        }
        if let Some(thresholds) = ctx.thresholds {
            check_thresholds(&ctx.artifact, thresholds, out);
        }
        if let Some(wns) = ctx.wns_after {
            // `< 0` or NaN — a NaN slack is just as broken as a negative one.
            if wns.0 < 0.0 || wns.0.is_nan() {
                let period = ctx
                    .clock_period
                    .map_or_else(String::new, |p| format!(" at a {:.0} ps clock", p.0));
                out.push(
                    Diagnostic::new(
                        NEGATIVE_POST_SLACK,
                        Location::artifact(&ctx.artifact),
                        format!("post-insertion worst slack is {:.2} ps{period}", wns.0),
                    )
                    .with_help(
                        "wrapper insertion must not create timing violations; \
                         tighten s_th/d_th or fall back to dedicated cells",
                    ),
                );
            }
        }
    }
}

fn check_wire_model(artifact: &str, library: &Library, out: &mut Vec<Diagnostic>) {
    let wire = library.wire();
    let load = Capacitance(PROBE_LOAD_FF);
    let mut prev_delay = f64::NEG_INFINITY;
    let mut prev_load = f64::NEG_INFINITY;
    let mut prev_um = 0.0;
    for &um in PROBE_UM {
        let d = wire.elmore_delay(Distance(um), load).0;
        let l = wire.driver_load(Distance(um)).0;
        if d < prev_delay || d.is_nan() {
            out.push(Diagnostic::new(
                WIRE_DELAY_NON_MONOTONE,
                Location::artifact(artifact),
                format!(
                    "wire delay decreases with distance: {prev_delay:.3} ps at {prev_um} µm \
                     but {d:.3} ps at {um} µm"
                ),
            ));
            break;
        }
        if l < prev_load || l.is_nan() {
            out.push(Diagnostic::new(
                WIRE_LOAD_NON_MONOTONE,
                Location::artifact(artifact),
                format!(
                    "driver load decreases with distance: {prev_load:.3} fF at {prev_um} µm \
                     but {l:.3} fF at {um} µm"
                ),
            ));
            break;
        }
        prev_delay = d;
        prev_load = l;
        prev_um = um;
    }
}

fn check_thresholds(artifact: &str, th: &Thresholds, out: &mut Vec<Diagnostic>) {
    let mut bad = |what: String| {
        out.push(
            Diagnostic::new(THRESHOLDS_INSANE, Location::artifact(artifact), what)
                .with_help("see Thresholds::area_optimized / performance_optimized for sane sets"),
        );
    };
    if th.cap_th.0 <= 0.0 || th.cap_th.0.is_nan() {
        bad(format!("cap_th = {} fF must be positive", th.cap_th.0));
    }
    if th.s_th.0.is_nan() || th.s_th.0 == f64::INFINITY {
        // -inf is the area-optimized "never reject on slack" sentinel.
        bad(format!(
            "s_th = {} ps is not a usable slack bound",
            th.s_th.0
        ));
    }
    if th.d_th.0.is_nan() || th.d_th.0 < 0.0 {
        // +inf is the area-optimized "any distance" sentinel.
        bad(format!("d_th = {} µm must be non-negative", th.d_th.0));
    }
    if !(0.0..=1.0).contains(&th.cov_th) {
        bad(format!("cov_th = {} must lie in [0, 1]", th.cov_th));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter};
    use prebond3d_celllib::Time;

    fn lint(ctx: &LintContext<'_>) -> crate::LintReport {
        Linter::with_default_passes().run(ctx)
    }

    /// A stock library with its wire model replaced.
    fn with_wire(wire: prebond3d_celllib::WireModel) -> Library {
        let stock = Library::nangate45_like();
        Library::from_parts(
            "broken".to_string(),
            wire,
            *stock.tsv(),
            *stock.reuse(),
            stock.clk_to_q,
            stock.setup,
        )
    }

    #[test]
    fn stock_library_and_thresholds_are_clean() {
        let library = Library::nangate45_like();
        for th in [
            Thresholds::area_optimized(&library),
            Thresholds::performance_optimized(&library, Distance(120.0)),
            Thresholds::performance_optimized(&library, Distance(120.0)).without_overlap(),
        ] {
            let report = lint(
                &LintContext::new("t")
                    .with_library(&library)
                    .with_thresholds(&th)
                    .with_post_sta(Time(12.5), Time(5000.0)),
            );
            assert!(!report.has_errors(), "{}", report.render());
        }
    }

    #[test]
    fn negative_resistance_breaks_monotonicity() {
        let mut wire = prebond3d_celllib::WireModel::m45();
        wire.res_per_um = prebond3d_celllib::Resistance(-0.1);
        let report = lint(&LintContext::new("t").with_library(&with_wire(wire)));
        assert!(
            !report.with_code(WIRE_DELAY_NON_MONOTONE).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn negative_capacitance_breaks_load_monotonicity() {
        let mut wire = prebond3d_celllib::WireModel::m45();
        wire.cap_per_um = Capacitance(-0.05);
        wire.res_per_um = prebond3d_celllib::Resistance(0.0);
        let report = lint(&LintContext::new("t").with_library(&with_wire(wire)));
        assert!(
            !report.with_code(WIRE_LOAD_NON_MONOTONE).is_empty(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn insane_thresholds_are_each_reported() {
        let th = Thresholds {
            cap_th: Capacitance(0.0),
            s_th: Time(f64::NAN),
            d_th: Distance(-3.0),
            cov_th: 1.5,
            p_th: 0,
        };
        let report = lint(&LintContext::new("t").with_thresholds(&th));
        assert_eq!(
            report.with_code(THRESHOLDS_INSANE).len(),
            4,
            "{}",
            report.render()
        );
    }

    #[test]
    fn negative_wns_is_an_error() {
        let report = lint(&LintContext::new("t").with_post_sta(Time(-4.25), Time(2500.0)));
        let hits = report.with_code(NEGATIVE_POST_SLACK);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("-4.25"));
        assert!(report.has_errors());
    }
}

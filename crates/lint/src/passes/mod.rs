//! The built-in lint passes.

pub mod coverage;
pub mod dataflow;
pub mod mission;
pub mod report;
pub mod scan;
pub mod structure;
pub mod timing;
pub mod wrapper;

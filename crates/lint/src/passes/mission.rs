//! Mission-equivalence pass.
//!
//! Wrapper insertion must be invisible with `test_en = 0`: the testable
//! die simulates identically to the original at every sink. The dft crate
//! checks this dynamically ([`prebond3d_dft::verify::mission_equivalent`]);
//! this pass surfaces any mismatch as a stable P3501 diagnostic carrying
//! the offending sink as its location, so flow hooks and the lint binary
//! report it alongside the static findings instead of as a bare error
//! string.

use prebond3d_dft::verify::{mission_equivalent, Mismatch};

use crate::context::LintContext;
use crate::diagnostic::{Code, Diagnostic, Location, MISSION_MISMATCH};
use crate::Pass;

/// Convert a dynamic [`Mismatch`] into its stable diagnostic.
pub fn diagnostic_for(artifact: &str, mismatch: &Mismatch) -> Diagnostic {
    Diagnostic::new(
        MISSION_MISMATCH,
        Location::item(artifact, &mismatch.sink),
        format!(
            "mission-mode value diverges from the original die on pattern {}",
            mismatch.pattern
        ),
    )
    .with_help("wrapper insertion changed functional behaviour; the wrap wiring is wrong")
}

/// The mission-equivalence pass.
pub struct MissionEquivPass;

impl Pass for MissionEquivPass {
    fn name(&self) -> &'static str {
        "mission-equiv"
    }

    fn description(&self) -> &'static str {
        "wrapped die simulates identically to the original in mission mode"
    }

    fn codes(&self) -> &'static [Code] {
        &[MISSION_MISMATCH]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.mission_batches == 0 {
            return;
        }
        let (Some(original), Some(testable)) = (ctx.original, ctx.testable) else {
            return;
        };
        if let Err(mismatch) =
            mission_equivalent(original, testable, ctx.mission_batches, ctx.mission_seed)
        {
            out.push(diagnostic_for(&ctx.artifact, &mismatch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Depth, LintContext, Linter};
    use prebond3d_dft::{testable, WrapPlan};
    use prebond3d_netlist::{GateKind, Netlist, NetlistBuilder};

    fn die() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti0");
        let g = b.gate(GateKind::Xor, &[a, ti], "g");
        let q = b.scan_dff(g, "q");
        b.tsv_out(q, "to0");
        b.output(q, "o");
        b.finish().unwrap()
    }

    #[test]
    fn real_insertion_passes_mission_check() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let report = Linter::with_default_passes().run(
            &LintContext::new("t")
                .with_original(&n)
                .with_testable(&t)
                .with_plan(&WrapPlan::all_dedicated(&n))
                .with_mission(2, 7)
                .with_depth(Depth::Deep),
        );
        assert!(!report.has_errors(), "{}", report.render());
        assert!(report.with_code(MISSION_MISMATCH).is_empty());
    }

    #[test]
    fn mismatch_converts_to_p3501_at_the_sink() {
        let m = Mismatch {
            sink: "o".to_string(),
            pattern: 17,
        };
        let d = diagnostic_for("b11", &m);
        assert_eq!(d.code, MISSION_MISMATCH);
        assert_eq!(d.location.item.as_deref(), Some("o"));
        assert!(d.message.contains("pattern 17"));
        assert_eq!(d.severity, crate::Severity::Error);
    }

    #[test]
    fn zero_batches_skips_simulation() {
        let n = die();
        let t = testable::apply(&n, &WrapPlan::all_dedicated(&n)).unwrap();
        let report = Linter::with_default_passes()
            .run(&LintContext::new("t").with_original(&n).with_testable(&t));
        // Default context has mission_batches == 0: the pass must not run
        // the simulator, and the report stays clean.
        assert!(report.with_code(MISSION_MISMATCH).is_empty());
    }
}

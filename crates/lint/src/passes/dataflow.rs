//! Dataflow pass: fixpoint-derived testability findings (DESIGN.md §14).
//!
//! Everything this pass reports comes from the `prebond3d-dataflow`
//! analyses, so its findings are byte-identical at any
//! `PREBOND3D_THREADS`:
//!
//! * **P3801** — a combinational net the value-set fixpoint proves
//!   constant: dead logic that no pattern can ever exercise;
//! * **P3802** — a gate whose output cannot reach any capture point
//!   (output, scan flip-flop, wrapper cell or wrapped TSV) even with the
//!   full wrapper boundary inserted;
//! * **P3803** — an unscanned flip-flop rooting an X-only cone: nets that
//!   stay uncontrollable no matter which wrapper cells are inserted;
//! * **P3804** (Deep) — a summary of the collapsed stuck-at faults the
//!   dataflow certificates prove untestable pre-bond — exactly the set
//!   the ATPG engine prunes before simulating anything;
//! * **P3805** — a statically-untestable wrapper boundary
//!   ([`prebond3d_dataflow::boundary::check`]); this is the same
//!   predicate the serve daemon uses as its submit-time admission gate;
//! * **P3806** (Deep) — a summary of SCOAP-saturated nets: the
//!   testability the pre-bond access model cannot buy at any cost.
//!
//! The pass prefers the pre-DFT die ([`LintContext::original`]) because
//! the findings are about what wrapper insertion can and cannot repair;
//! it falls back to the validated netlist when no original is attached.

use prebond3d_atpg::{FaultList, TestAccess};
use prebond3d_dataflow::scoring::INF;
use prebond3d_dataflow::{boundary, reach, AccessView, Constants, Scores, SourceModel};
use prebond3d_netlist::{GateKind, Netlist};

use crate::context::{Depth, LintContext};
use crate::diagnostic::{
    Code, Diagnostic, Location, DATAFLOW_CONST_NET, DATAFLOW_DEAD_GATE, DATAFLOW_HARD_TO_TEST,
    DATAFLOW_UNTESTABLE_BOUNDARY, DATAFLOW_UNTESTABLE_FAULTS, DATAFLOW_X_CONE,
};
use crate::Pass;

/// The dataflow pass.
pub struct DataflowPass;

impl Pass for DataflowPass {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn description(&self) -> &'static str {
        "fixpoint constant/X propagation and static testability"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            DATAFLOW_CONST_NET,
            DATAFLOW_DEAD_GATE,
            DATAFLOW_X_CONE,
            DATAFLOW_UNTESTABLE_FAULTS,
            DATAFLOW_UNTESTABLE_BOUNDARY,
            DATAFLOW_HARD_TO_TEST,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(netlist) = ctx.original.or(ctx.netlist) else {
            return;
        };
        let artifact = ctx.artifact.as_str();
        // The wrapped view judges what wrapper insertion can still repair:
        // anything dead under it is dead under *every* wrapper plan.
        let wrapped = Constants::compute(netlist, &SourceModel::assume_wrapped(netlist));
        check_const_nets(artifact, netlist, &wrapped, out);
        check_dead_gates(artifact, netlist, out);
        check_x_cones(artifact, netlist, &wrapped, out);
        check_boundary(artifact, netlist, out);
        if ctx.depth == Depth::Deep {
            summarize_untestable_faults(artifact, netlist, out);
            summarize_hard_to_test(artifact, netlist, out);
        }
    }
}

/// P3801: derived-constant combinational nets.
fn check_const_nets(
    artifact: &str,
    netlist: &Netlist,
    wrapped: &Constants,
    out: &mut Vec<Diagnostic>,
) {
    for (id, value) in wrapped.derived_constants(netlist) {
        out.push(
            Diagnostic::new(
                DATAFLOW_CONST_NET,
                Location::item(artifact, &netlist.gate(id).name),
                format!("net is provably constant {} on every pattern", u8::from(value)),
            )
            .with_help("constant logic can never be exercised; stuck-at faults matching the constant are untestable"),
        );
    }
}

/// The capture points of a fully-wrapped die: drivers of outputs, scan
/// flip-flops, wrapper cells and (to-be-wrapped) outbound TSVs. Mirrors
/// [`boundary::check`]'s observability side.
fn wrapped_observability(netlist: &Netlist) -> Vec<bool> {
    let mut observed = vec![false; netlist.len()];
    for (_, gate) in netlist.iter() {
        if matches!(
            gate.kind,
            GateKind::Output | GateKind::ScanDff | GateKind::Wrapper | GateKind::TsvOut
        ) {
            observed[gate.inputs[0].index()] = true;
        }
    }
    reach::observable(netlist, &observed)
}

/// P3802: gates unobservable at any capture point even fully wrapped.
fn check_dead_gates(artifact: &str, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let observable = wrapped_observability(netlist);
    for (id, gate) in netlist.iter() {
        if gate.kind.is_combinational()
            && !matches!(gate.kind, GateKind::Output | GateKind::TsvOut)
            && !observable[id.index()]
        {
            out.push(
                Diagnostic::new(
                    DATAFLOW_DEAD_GATE,
                    Location::item(artifact, &gate.name),
                    "gate output cannot reach any capture point even fully wrapped",
                )
                .with_help("every fault on this gate is unobservable pre-bond"),
            );
        }
    }
}

/// P3803: X-only cones rooted at unscanned flip-flops.
fn check_x_cones(
    artifact: &str,
    netlist: &Netlist,
    wrapped: &Constants,
    out: &mut Vec<Diagnostic>,
) {
    let x_only: Vec<bool> = netlist.ids().map(|id| wrapped.is_x_only(id)).collect();
    for (id, gate) in netlist.iter() {
        if gate.kind != GateKind::Dff || !x_only[id.index()] {
            continue;
        }
        // Size of the X-only cone reachable from this root.
        let mut seen = vec![false; netlist.len()];
        let mut stack = vec![id];
        let mut cone = 0usize;
        seen[id.index()] = true;
        while let Some(n) = stack.pop() {
            cone += 1;
            for &fo in netlist.fanout(n) {
                if x_only[fo.index()] && !seen[fo.index()] {
                    seen[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        out.push(
            Diagnostic::new(
                DATAFLOW_X_CONE,
                Location::item(artifact, &gate.name),
                format!(
                    "unscanned flip-flop roots an X-only cone of {cone} net(s) \
                     that no wrapper configuration can control"
                ),
            )
            .with_help("convert to a scan flip-flop to recover pre-bond controllability"),
        );
    }
}

/// P3805: statically-untestable wrapper boundaries (the serve gate).
fn check_boundary(artifact: &str, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    for issue in boundary::check(netlist) {
        out.push(
            Diagnostic::new(
                DATAFLOW_UNTESTABLE_BOUNDARY,
                Location::item(artifact, &netlist.gate(issue.tsv()).name),
                issue.describe(netlist),
            )
            .with_help(
                "no wrapper-cell configuration can exercise this boundary; \
                 fix the netlist before spending ATPG budget on it",
            ),
        );
    }
}

/// P3804 (Deep): how many collapsed stuck-at faults the dataflow
/// certificates already prove untestable pre-bond.
fn summarize_untestable_faults(artifact: &str, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let access = TestAccess::full_scan(netlist);
    let analysis = prebond3d_atpg::prune::PruneAnalysis::new(netlist, &access);
    let list = FaultList::collapsed(netlist);
    let untestable = list
        .faults
        .iter()
        .filter(|&&f| analysis.undetectable(netlist, &access, f))
        .count();
    if untestable > 0 {
        out.push(
            Diagnostic::new(
                DATAFLOW_UNTESTABLE_FAULTS,
                Location::artifact(artifact),
                format!(
                    "{untestable} of {} collapsed stuck-at faults are provably untestable pre-bond",
                    list.faults.len()
                ),
            )
            .with_help(
                "the ATPG engine prunes these statically; wrapper insertion is the only recovery",
            ),
        );
    }
}

/// P3806 (Deep): SCOAP saturation summary under the pre-bond access view.
fn summarize_hard_to_test(artifact: &str, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let scores = Scores::compute(netlist, &AccessView::pre_bond(netlist));
    let mut saturated = 0usize;
    let mut worst = 0u32;
    for (id, gate) in netlist.iter() {
        if !gate.kind.is_combinational() || matches!(gate.kind, GateKind::Output | GateKind::TsvOut)
        {
            continue;
        }
        let cost = scores
            .detect_cost(id, false)
            .max(scores.detect_cost(id, true));
        if cost >= INF {
            saturated += 1;
        } else {
            worst = worst.max(cost);
        }
    }
    if saturated > 0 {
        out.push(
            Diagnostic::new(
                DATAFLOW_HARD_TO_TEST,
                Location::artifact(artifact),
                format!(
                    "{saturated} net(s) have saturated SCOAP detect cost pre-bond \
                     (worst finite cost {worst})"
                ),
            )
            .with_help("saturated nets depend on floating TSVs or unscanned state"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::NetlistBuilder;

    fn run_pass(netlist: &Netlist, depth: Depth) -> Vec<Diagnostic> {
        let ctx = LintContext::new("t")
            .with_netlist(netlist)
            .with_depth(depth);
        let mut out = Vec::new();
        DataflowPass.run(&ctx, &mut out);
        out
    }

    fn codes_of(out: &[Diagnostic]) -> Vec<Code> {
        out.iter().map(|d| d.code).collect()
    }

    #[test]
    fn const_net_and_boundary_are_flagged() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c1 = b.gate(GateKind::Const1, &[], "c1");
        let g = b.gate(GateKind::Or, &[a, c1], "g"); // a | 1 ≡ 1
        b.tsv_out(g, "to");
        b.output(a, "o");
        let n = b.finish().unwrap();
        let out = run_pass(&n, Depth::Quick);
        let codes = codes_of(&out);
        assert!(codes.contains(&DATAFLOW_CONST_NET), "{out:?}");
        assert!(codes.contains(&DATAFLOW_UNTESTABLE_BOUNDARY), "{out:?}");
    }

    #[test]
    fn dead_gate_and_x_cone_are_flagged() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        // g feeds only an unscanned flip-flop: unobservable pre-bond.
        let g = b.gate(GateKind::Not, &[a], "g");
        let q = b.dff(g, "q");
        // The unscanned flip-flop roots an X-only cone of two nets.
        let h = b.gate(GateKind::Buf, &[q], "h");
        let k = b.gate(GateKind::And, &[h, a], "k");
        b.output(k, "o");
        let n = b.finish().unwrap();
        let out = run_pass(&n, Depth::Quick);
        let dead: Vec<_> = out
            .iter()
            .filter(|d| d.code == DATAFLOW_DEAD_GATE)
            .collect();
        assert_eq!(dead.len(), 1, "{out:?}");
        assert_eq!(dead[0].location.item.as_deref(), Some("g"));
        let cones: Vec<_> = out.iter().filter(|d| d.code == DATAFLOW_X_CONE).collect();
        assert_eq!(cones.len(), 1, "{out:?}");
        assert!(
            cones[0].message.contains("2 net(s)"),
            "{}",
            cones[0].message
        );
    }

    #[test]
    fn deep_depth_adds_the_summaries() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ti = b.tsv_in("ti");
        let g = b.gate(GateKind::And, &[ti, a], "g");
        b.output(g, "o");
        let n = b.finish().unwrap();
        assert!(codes_of(&run_pass(&n, Depth::Quick)).is_empty());
        let deep = run_pass(&n, Depth::Deep);
        let codes = codes_of(&deep);
        assert!(codes.contains(&DATAFLOW_UNTESTABLE_FAULTS), "{deep:?}");
        assert!(codes.contains(&DATAFLOW_HARD_TO_TEST), "{deep:?}");
    }

    #[test]
    fn healthy_die_is_clean_at_quick_depth() {
        let die = prebond3d_netlist::itc99::generate_flat("ok", 200, 16, 6, 6, 5);
        assert!(codes_of(&run_pass(&die, Depth::Quick)).is_empty());
    }
}

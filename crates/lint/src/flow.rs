//! Lint a complete Fig. 6 flow result.
//!
//! [`flow_context`] assembles a [`LintContext`] from the artifacts a
//! [`prebond3d_wcm::run_flow`] call produced, and [`lint_flow`] runs the
//! default pipeline over it. This is the hook the bench drivers call
//! after each experiment cell, and what the `prebond3d-lint` binary uses
//! per die.
//!
//! Severity policy: the Agrawal/Li baselines *do* violate timing in the
//! Tight scenario — that is the paper's Table III result, not a bug in
//! this repository — so callers auditing baseline configurations should
//! allow-list [`crate::diagnostic::NEGATIVE_POST_SLACK`] via
//! [`Linter::allow`] rather than fail the run.

use prebond3d_celllib::{Distance, Library, Time};
use prebond3d_netlist::Netlist;
use prebond3d_wcm::flow::Scenario;
use prebond3d_wcm::{FlowConfig, FlowResult, Method, Thresholds};

use crate::context::{Depth, LintContext};
use crate::{LintReport, Linter};

/// Mission co-simulation batches used at [`Depth::Deep`] (64 patterns per
/// batch).
const DEEP_MISSION_BATCHES: usize = 2;

/// Reconstruct the thresholds a flow configuration ran with (mirrors
/// `run_flow`'s derivation so the sanity pass audits the real values).
pub fn thresholds_for(config: &FlowConfig, library: &Library, scale: Distance) -> Thresholds {
    let mut thresholds = match config.scenario {
        Scenario::Area => Thresholds::area_optimized(library),
        Scenario::Tight => {
            let mut th = Thresholds::performance_optimized(library, Distance(scale.0 * 0.4));
            th.s_th = Time(5.0);
            th
        }
    };
    if !config
        .allow_overlap
        .unwrap_or(config.method == Method::Ours)
    {
        thresholds = thresholds.without_overlap();
    }
    thresholds
}

/// Build a lint context for one completed flow run.
///
/// The returned context borrows from `result`, `original`, `library` and
/// `thresholds`; keep them alive for the lint run.
pub fn flow_context<'a>(
    artifact: impl Into<String>,
    original: &'a Netlist,
    result: &'a FlowResult,
    library: &'a Library,
    thresholds: &'a Thresholds,
    config: &FlowConfig,
    depth: Depth,
) -> LintContext<'a> {
    let allow_overlap = config
        .allow_overlap
        .unwrap_or(config.method == Method::Ours);
    let mission_batches = match depth {
        Depth::Quick => 0,
        Depth::Deep => DEEP_MISSION_BATCHES,
    };
    LintContext::new(artifact)
        .with_original(original)
        .with_testable(&result.testable)
        .with_plan(&result.plan)
        .with_library(library)
        .with_thresholds(thresholds)
        .with_overlap_policy(allow_overlap)
        .with_post_sta(result.wns_after, result.clock_period)
        .with_mission(mission_batches, 0xC0FFEE)
        .with_depth(depth)
}

/// Run the default lint pipeline over a completed flow.
pub fn lint_flow(
    artifact: impl Into<String>,
    original: &Netlist,
    result: &FlowResult,
    library: &Library,
    config: &FlowConfig,
    depth: Depth,
) -> LintReport {
    let thresholds = thresholds_for(config, library, result.placement.scale());
    let ctx = flow_context(
        artifact,
        original,
        result,
        library,
        &thresholds,
        config,
        depth,
    );
    Linter::with_default_passes().run(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99::{generate_die, DieSpec};
    use prebond3d_place::{place, PlaceConfig};
    use prebond3d_wcm::run_flow;

    fn small_die() -> Netlist {
        generate_die(&DieSpec {
            name: "lintflow".to_string(),
            gates: 220,
            scan_flip_flops: 18,
            inbound_tsvs: 8,
            outbound_tsvs: 8,
            primary_inputs: 6,
            primary_outputs: 6,
            seed: 11,
        })
    }

    #[test]
    fn full_flow_lints_clean_at_deep_depth() {
        let die = small_die();
        let placement = place(&die, &PlaceConfig::default(), 11);
        let library = Library::nangate45_like();
        let config = FlowConfig::area_optimized(Method::Ours);
        let result = run_flow(&die, &placement, &library, &config).unwrap();
        let report = lint_flow("lintflow", &die, &result, &library, &config, Depth::Deep);
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.passes_run.len(), 8);
    }

    #[test]
    fn thresholds_mirror_the_flow_policy() {
        let library = Library::nangate45_like();
        let tight = thresholds_for(
            &FlowConfig::performance_optimized(Method::Ours),
            &library,
            Distance(500.0),
        );
        assert!(tight.allows_overlap());
        assert_eq!(tight.d_th.0, 200.0);

        let strict = thresholds_for(
            &FlowConfig::performance_optimized(Method::Li),
            &library,
            Distance(500.0),
        );
        assert!(!strict.allows_overlap());
    }
}

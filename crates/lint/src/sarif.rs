//! Minimal SARIF 2.1.0 export of lint reports.
//!
//! [SARIF] (Static Analysis Results Interchange Format) is the exchange
//! schema code-review UIs and CI annotation services ingest. This module
//! emits the minimal valid subset: one `run` with a `tool.driver` whose
//! `rules` array mirrors the [`REGISTRY`], and one `result` per
//! diagnostic carrying the rule id, the mapped level
//! (`Info`→`note`, `Warn`→`warning`, `Error`→`error`), the message, and
//! the artifact/item location.
//!
//! Output is deterministic: rules are in registry order and results in
//! report order (the linter already sorts most-severe-first).
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use prebond3d_obs::json::Value;

use crate::diagnostic::{Diagnostic, Severity, REGISTRY};
use crate::LintReport;

/// The SARIF `level` for a severity.
fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "note",
        Severity::Warn => "warning",
        Severity::Error => "error",
    }
}

/// One SARIF `reportingDescriptor` per registry row.
fn rules() -> Value {
    Value::Arr(
        REGISTRY
            .iter()
            .map(|&(code, name, severity, desc)| {
                Value::obj([
                    ("id", code.to_string().into()),
                    ("name", name.into()),
                    ("shortDescription", Value::obj([("text", desc.into())])),
                    (
                        "defaultConfiguration",
                        Value::obj([("level", level(severity).into())]),
                    ),
                ])
            })
            .collect(),
    )
}

/// One SARIF `result` per diagnostic.
fn result(d: &Diagnostic) -> Value {
    let mut location = vec![(
        "physicalLocation",
        Value::obj([(
            "artifactLocation",
            Value::obj([("uri", d.location.artifact.as_str().into())]),
        )]),
    )];
    if let Some(item) = &d.location.item {
        location.push((
            "logicalLocations",
            Value::Arr(vec![Value::obj([("name", item.as_str().into())])]),
        ));
    }
    let mut message = d.message.clone();
    if let Some(help) = &d.help {
        message.push_str(" — ");
        message.push_str(help);
    }
    Value::obj([
        ("ruleId", d.code.to_string().into()),
        ("level", level(d.severity).into()),
        ("message", Value::obj([("text", message.as_str().into())])),
        ("locations", Value::Arr(vec![Value::obj(location)])),
    ])
}

/// Serialize `reports` as one SARIF 2.1.0 document with a single run.
pub fn to_sarif(reports: &[LintReport]) -> Value {
    let results: Vec<Value> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(result))
        .collect();
    Value::obj([
        (
            "$schema",
            "https://json.schemastore.org/sarif-2.1.0.json".into(),
        ),
        ("version", "2.1.0".into()),
        (
            "runs",
            Value::Arr(vec![Value::obj([
                (
                    "tool",
                    Value::obj([(
                        "driver",
                        Value::obj([
                            ("name", "prebond3d-lint".into()),
                            ("informationUri", "https://example.invalid/prebond3d".into()),
                            ("rules", rules()),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Location, SCAN_MISSING_CELL, TSV_SHARED_OVERLAP};

    fn sample() -> LintReport {
        LintReport {
            artifact: "die".into(),
            diagnostics: vec![
                Diagnostic::new(SCAN_MISSING_CELL, Location::item("die", "q3"), "missing"),
                Diagnostic::new(TSV_SHARED_OVERLAP, Location::artifact("die"), "shared")
                    .with_help("justified"),
            ],
            suppressed: 0,
            passes_run: vec!["scan-chain"],
        }
    }

    #[test]
    fn document_shape_is_sarif_2_1_0() {
        let doc = to_sarif(&[sample()]);
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("prebond3d-lint"));
        // Every registry row becomes a rule.
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), REGISTRY.len());
        assert!(rules
            .iter()
            .any(|r| r.get("id").unwrap().as_str() == Some("P3805")));
    }

    #[test]
    fn results_carry_rule_level_message_and_location() {
        let doc = to_sarif(&[sample()]);
        let results = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").unwrap().as_str(), Some("P3201"));
        assert_eq!(results[0].get("level").unwrap().as_str(), Some("error"));
        let loc = &results[0].get("locations").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            loc.get("physicalLocation")
                .unwrap()
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("die")
        );
        assert_eq!(
            loc.get("logicalLocations").unwrap().as_arr().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str(),
            Some("q3")
        );
        // Info maps to note, and help text is folded into the message.
        assert_eq!(results[1].get("level").unwrap().as_str(), Some("note"));
        assert_eq!(
            results[1]
                .get("message")
                .unwrap()
                .get("text")
                .unwrap()
                .as_str(),
            Some("shared — justified")
        );
    }

    #[test]
    fn empty_reports_produce_an_empty_results_array() {
        let doc = to_sarif(&[]);
        let results = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap();
        assert!(results.is_empty());
    }
}

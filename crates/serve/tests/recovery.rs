//! Kill-and-recover against the **real daemon binary**: spawn
//! `prebond3d-serve --journal --paused`, accept jobs into the held
//! queue, SIGKILL the process (no shutdown handler, no flush), restart
//! it on the same journal, and assert every accepted job drains exactly
//! once with a byte-identical report. The in-process drills live in the
//! workspace `serve_recovery` suite; this one exists because only a real
//! process can be SIGKILLed.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use prebond3d_obs::json::{parse, Value};

const DAEMON: &str = env!("CARGO_BIN_EXE_prebond3d-serve");

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(writer) => {
                    let reader = BufReader::new(writer.try_clone().expect("clone"));
                    return Client { writer, reader };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn request(&mut self, line: &str) -> Value {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_frame()
    }

    fn read_frame(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "daemon closed the connection");
        parse(line.trim()).unwrap_or_else(|e| panic!("bad frame `{}`: {e}", line.trim()))
    }

    /// Submit and consume frames through `done`.
    fn submit(&mut self, line: &str) -> Value {
        let first = self.request(line);
        assert_eq!(first.get("ev").and_then(Value::as_str), Some("accepted"));
        loop {
            let frame = self.read_frame();
            match frame.get("ev").and_then(Value::as_str) {
                Some("phase") => continue,
                Some("done") => return frame,
                other => panic!("unexpected frame {other:?}: {frame}"),
            }
        }
    }
}

/// Kills the daemon on drop so a failing assert cannot leak it.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(journal: &Path, port_file: &Path, paused: bool) -> Daemon {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(DAEMON);
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("1")
        .arg("--journal")
        .arg(journal)
        .arg("--port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if paused {
        cmd.arg("--paused");
    }
    Daemon(cmd.spawn().expect("spawn prebond3d-serve"))
}

fn wait_addr(port_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return format!("127.0.0.1:{port}");
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote {}",
            port_file.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("prebond3d-sigkill-{tag}-{}", std::process::id()))
}

fn stat(frame: &Value, block: &str, key: &str) -> u64 {
    frame
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats lacks {block}.{key}: {frame}"))
}

#[test]
fn sigkilled_daemon_recovers_every_accepted_job_exactly_once() {
    let journal = tmp("journal.wal");
    let port_file = tmp("port");
    let _ = std::fs::remove_file(&journal);

    let child = spawn_daemon(&journal, &port_file, true);
    let addr = wait_addr(&port_file);
    // Three distinct specs into the held queue: accepted + journaled,
    // never dequeued. b11 keeps the post-restart replays in CI seconds.
    let lines = [
        r#"{"op":"submit","id":"k0","circuit":"b11","die":0,"method":"ours","probe":"structural"}"#,
        r#"{"op":"submit","id":"k1","circuit":"b11","die":1,"method":"agrawal","probe":"structural"}"#,
        r#"{"op":"submit","id":"k2","circuit":"b11","die":0,"method":"li","probe":"structural"}"#,
    ];
    let mut keys = Vec::new();
    let mut conns = Vec::new();
    for line in lines {
        let mut c = Client::connect(&addr);
        let accepted = c.request(line);
        assert_eq!(accepted.get("ev").and_then(Value::as_str), Some("accepted"));
        keys.push(
            accepted
                .get("key")
                .and_then(Value::as_str)
                .expect("accepted frame carries the idempotency key")
                .to_string(),
        );
        conns.push(c);
    }
    let mut control = Client::connect(&addr);
    let stats = control.request(r#"{"op":"stats"}"#);
    assert_eq!(stat(&stats, "queue", "depth"), 3, "held queue: {stats}");
    drop(control);
    drop(conns);
    drop(child); // Drop = SIGKILL: no shutdown handler, no flush.

    // Restart (not paused) on the same journal: the stranded jobs must
    // replay to done with no client attached.
    let child = spawn_daemon(&journal, &port_file, false);
    let addr = wait_addr(&port_file);
    let mut control = Client::connect(&addr);
    let stats = control.request(r#"{"op":"stats"}"#);
    assert_eq!(stat(&stats, "journal", "recovered"), 3, "{stats}");

    let deadline = Instant::now() + Duration::from_secs(120);
    for (line, key) in lines.iter().zip(&keys) {
        let status = loop {
            let frame = control.request(&format!(r#"{{"op":"status","key":"{key}"}}"#));
            match frame.get("state").and_then(Value::as_str) {
                Some("done") => break frame,
                Some("pending") => {}
                other => panic!("unexpected status state {other:?}: {frame}"),
            }
            assert!(Instant::now() < deadline, "job {key} never drained");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(status.get("code").and_then(Value::as_u64), Some(0));
        let report = status
            .get("report")
            .unwrap_or_else(|| panic!("no report: {status}"))
            .to_string();
        // Byte-identity: an uninterrupted fresh-id rerun matches.
        let fresh = line.replacen(r#""id":"k"#, r#""id":"fresh-k"#, 1);
        let rerun = Client::connect(&addr).submit(&fresh);
        assert_eq!(rerun.get("report").map(Value::to_string), Some(report.clone()));
        // Exactly-once: the original line dedups from the journal.
        let replay = Client::connect(&addr).submit(line);
        assert_eq!(replay.get("dedup").and_then(Value::as_bool), Some(true));
        assert_eq!(replay.get("report").map(Value::to_string), Some(report));
    }
    let stats = control.request(r#"{"op":"stats"}"#);
    assert_eq!(stat(&stats, "journal", "pending"), 0, "{stats}");
    assert_eq!(control.request(r#"{"op":"shutdown"}"#).get("ev").and_then(Value::as_str), Some("bye"));
    drop(child);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&port_file);
}

//! The warm cross-request cache (DESIGN.md §13).
//!
//! A batch run rebuilds everything per invocation; the daemon instead
//! keeps each job's expensive substrate warm across requests:
//!
//! * the generated/parsed [`Netlist`] and its annealed [`Placement`]
//!   (placement is the dominant cold-start cost), and
//! * one [`AtpgProbe`] whose `(pair, shared)` memo tables and
//!   dedicated-baseline context accumulate across every job that prices
//!   sharing on this netlist.
//!
//! Entries are keyed by **content**: generated substrates by an FNV over
//! the deterministic generation inputs (benchmark, die index), inline
//! netlists by [`Netlist::signature`] — so a mutated netlist submitted
//! under a colliding module name can never hit a stale entry (the
//! cache-lifetime gap PR 7 closes).
//!
//! Eviction is least-recently-used under a **byte budget**
//! (`PREBOND3D_SERVE_CACHE_BYTES`, default 64 MiB). Sizes are coarse
//! estimates (`approx_bytes`) re-weighed after every job, because a warm
//! probe's memo table grows while it serves; the invariant the soak suite
//! asserts is `bytes <= budget` after every insert/re-weigh, with entries
//! larger than the whole budget never admitted at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prebond3d_netlist::Netlist;
use prebond3d_obs as obs;
use prebond3d_place::Placement;
use prebond3d_wcm::testability::AtpgProbe;

/// Default byte budget when `PREBOND3D_SERVE_CACHE_BYTES` is unset.
pub const DEFAULT_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// Coarse per-gate estimate for a resident netlist (gate record, fanout
/// adjacency, name-index entry).
const NETLIST_BYTES_PER_GATE: usize = 160;
/// Coarse per-gate estimate for a placement (coordinates + row index).
const PLACEMENT_BYTES_PER_GATE: usize = 24;

/// One warm substrate: everything a repeat job skips rebuilding.
#[derive(Debug)]
pub struct WarmEntry {
    /// The validated netlist.
    pub netlist: Netlist,
    /// Its annealed placement.
    pub placement: Placement,
    /// The netlist's long-lived measured probe; memo tables grow across
    /// jobs. Shared so eviction cannot free state under a running job.
    pub probe: Arc<AtpgProbe>,
}

impl WarmEntry {
    /// Coarse resident size, including the probe's current warm state.
    pub fn approx_bytes(&self) -> usize {
        self.netlist.len() * NETLIST_BYTES_PER_GATE
            + self.netlist.len() * PLACEMENT_BYTES_PER_GATE
            + self.probe.approx_bytes()
    }
}

#[derive(Debug)]
struct Slot {
    entry: Arc<WarmEntry>,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Slot>,
    bytes: usize,
    tick: u64,
}

/// Point-in-time cache statistics (the `stats` op payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or found the budget too small).
    pub misses: u64,
    /// Entries removed to satisfy the byte budget.
    pub evictions: u64,
    /// Resident entries.
    pub entries: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// The configured byte budget.
    pub budget: usize,
}

/// The LRU-with-byte-budget warm cache.
#[derive(Debug)]
pub struct WarmCache {
    budget: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl WarmCache {
    /// A cache with an explicit byte budget.
    pub fn new(budget: usize) -> Self {
        WarmCache {
            budget,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The budget from `PREBOND3D_SERVE_CACHE_BYTES`, defaulting to
    /// [`DEFAULT_BUDGET_BYTES`]. Unparsable values warn and fall back.
    pub fn budget_from_env() -> usize {
        match std::env::var("PREBOND3D_SERVE_CACHE_BYTES") {
            Err(_) => DEFAULT_BUDGET_BYTES,
            Ok(v) => v.trim().parse().unwrap_or_else(|_| {
                eprintln!(
                    "[serve] unparsable PREBOND3D_SERVE_CACHE_BYTES `{v}`; \
                     using default {DEFAULT_BUDGET_BYTES}"
                );
                DEFAULT_BUDGET_BYTES
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Look up a warm entry, refreshing its recency. Counts a hit or a
    /// miss (`serve.cache_hits` / `serve.cache_misses`).
    pub fn lookup(&self, key: u64) -> Option<Arc<WarmEntry>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(slot) => {
                slot.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::count("serve.cache_hits", 1);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::count("serve.cache_misses", 1);
                None
            }
        }
    }

    /// Admit a freshly built entry, evicting least-recently-used slots
    /// until the budget holds. An entry larger than the whole budget is
    /// rejected (the job still ran on it; it just stays cold).
    pub fn insert(&self, key: u64, entry: Arc<WarmEntry>) {
        let bytes = entry.approx_bytes();
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(key, Slot { entry, bytes, tick }) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        self.enforce_budget(&mut inner);
    }

    /// Re-estimate one entry's bytes after a job ran on it (its probe's
    /// memo table may have grown) and re-enforce the budget.
    pub fn reweigh(&self, key: u64) {
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.map.get_mut(&key) else {
            return;
        };
        let new_bytes = slot.entry.approx_bytes();
        let old_bytes = slot.bytes;
        slot.bytes = new_bytes;
        inner.bytes = inner.bytes - old_bytes + new_bytes;
        self.enforce_budget(&mut inner);
    }

    /// Evict LRU slots until `bytes <= budget`. An entry that alone
    /// exceeds the budget is evicted too (the invariant is strict).
    fn enforce_budget(&self, inner: &mut Inner) {
        while inner.bytes > self.budget {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, s)| s.tick) else {
                break;
            };
            let slot = inner.map.remove(&victim).expect("victim exists");
            inner.bytes -= slot.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs::count("serve.cache_evictions", 1);
        }
        obs::gauge("serve.cache_bytes", inner.bytes as u64);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;
    use prebond3d_place::{place, PlaceConfig};

    fn entry(seed: u64) -> Arc<WarmEntry> {
        let spec = itc99::DieSpec {
            name: format!("d{seed}"),
            scan_flip_flops: 4,
            gates: 60,
            inbound_tsvs: 2,
            outbound_tsvs: 2,
            primary_inputs: 2,
            primary_outputs: 2,
            seed,
        };
        let netlist = itc99::generate_die(&spec);
        let placement = place(&netlist, &PlaceConfig::default(), 1);
        Arc::new(WarmEntry {
            netlist,
            placement,
            probe: Arc::new(AtpgProbe::default()),
        })
    }

    #[test]
    fn hit_miss_accounting_and_lru_eviction() {
        let e = entry(1);
        let per_entry = e.approx_bytes();
        // Budget fits exactly two entries.
        let cache = WarmCache::new(per_entry * 2 + per_entry / 2);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, e);
        cache.insert(2, entry(2));
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).is_some());
        // A third entry forces out the least-recently-used (key 1 was
        // touched before key 2... but 1 was re-touched; LRU is 1? Both
        // were touched: order 1 then 2, so 1 is older).
        cache.insert(3, entry(3));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= stats.budget, "invariant");
        assert!(cache.lookup(1).is_none(), "key 1 was LRU");
        assert!(cache.lookup(2).is_some());
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn oversized_entry_is_never_admitted() {
        let e = entry(9);
        let cache = WarmCache::new(e.approx_bytes() - 1);
        cache.insert(9, e);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn reweigh_enforces_the_budget_after_growth() {
        let e = entry(5);
        let cache = WarmCache::new(e.approx_bytes() + 100);
        cache.insert(5, Arc::clone(&e));
        assert_eq!(cache.stats().entries, 1);
        // Simulate probe growth past the budget by warming the memo
        // table: reweigh must evict the (only) entry to keep the
        // invariant strict. approx_bytes is monotone in memo size, so
        // force growth through the probe itself.
        let roots: Vec<_> = e
            .netlist
            .flip_flops()
            .into_iter()
            .chain(e.netlist.inbound_tsvs())
            .collect();
        let cones = prebond3d_netlist::cone::ConeSet::compute(&e.netlist, &roots);
        let ff = e.netlist.flip_flops()[0];
        let t = e.netlist.inbound_tsvs()[0];
        use prebond3d_wcm::testability::TestabilityProbe;
        while e.probe.approx_bytes() <= cache.budget() {
            e.probe.sharing_cost(&e.netlist, &cones, ff, t);
            let grew = e.probe.approx_bytes();
            if grew == 0 {
                break;
            }
            // The dedicated baseline alone usually overshoots a budget
            // this tight after one probe; bail if it somehow cannot.
            if e.probe.cache_len() > 64 {
                break;
            }
        }
        cache.reweigh(5);
        let stats = cache.stats();
        assert!(stats.bytes <= stats.budget, "strict invariant");
    }
}

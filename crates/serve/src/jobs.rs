//! Job execution: one submit frame → one flow run on warm state.
//!
//! Every job runs under `obs::capture_recorded` (request-scoped
//! telemetry) and `catch_unwind` (panic isolation), and reports through
//! the bench driver's exit-code contract, per job instead of per process:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | rejected by the static admission gate: the die's wrapper boundary is statically untestable (`prebond3d_dataflow::boundary::check`), so the flow never runs |
//! | 2    | bad job spec: unknown circuit/die, unparsable inline netlist |
//! | 3    | degraded: the flow completed but recorded degradations (e.g. a `PREBOND3D_BUDGET_MS` phase deadline expired) |
//! | 4    | fatal: flow error or escaped panic, isolated to this job |
//!
//! The `done` frame separates the **deterministic report** (plan,
//! hardware counts, phase statistics, STA verdict — byte-identical for a
//! given job at any thread count, cold or warm) from the
//! **telemetry** (wall clocks, cache disposition, counters), so clients
//! and the determinism suite can compare `report` verbatim.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use prebond3d_celllib::Library;
use prebond3d_netlist::{format, itc99, tuning, Netlist};
use prebond3d_obs as obs;
use prebond3d_obs::json::Value;
use prebond3d_place::{place, PlaceConfig, Placement};
use prebond3d_resilience as resil;
use prebond3d_wcm::flow::{run_flow_with_probe, FlowConfig, FlowResult};
use prebond3d_wcm::testability::{AtpgProbe, StructuralProbe, TestabilityProbe};

use crate::cache::{WarmCache, WarmEntry};
use crate::proto::{method_wire, scenario_wire, JobSource, JobSpec, ProbeKind};

/// The terminal verdict of one job, plus its event frames.
#[derive(Debug)]
pub struct JobOutcome {
    /// Per-job exit code (0–4; see the module table).
    pub code: i32,
    /// `hit` / `miss` / `bypass` (cache disabled via `PREBOND3D_NO_CACHE`).
    pub cache_tag: &'static str,
    /// `phase` frames (per-span telemetry), in completion order.
    pub phases: Vec<Value>,
    /// The terminal `done` frame.
    pub done: Value,
}

/// What the in-capture body hands back on success.
struct JobSuccess {
    flow: FlowResult,
    circuit: String,
    die_label: String,
    sig: u64,
}

/// Non-panic failure inside the body.
enum JobFail {
    /// Bad job spec → code 2.
    Bad(String),
    /// Statically-untestable wrapper boundary → code 1 (admission gate),
    /// carrying the per-issue descriptions so clients can act on them.
    Rejected {
        message: String,
        issues: Vec<String>,
    },
    /// Flow error → its own exit code (1 or 4).
    Flow(prebond3d_wcm::flow::FlowError),
}

/// Placement effort mirrors the bench harness scaling: annealing effort
/// only perturbs distances, and the largest benchmarks would otherwise
/// dominate cold-start latency.
fn place_die(netlist: &Netlist) -> Placement {
    let moves = if netlist.len() > 20_000 {
        4
    } else if netlist.len() > 5_000 {
        10
    } else {
        24
    };
    let config = PlaceConfig {
        moves_per_cell: moves,
        ..PlaceConfig::default()
    };
    place(netlist, &config, 1)
}

/// The content-addressed idempotency key of a job: an FNV over the
/// client id, the netlist source (generation inputs, or the inline
/// netlist's *content signature* — whitespace-equivalent retries
/// collide), method, scenario, probe, `return_plan` and `budget_ms`.
/// A client retrying the same logical submit lands on the same key (the
/// journal dedups it to exactly-once); any differing field yields a
/// distinct key. `None` when the source is unparsable — such a job can't
/// be content-addressed, is never journaled, and fails with code 2 in
/// the worker as before.
pub fn idempotency_key(spec: &JobSpec) -> Option<u64> {
    let source = source_key(&spec.source).ok()?;
    let mut h = resil::fnv1a(b"job:");
    h = resil::fnv1a_more(h, spec.id.as_bytes());
    h = resil::fnv1a_more(h, &source.to_le_bytes());
    h = resil::fnv1a_more(h, method_wire(spec.method).as_bytes());
    h = resil::fnv1a_more(h, scenario_wire(spec.scenario).as_bytes());
    h = resil::fnv1a_more(
        h,
        match spec.probe {
            ProbeKind::Structural => &b"structural"[..],
            ProbeKind::Atpg => &b"atpg"[..],
        },
    );
    h = resil::fnv1a_more(h, &[u8::from(spec.return_plan)]);
    h = resil::fnv1a_more(h, &spec.budget_ms.map_or(u64::MAX, |ms| ms).to_le_bytes());
    Some(h)
}

/// Warm-cache key for a job source. Generated substrates key on the
/// deterministic generation inputs (no need to generate first); inline
/// netlists on their content signature.
fn source_key(source: &JobSource) -> Result<u64, String> {
    match source {
        JobSource::Generated { circuit, die } => {
            let mut h = resil::fnv1a(b"gen:");
            h = resil::fnv1a_more(h, circuit.as_bytes());
            h = resil::fnv1a_more(h, &(*die as u64).to_le_bytes());
            Ok(h)
        }
        JobSource::Inline { text } => {
            let netlist = format::parse(text).map_err(|e| format!("inline netlist: {e}"))?;
            Ok(resil::fnv1a_more(
                resil::fnv1a(b"inline:"),
                &netlist.signature().to_le_bytes(),
            ))
        }
    }
}

/// Build the substrate cold (generate or parse, then place).
fn build_entry(source: &JobSource) -> Result<WarmEntry, String> {
    let netlist = match source {
        JobSource::Generated { circuit, die } => {
            let spec =
                itc99::circuit(circuit).ok_or_else(|| format!("unknown circuit `{circuit}`"))?;
            let die_spec = spec.dies.get(*die).ok_or_else(|| {
                format!(
                    "circuit `{circuit}` has {} dies, no die {die}",
                    spec.dies.len()
                )
            })?;
            itc99::generate_die(die_spec)
        }
        JobSource::Inline { text } => {
            format::parse(text).map_err(|e| format!("inline netlist: {e}"))?
        }
    };
    let placement = {
        let _s = obs::span("serve_place");
        place_die(&netlist)
    };
    Ok(WarmEntry {
        netlist,
        placement,
        probe: Arc::new(AtpgProbe::default()),
    })
}

fn flow_config(spec: &JobSpec) -> FlowConfig {
    FlowConfig {
        method: spec.method,
        scenario: spec.scenario,
        ordering: None,
        allow_overlap: None,
    }
}

/// The deterministic `report` payload of a `done` frame.
fn report_json(spec: &JobSpec, s: &JobSuccess) -> Value {
    let phases: Vec<Value> = s
        .flow
        .phases
        .iter()
        .map(|p| {
            Value::obj([
                ("direction", format!("{:?}", p.direction).into()),
                ("nodes", p.nodes.into()),
                ("edges", p.edges.into()),
                ("overlap_edges", p.overlap_edges.into()),
            ])
        })
        .collect();
    let plan_text = format!("{:?}", s.flow.plan);
    let mut fields = vec![
        ("circuit", s.circuit.as_str().into()),
        ("die", s.die_label.as_str().into()),
        ("method", method_wire(spec.method).into()),
        ("scenario", scenario_wire(spec.scenario).into()),
        ("netlist_sig", format!("{:016x}", s.sig).into()),
        ("reused_scan_ffs", s.flow.reused_scan_ffs.into()),
        (
            "additional_wrapper_cells",
            s.flow.additional_wrapper_cells.into(),
        ),
        ("phases", Value::Arr(phases)),
        ("wns", s.flow.wns_after.0.into()),
        ("timing_violation", s.flow.timing_violation.into()),
        ("clock_period", s.flow.clock_period.0.into()),
        (
            "plan_fnv",
            format!("{:016x}", resil::fnv1a(plan_text.as_bytes())).into(),
        ),
    ];
    if spec.return_plan {
        fields.push(("plan", plan_text.into()));
    }
    Value::obj(fields)
}

/// Run one job to its terminal frame. Never panics; never poisons shared
/// state (the flow's own locks are per-probe and per-call).
pub fn run_job(spec: &JobSpec, cache: &WarmCache) -> JobOutcome {
    let t0 = Instant::now();
    // Events recorded before this job are not its degradations. This is a
    // process-global registry, so attribution across *concurrent* jobs is
    // coarse (documented in DESIGN.md §13): a degradation is charged to
    // every job in flight when it drains.
    let stale = resil::degrade::drain();
    drop(stale);

    let cache_tag = std::cell::Cell::new("miss");
    let cached_key = std::cell::Cell::new(None::<u64>);
    let body = || -> Result<JobSuccess, JobFail> {
        let key = source_key(&spec.source).map_err(JobFail::Bad)?;
        let entry: Arc<WarmEntry> = if tuning::cache_enabled() {
            match cache.lookup(key) {
                Some(hit) => {
                    cache_tag.set("hit");
                    hit
                }
                None => {
                    let built = Arc::new(build_entry(&spec.source).map_err(JobFail::Bad)?);
                    cache.insert(key, Arc::clone(&built));
                    built
                }
            }
        } else {
            cache_tag.set("bypass");
            Arc::new(build_entry(&spec.source).map_err(JobFail::Bad)?)
        };
        if tuning::cache_enabled() {
            cached_key.set(Some(key));
        }
        // --- Static admission gate (DESIGN.md §14) ----------------------
        // A statically-untestable wrapper boundary means every ATPG cycle
        // spent on this die is wasted and the resulting coverage tables
        // silently skewed: refuse the submission before the flow runs.
        let issues = prebond3d_dataflow::boundary::check(&entry.netlist);
        if !issues.is_empty() {
            obs::count("serve.rejected", 1);
            let detail: Vec<String> = issues.iter().map(|i| i.describe(&entry.netlist)).collect();
            return Err(JobFail::Rejected {
                message: format!("boundary statically untestable: {}", detail.join("; ")),
                issues: detail,
            });
        }
        let library = Library::nangate45_like();
        let config = flow_config(spec);
        let structural = StructuralProbe::default();
        let probe: &dyn TestabilityProbe = match spec.probe {
            ProbeKind::Structural => &structural,
            ProbeKind::Atpg => entry.probe.as_ref(),
        };
        let flow = run_flow_with_probe(&entry.netlist, &entry.placement, &library, &config, probe)
            .map_err(JobFail::Flow)?;
        let (circuit, die_label) = match &spec.source {
            JobSource::Generated { circuit, die } => (circuit.clone(), format!("die{die}")),
            JobSource::Inline { .. } => (entry.netlist.name().to_string(), "inline".to_string()),
        };
        let sig = entry.netlist.signature();
        Ok(JobSuccess {
            flow,
            circuit,
            die_label,
            sig,
        })
    };
    // A per-job `budget_ms` overrides the ambient phase budget on this
    // worker thread for the duration of the job; the pool copies the
    // override into its scoped workers, so parallel phases (ATPG pair
    // scans, fault sim) see the same deadline the job asked for.
    let (result, snap) = resil::budget::with_thread_budget_ms(spec.budget_ms, || {
        obs::capture_recorded(|| catch_unwind(AssertUnwindSafe(body)))
    });

    // A warm probe grew during the job: re-estimate and re-enforce the
    // byte budget.
    if let Some(key) = cached_key.get() {
        cache.reweigh(key);
    }

    let degradations = resil::degrade::drain();
    let mut boundary_issues: Option<Vec<String>> = None;
    let (code, report, error) = match result {
        Ok(Ok(success)) => {
            let code = if degradations.is_empty() { 0 } else { 3 };
            (code, Some(report_json(spec, &success)), None)
        }
        Ok(Err(JobFail::Bad(msg))) => (2, None, Some(msg)),
        Ok(Err(JobFail::Rejected { message, issues })) => {
            boundary_issues = Some(issues);
            (1, None, Some(message))
        }
        Ok(Err(JobFail::Flow(e))) => (e.exit_code(), None, Some(e.to_string())),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (4, None, Some(format!("job panicked: {msg}")))
        }
    };

    let phases: Vec<Value> = snap
        .spans
        .iter()
        .map(|s| {
            Value::obj([
                ("ok", true.into()),
                ("ev", "phase".into()),
                ("id", spec.id.as_str().into()),
                ("path", s.path.as_str().into()),
                ("count", s.count.into()),
                ("ms", s.total_ms().into()),
            ])
        })
        .collect();
    let counters = Value::Obj(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect(),
    );
    let mut done_fields = vec![
        ("ok", true.into()),
        ("ev", "done".into()),
        ("id", spec.id.as_str().into()),
        ("code", Value::Num(f64::from(code))),
        ("cache", cache_tag.get().into()),
        ("ms", (t0.elapsed().as_secs_f64() * 1e3).into()),
        ("degraded", degradations.len().into()),
        (
            "degradations",
            Value::Arr(
                degradations
                    .iter()
                    .map(|d| {
                        Value::obj([
                            ("phase", d.phase.into()),
                            ("action", d.action.into()),
                            ("detail", d.detail.as_str().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("counters", counters),
    ];
    if let Some(r) = report {
        done_fields.push(("report", r));
    }
    if let Some(e) = error {
        done_fields.push(("error", e.as_str().into()));
    }
    if let Some(issues) = boundary_issues {
        done_fields.push((
            "issues",
            Value::Arr(issues.iter().map(|i| i.as_str().into()).collect()),
        ));
    }
    JobOutcome {
        code,
        cache_tag: cache_tag.get(),
        phases,
        done: Value::obj(done_fields),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use crate::proto::Request;

    fn spec(line: &str) -> JobSpec {
        match parse_request(line).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_circuit_is_code_2() {
        let cache = WarmCache::new(1 << 20);
        let out = run_job(&spec(r#"{"op":"submit","id":"x","circuit":"b99"}"#), &cache);
        assert_eq!(out.code, 2);
        assert_eq!(
            out.done.get("error").and_then(Value::as_str).unwrap(),
            "unknown circuit `b99`"
        );
        assert!(out.done.get("report").is_none());
    }

    #[test]
    fn out_of_range_die_and_bad_inline_are_code_2() {
        let cache = WarmCache::new(1 << 20);
        let out = run_job(
            &spec(r#"{"op":"submit","id":"x","circuit":"b11","die":99}"#),
            &cache,
        );
        assert_eq!(out.code, 2);
        let out = run_job(
            &spec(r#"{"op":"submit","id":"x","netlist":"not a netlist"}"#),
            &cache,
        );
        assert_eq!(out.code, 2);
    }

    #[test]
    fn statically_untestable_boundary_is_rejected_with_code_1() {
        let cache = WarmCache::new(1 << 20);
        // The outbound TSV is driven by a provable constant: no wrapper
        // configuration can exercise the boundary, so the gate refuses
        // the job before the flow runs.
        let line = r#"{"op":"submit","id":"r","netlist":"circuit bad\na = input()\nc1 = const1()\ng = or(a, c1)\nto = tsv_out(g)\no = output(a)\n"}"#;
        let out = run_job(&spec(line), &cache);
        assert_eq!(out.code, 1, "{:?}", out.done.get("error"));
        let error = out.done.get("error").and_then(Value::as_str).unwrap();
        assert!(error.contains("boundary statically untestable"), "{error}");
        assert!(error.contains("provably constant"), "{error}");
        assert!(out.done.get("report").is_none());
        // The structured issue list rides on the done frame so clients
        // can act on each boundary problem without parsing the message.
        let issues = out.done.get("issues").and_then(Value::as_arr).unwrap();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0]
            .as_str()
            .unwrap()
            .contains("provably constant"));
        // The rejection happened before any flow span opened.
        assert!(!out
            .phases
            .iter()
            .any(|p| p.get("path").and_then(Value::as_str) == Some("flow")));
    }

    #[test]
    fn idempotency_keys_are_content_addressed() {
        let a = spec(r#"{"op":"submit","id":"j","circuit":"b11","die":0}"#);
        let b = spec(r#"{"op":"submit","id":"j","circuit":"b11","die":0,"probe":"structural"}"#);
        assert_eq!(
            idempotency_key(&a),
            idempotency_key(&b),
            "defaulted and explicit forms of the same job collide"
        );
        for different in [
            r#"{"op":"submit","id":"k","circuit":"b11","die":0}"#,
            r#"{"op":"submit","id":"j","circuit":"b11","die":1}"#,
            r#"{"op":"submit","id":"j","circuit":"b11","die":0,"method":"li"}"#,
            r#"{"op":"submit","id":"j","circuit":"b11","die":0,"probe":"atpg"}"#,
            r#"{"op":"submit","id":"j","circuit":"b11","die":0,"budget_ms":100}"#,
            r#"{"op":"submit","id":"j","circuit":"b11","die":0,"return_plan":true}"#,
        ] {
            assert_ne!(
                idempotency_key(&a),
                idempotency_key(&spec(different)),
                "{different}"
            );
        }
        // An unparsable inline netlist cannot be content-addressed.
        assert_eq!(
            idempotency_key(&spec(r#"{"op":"submit","id":"j","netlist":"garbage"}"#)),
            None
        );
    }

    #[test]
    fn budget_ms_degrades_to_best_so_far_with_code_3() {
        let cache = WarmCache::new(256 << 20);
        let line =
            r#"{"op":"submit","id":"b","circuit":"b11","die":0,"probe":"atpg","budget_ms":0}"#;
        let out = run_job(&spec(line), &cache);
        assert_eq!(out.code, 3, "{:?}", out.done.get("error"));
        let n = out.done.get("degraded").and_then(Value::as_u64).unwrap();
        assert!(n > 0);
        let listed = out
            .done
            .get("degradations")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(listed.len() as u64, n);
        assert!(listed[0].get("phase").and_then(Value::as_str).is_some());
        // Degradation is telemetry, not report shape: the report is still
        // present and well-formed.
        assert!(out.done.get("report").is_some());
    }

    #[test]
    fn repeat_job_hits_the_warm_cache_and_reports_identically() {
        let cache = WarmCache::new(256 << 20);
        let line = r#"{"op":"submit","id":"j","circuit":"b11","die":0,"return_plan":true}"#;
        let cold = run_job(&spec(line), &cache);
        assert_eq!(cold.code, 0, "{:?}", cold.done.get("error"));
        assert_eq!(cold.cache_tag, "miss");
        let warm = run_job(&spec(line), &cache);
        assert_eq!(warm.code, 0);
        assert_eq!(warm.cache_tag, "hit");
        // The deterministic report must be byte-identical cold vs warm.
        assert_eq!(
            cold.done.get("report").unwrap().to_string(),
            warm.done.get("report").unwrap().to_string()
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // Phase frames cover the flow spans.
        assert!(cold
            .phases
            .iter()
            .any(|p| p.get("path").and_then(Value::as_str) == Some("flow")));
    }
}

//! # prebond3d-serve
//!
//! WCM-as-a-service: a std-only daemon that accepts wrapper-cell
//! minimization jobs over a newline-delimited JSON protocol (TCP or unix
//! socket), runs them with per-job panic isolation and exit codes on a
//! persistent executor pool, and keeps substrates + `AtpgProbe` memo
//! tables **warm across requests** behind a byte-budgeted LRU
//! ([`cache::WarmCache`]). See DESIGN.md §13 for the protocol grammar,
//! cache keying/eviction and the job lifecycle.
//!
//! ```no_run
//! let server = prebond3d_serve::Server::start(prebond3d_serve::ServerConfig::default())
//!     .expect("bind");
//! println!("listening on {}", server.addr().unwrap());
//! server.join();
//! ```
//!
//! One connection runs one job at a time (frames of a job are never
//! interleaved with another job's on the same socket); concurrency comes
//! from concurrent connections, bounded by the executor worker count.

pub mod cache;
pub mod jobs;
pub mod journal;
pub mod proto;

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use prebond3d_obs as obs;
use prebond3d_obs::json::Value;

use cache::WarmCache;
use journal::{DoneRecord, Journal};
use proto::{JobSpec, Request, MAX_LINE};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// TCP on an address like `127.0.0.1:0` (port 0 = ephemeral).
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Executor workers (concurrent jobs). Defaults to the pool's thread
    /// resolution, floored at 2 so one slow job cannot starve the queue.
    pub workers: usize,
    /// Warm-cache byte budget.
    pub cache_bytes: usize,
    /// Write-ahead job journal path (DESIGN.md §15). `None` disables
    /// durability: no recovery, no exactly-once dedup.
    pub journal: Option<PathBuf>,
    /// Admission cap on *queued* (not running) jobs; a submit arriving at
    /// a full queue is shed with a `retry_after` frame.
    pub max_queue: usize,
    /// Byte budget for queued job payloads (inline netlists dominate). A
    /// single job is always admitted into an empty queue regardless.
    pub queue_bytes: usize,
    /// Per-connection write timeout. A client that stops reading for this
    /// long has its frames dropped (the job still runs to completion and
    /// is journaled) instead of pinning the connection thread forever.
    pub write_timeout_ms: u64,
    /// Start with the queue held: submits are accepted (and journaled)
    /// but no worker dequeues until a `resume` op or [`Server::resume`].
    /// The ops lever for maintenance holds — and what makes crash drills
    /// deterministic: pause, submit, kill, restart, count the replays.
    pub paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: default_workers(),
            cache_bytes: WarmCache::budget_from_env(),
            journal: None,
            max_queue: default_max_queue(),
            queue_bytes: default_queue_bytes(),
            write_timeout_ms: default_write_timeout_ms(),
            paused: false,
        }
    }
}

/// `PREBOND3D_SERVE_WORKERS`, else the pool thread count, floored at 2.
pub fn default_workers() -> usize {
    std::env::var("PREBOND3D_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| prebond3d_pool::threads().max(2))
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// `PREBOND3D_SERVE_MAX_QUEUE`, default 256 queued jobs.
pub fn default_max_queue() -> usize {
    env_usize("PREBOND3D_SERVE_MAX_QUEUE", 256)
}

/// `PREBOND3D_SERVE_QUEUE_BYTES`, default 32 MiB of queued payload.
pub fn default_queue_bytes() -> usize {
    env_usize("PREBOND3D_SERVE_QUEUE_BYTES", 32 << 20)
}

/// `PREBOND3D_SERVE_WRITE_TIMEOUT_MS`, default 10 s; `0` disables.
pub fn default_write_timeout_ms() -> u64 {
    env_usize("PREBOND3D_SERVE_WRITE_TIMEOUT_MS", 10_000) as u64
}

/// Monotonic job accounting, exported by the `stats` op.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Jobs accepted off the wire.
    pub submitted: AtomicU64,
    /// Jobs that reached a `done` frame with code 0.
    pub done_ok: AtomicU64,
    /// Jobs that reached a `done` frame with a non-zero code.
    pub done_failed: AtomicU64,
    /// Protocol errors answered (malformed frames, oversized lines).
    pub protocol_errors: AtomicU64,
    /// Submits shed by admission backpressure (answered `retry_after`,
    /// never journaled, never run — not counted in `submitted`).
    pub shed: AtomicU64,
    /// Unfinished journal entries replayed at startup.
    pub recovered: AtomicU64,
    /// Submits answered from the journal's done index without re-running.
    pub deduped: AtomicU64,
    /// Connections whose frames were dropped after a write timeout.
    pub slow_drops: AtomicU64,
}

struct QueuedJob {
    spec: JobSpec,
    /// Idempotency key, when the spec was content-addressable.
    key: Option<u64>,
    /// Payload estimate charged against the queue byte budget.
    bytes: u64,
    events: mpsc::Sender<Value>,
}

/// Payload estimate for the queue byte budget: the dominant term is an
/// inline netlist's text; everything else is a small fixed overhead.
fn job_bytes(spec: &JobSpec) -> u64 {
    let payload = match &spec.source {
        proto::JobSource::Inline { text } => text.len(),
        proto::JobSource::Generated { .. } => 0,
    };
    (payload + 512) as u64
}

/// How to poke the blocking accept loop awake after shutdown.
#[derive(Debug, Clone)]
enum WakeAddr {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

struct Shared {
    running: AtomicBool,
    /// A paused server accepts and journals submits but holds the queue
    /// until `resume` clears this (see [`ServerConfig::paused`]).
    paused: AtomicBool,
    /// An aborted server stops dequeuing even though jobs are queued —
    /// the in-process analogue of a SIGKILL for recovery tests: queued
    /// jobs stay journaled as accepted and replay on the next start.
    aborting: AtomicBool,
    queue: Mutex<VecDeque<QueuedJob>>,
    cond: Condvar,
    cache: WarmCache,
    stats: ServerStats,
    wake: Mutex<Option<WakeAddr>>,
    journal: Option<Journal>,
    /// Terminal records by idempotency key (journal mode only): identical
    /// retries replay from here instead of running twice.
    done_index: Mutex<HashMap<u64, DoneRecord>>,
    /// Keys accepted but not yet done (journal mode only).
    inflight: Mutex<HashSet<u64>>,
    /// Queued-but-not-dequeued jobs (admission depth; running jobs are
    /// the workers' concern, not the queue's).
    pending: AtomicU64,
    /// Payload bytes reserved by queued jobs.
    queued_bytes: AtomicU64,
    max_queue: usize,
    queue_bytes: u64,
    write_timeout_ms: u64,
    /// Corrupt journal lines skipped at the last recovery.
    journal_corrupt_lines: u64,
}

/// How long a shed client should back off, by queue depth at the shed.
fn retry_after_ms(depth: u64) -> u64 {
    (25 * (depth + 1)).min(2_000)
}

impl Shared {
    /// Admission control: reserve a queue slot and payload bytes, or shed.
    ///
    /// # Errors
    ///
    /// The queue is over its depth cap or byte budget; the value is the
    /// `retry_after_ms` to answer with. A single job is always admitted
    /// into an *empty* queue, so one oversized-but-legal payload cannot
    /// starve forever.
    fn admit(&self, bytes: u64) -> Result<(), u64> {
        let depth = self.pending.fetch_add(1, Ordering::SeqCst);
        let queued = self.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
        let over_depth = depth >= self.max_queue as u64;
        let over_bytes = depth > 0 && queued + bytes > self.queue_bytes;
        if over_depth || over_bytes {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            self.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            obs::count("serve.shed", 1);
            return Err(retry_after_ms(depth));
        }
        obs::hist("serve.queue_depth", depth + 1);
        Ok(())
    }

    /// Enqueue an already-admitted job (its slot and bytes are reserved).
    fn enqueue(&self, job: QueuedJob) {
        self.queue.lock().unwrap().push_back(job);
        self.cond.notify_one();
    }

    /// Pop the next job; blocks until one arrives or shutdown drains the
    /// queue empty. An abort stops dequeuing immediately, leaving the
    /// queue's jobs journaled for the next start.
    fn dequeue(&self) -> Option<QueuedJob> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if self.aborting.load(Ordering::SeqCst) {
                return None;
            }
            if !self.paused.load(Ordering::SeqCst) {
                if let Some(job) = q.pop_front() {
                    self.pending.fetch_sub(1, Ordering::SeqCst);
                    self.queued_bytes.fetch_sub(job.bytes, Ordering::SeqCst);
                    return Some(job);
                }
            }
            if !self.running.load(Ordering::SeqCst) {
                return None;
            }
            q = self.cond.wait(q).unwrap();
        }
    }

    /// Release a paused queue; a no-op when already draining.
    fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
        let _guard = self.queue.lock().unwrap();
        self.cond.notify_all();
    }

    /// A finished job's terminal record: journal it and index it for
    /// exactly-once replay. No-op without a journal.
    fn finish(&self, key: Option<u64>, record: DoneRecord) {
        let (Some(journal), Some(key)) = (&self.journal, key) else {
            return;
        };
        journal.done(key, &record);
        self.done_index.lock().unwrap().insert(key, record);
        self.inflight.lock().unwrap().remove(&key);
    }

    fn stats_frame(&self) -> Value {
        let c = self.cache.stats();
        Value::obj([
            ("ok", true.into()),
            ("ev", "stats".into()),
            (
                "jobs",
                Value::obj([
                    (
                        "submitted",
                        self.stats.submitted.load(Ordering::Relaxed).into(),
                    ),
                    ("done", self.stats.done_ok.load(Ordering::Relaxed).into()),
                    (
                        "failed",
                        self.stats.done_failed.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "protocol_errors",
                        self.stats.protocol_errors.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "cache",
                Value::obj([
                    ("hits", c.hits.into()),
                    ("misses", c.misses.into()),
                    ("evictions", c.evictions.into()),
                    ("entries", c.entries.into()),
                    ("bytes", (c.bytes as u64).into()),
                    ("budget", (c.budget as u64).into()),
                ]),
            ),
            (
                "queue",
                Value::obj([
                    ("depth", self.pending.load(Ordering::SeqCst).into()),
                    ("bytes", self.queued_bytes.load(Ordering::SeqCst).into()),
                    ("paused", self.paused.load(Ordering::SeqCst).into()),
                    ("max_depth", self.max_queue.into()),
                    ("byte_budget", self.queue_bytes.into()),
                    ("shed", self.stats.shed.load(Ordering::Relaxed).into()),
                    (
                        "slow_drops",
                        self.stats.slow_drops.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "journal",
                Value::obj([
                    ("armed", self.journal.is_some().into()),
                    (
                        "pending",
                        (self.inflight.lock().unwrap().len() as u64).into(),
                    ),
                    (
                        "done",
                        (self.done_index.lock().unwrap().len() as u64).into(),
                    ),
                    (
                        "recovered",
                        self.stats.recovered.load(Ordering::Relaxed).into(),
                    ),
                    ("deduped", self.stats.deduped.load(Ordering::Relaxed).into()),
                    ("corrupt_lines", self.journal_corrupt_lines.into()),
                ]),
            ),
            (
                "mem",
                Value::obj([
                    (
                        "rss_now_kb",
                        prebond3d_obs::mem::rss_now_kb().unwrap_or(0).into(),
                    ),
                    (
                        "rss_peak_kb",
                        prebond3d_obs::mem::rss_peak_kb().unwrap_or(0).into(),
                    ),
                ]),
            ),
        ])
    }

    /// The `status` response for one idempotency key (wire form).
    fn status_frame(&self, key_text: &str) -> Value {
        let Some(key) = journal::parse_key(key_text) else {
            return proto::error(None, &format!("bad status key `{key_text}`"));
        };
        let mut fields = vec![
            ("ok", true.into()),
            ("ev", "status".into()),
            ("key", key_text.into()),
        ];
        if let Some(record) = self.done_index.lock().unwrap().get(&key) {
            fields.push(("state", "done".into()));
            fields.push(("code", Value::Num(record.code as f64)));
            if let Some(r) = &record.report {
                fields.push(("report", r.clone()));
            }
            if let Some(e) = &record.error {
                fields.push(("error", e.as_str().into()));
            }
        } else if self.inflight.lock().unwrap().contains(&key) {
            fields.push(("state", "pending".into()));
        } else {
            fields.push(("state", "unknown".into()));
        }
        Value::obj(fields)
    }
}

/// A `done` frame replayed from the journal for a deduplicated retry.
/// The `report` sub-object is byte-identical to the original run's; the
/// telemetry fields reflect that nothing ran (`"cache":"journal"`,
/// `"dedup":true`).
fn replay_done(id: &str, key_text: &str, record: &DoneRecord) -> Value {
    let mut fields = vec![
        ("ok", true.into()),
        ("ev", "done".into()),
        ("id", id.into()),
        ("key", key_text.into()),
        ("code", Value::Num(record.code as f64)),
        ("cache", "journal".into()),
        ("dedup", true.into()),
        ("ms", 0u64.into()),
        ("degraded", 0u64.into()),
        ("degradations", Value::Arr(Vec::new())),
        ("counters", Value::Obj(std::collections::BTreeMap::new())),
    ];
    if let Some(r) = &record.report {
        fields.push(("report", r.clone()));
    }
    if let Some(e) = &record.error {
        fields.push(("error", e.as_str().into()));
    }
    if let Some(i) = &record.issues {
        fields.push(("issues", i.clone()));
    }
    Value::obj(fields)
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send the `shutdown` op) then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Worker threads and the accept thread are
    /// spawned before this returns.
    ///
    /// # Errors
    ///
    /// Binding the listener failed.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let (listener, addr) = match &config.bind {
            Bind::Tcp(spec) => {
                let l = TcpListener::bind(spec)?;
                let addr = l.local_addr()?;
                (Listener::Tcp(l), Some(addr))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run refuses the bind.
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(std::os::unix::net::UnixListener::bind(path)?),
                    None,
                )
            }
        };
        let wake = match (&config.bind, addr) {
            (Bind::Tcp(_), Some(a)) => Some(WakeAddr::Tcp(a)),
            #[cfg(unix)]
            (Bind::Unix(path), _) => Some(WakeAddr::Unix(path.clone())),
            _ => None,
        };
        // Arm the journal first: recovery must be indexed before any
        // connection can race a dedup lookup, and the crash's orphans go
        // back on the queue before the workers start.
        let (journal, recovery) = match &config.journal {
            Some(path) => {
                let (j, r) = Journal::open(path)?;
                (Some(j), r)
            }
            None => (None, journal::Recovery::default()),
        };
        let shared = Arc::new(Shared {
            running: AtomicBool::new(true),
            paused: AtomicBool::new(config.paused),
            aborting: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            cache: WarmCache::new(config.cache_bytes),
            stats: ServerStats::default(),
            wake: Mutex::new(wake),
            journal,
            done_index: Mutex::new(recovery.done.into_iter().collect()),
            inflight: Mutex::new(HashSet::new()),
            pending: AtomicU64::new(0),
            queued_bytes: AtomicU64::new(0),
            max_queue: config.max_queue,
            queue_bytes: config.queue_bytes as u64,
            write_timeout_ms: config.write_timeout_ms,
            journal_corrupt_lines: recovery.corrupt_lines as u64,
        });
        for job in recovery.pending {
            // Replayed jobs have no client: the events channel is born
            // orphaned (exact same draining semantics as a mid-job
            // disconnect) and results land in the journal + done index.
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            shared.stats.recovered.fetch_add(1, Ordering::Relaxed);
            obs::count("serve.recovered", 1);
            let bytes = job_bytes(&job.spec);
            // Recovery bypasses admission: these jobs were admitted by a
            // previous life of this daemon.
            shared.pending.fetch_add(1, Ordering::SeqCst);
            shared.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
            shared.inflight.lock().unwrap().insert(job.key);
            let (tx, _) = mpsc::channel();
            shared.enqueue(QueuedJob {
                spec: job.spec,
                key: Some(job.key),
                bytes,
                events: tx,
            });
        }
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound TCP address (None for unix sockets).
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Warm-cache statistics.
    pub fn cache_stats(&self) -> cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Job accounting: `(submitted, done_ok, done_failed)`.
    pub fn job_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.submitted.load(Ordering::Relaxed),
            self.shared.stats.done_ok.load(Ordering::Relaxed),
            self.shared.stats.done_failed.load(Ordering::Relaxed),
        )
    }

    /// Durability accounting: `(shed, recovered, deduped, slow_drops)`.
    pub fn robustness_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.shared.stats.shed.load(Ordering::Relaxed),
            self.shared.stats.recovered.load(Ordering::Relaxed),
            self.shared.stats.deduped.load(Ordering::Relaxed),
            self.shared.stats.slow_drops.load(Ordering::Relaxed),
        )
    }

    /// The full `stats` frame, as the wire op would report it.
    pub fn stats_json(&self) -> Value {
        self.shared.stats_frame()
    }

    /// Stop accepting, let queued jobs drain, and wake everything up.
    /// Idempotent; also triggered by the `shutdown` op.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }

    /// The in-process analogue of a crash, for recovery tests: stop
    /// dequeuing **immediately**, abandoning queued jobs. Jobs already
    /// running finish (and journal their `done`); everything still queued
    /// stays journaled as accepted and replays on the next
    /// [`Server::start`] with the same `--journal`. Call [`Server::join`]
    /// afterwards as usual.
    /// Release a queue held by [`ServerConfig::paused`] (also reachable
    /// over the wire as the `resume` op). A no-op when already draining.
    pub fn resume(&self) {
        self.shared.resume();
    }

    pub fn abort(&self) {
        self.shared.aborting.store(true, Ordering::SeqCst);
        // Drop the abandoned queue entries now: their event senders go
        // with them, so connection threads blocked on a job's frames see
        // a disconnect instead of hanging. The jobs themselves stay
        // journaled as accepted — that is the recovery contract.
        self.shared.queue.lock().unwrap().clear();
        request_shutdown(&self.shared);
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`Server::shutdown`] (or after a client sent the `shutdown` op).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    shared.running.store(false, Ordering::SeqCst);
    shared.cond.notify_all();
    // Unblock the accept loop with a throwaway connection; take() makes
    // repeated shutdowns poke at most once.
    let wake = shared.wake.lock().unwrap().take();
    match wake {
        Some(WakeAddr::Tcp(addr)) => {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        Some(WakeAddr::Unix(path)) => {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        None => {}
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.dequeue() {
        if let (Some(journal), Some(key)) = (&shared.journal, job.key) {
            journal.running(key);
        }
        let outcome = jobs::run_job(&job.spec, &shared.cache);
        if outcome.code == 0 {
            shared.stats.done_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.done_failed.fetch_add(1, Ordering::Relaxed);
        }
        shared.finish(
            job.key,
            DoneRecord {
                code: i64::from(outcome.code),
                report: outcome.done.get("report").cloned(),
                error: outcome
                    .done
                    .get("error")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                issues: outcome.done.get("issues").cloned(),
            },
        );
        // A gone client (mid-job disconnect) just drops the frames.
        for frame in outcome.phases {
            let _ = job.events.send(frame);
        }
        let _ = job.events.send(outcome.done);
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    loop {
        let stream: Box<dyn Conn> = match listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
        };
        if !shared.running.load(Ordering::SeqCst) {
            // The wake-up connection (or any late client) is refused.
            return;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_conn(stream, &shared));
    }
}

/// The two stream types behind one object: both are `Read + Write` and
/// cloneable into an independently owned reader half, and both support
/// a write timeout for slow-client isolation.
trait Conn: Read + Write + Send {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>>;
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl Conn for std::os::unix::net::UnixStream {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        std::os::unix::net::UnixStream::set_write_timeout(self, timeout)
    }
}

/// Read one `\n`-terminated line, bounded by [`MAX_LINE`].
///
/// Returns `Ok(None)` on EOF, `Err(())` when the line exceeded the bound
/// (the tail is consumed and discarded so the stream stays framed).
fn read_line_bounded(
    reader: &mut BufReader<Box<dyn Read + Send>>,
    buf: &mut Vec<u8>,
) -> std::io::Result<Result<Option<usize>, ()>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if n > MAX_LINE {
        // Discard the rest of the oversized line.
        loop {
            let mut skip = Vec::with_capacity(4096);
            let m = reader.by_ref().take(4096).read_until(b'\n', &mut skip)?;
            if m == 0 || skip.last() == Some(&b'\n') {
                break;
            }
        }
        return Ok(Err(()));
    }
    Ok(Ok(Some(n)))
}

fn write_frame(w: &mut dyn Write, frame: &Value) -> std::io::Result<()> {
    writeln!(w, "{frame}")?;
    w.flush()
}

/// Write a frame to a client; `false` means the connection is dead (to
/// us). A write *timeout* — the slow-client case — is counted separately
/// from a plain disconnect: the stalled reader loses its frames, but the
/// job keeps running and its outcome is journaled.
fn conn_send(shared: &Shared, w: &mut dyn Write, frame: &Value) -> bool {
    match write_frame(w, frame) {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ) {
                shared.stats.slow_drops.fetch_add(1, Ordering::Relaxed);
                obs::count("serve.slow_client_drops", 1);
            }
            false
        }
    }
}

fn handle_conn(mut stream: Box<dyn Conn>, shared: &Arc<Shared>) {
    if shared.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.write_timeout_ms)));
    }
    let Ok(read_half) = stream.reader() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    loop {
        match read_line_bounded(&mut reader, &mut buf) {
            Err(_) | Ok(Ok(None)) => return, // disconnect / EOF
            Ok(Err(())) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let e = proto::error(None, &format!("line exceeds {MAX_LINE} bytes"));
                if write_frame(&mut stream, &e).is_err() {
                    return;
                }
                continue;
            }
            Ok(Ok(Some(_))) => {}
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut stream, &proto::error(None, &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Ping => {
                if write_frame(&mut stream, &proto::pong()).is_err() {
                    return;
                }
            }
            Request::Stats => {
                if write_frame(&mut stream, &shared.stats_frame()).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &proto::bye());
                request_shutdown(shared);
                return;
            }
            Request::Resume => {
                shared.resume();
                if write_frame(&mut stream, &proto::resumed()).is_err() {
                    return;
                }
            }
            Request::Status { key } => {
                if !conn_send(shared, &mut stream, &shared.status_frame(&key)) {
                    return;
                }
            }
            Request::Submit(spec) => {
                let key = jobs::idempotency_key(&spec);
                let key_text = key.map(journal::key_hex).unwrap_or_default();
                if shared.journal.is_some() {
                    if let Some(key) = key {
                        // Exactly-once dedup: an identical submit already
                        // completed — replay its terminal record (the
                        // `report` is byte-identical) without re-running.
                        let record = shared.done_index.lock().unwrap().get(&key).cloned();
                        if let Some(record) = record {
                            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
                            obs::count("serve.deduped", 1);
                            if !conn_send(shared, &mut stream, &proto::accepted(&spec.id, &key_text))
                                || !conn_send(
                                    shared,
                                    &mut stream,
                                    &replay_done(&spec.id, &key_text, &record),
                                )
                            {
                                return;
                            }
                            continue;
                        }
                        // The same logical job is queued or running right
                        // now (a retry after a dropped connection):
                        // don't run it twice — tell the client to back
                        // off and poll `status` / resubmit.
                        if shared.inflight.lock().unwrap().contains(&key) {
                            obs::count("serve.inflight_retries", 1);
                            let frame = proto::retry_after(
                                &spec.id,
                                100,
                                "job already in flight; poll `status` or retry",
                            );
                            if !conn_send(shared, &mut stream, &frame) {
                                return;
                            }
                            continue;
                        }
                    }
                }
                // Admission backpressure: a full queue sheds the submit
                // *before* it is journaled or counted as submitted.
                let bytes = job_bytes(&spec);
                if let Err(retry_ms) = shared.admit(bytes) {
                    let frame = proto::retry_after(
                        &spec.id,
                        retry_ms,
                        "queue over depth/byte budget; back off and retry",
                    );
                    if !conn_send(shared, &mut stream, &frame) {
                        return;
                    }
                    continue;
                }
                shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                // WAL ordering: journal the accepted entry before the job
                // becomes visible to workers, so every job a worker can
                // run is recoverable.
                if let (Some(journal), Some(key)) = (&shared.journal, key) {
                    shared.inflight.lock().unwrap().insert(key);
                    journal.accepted(key, &spec);
                }
                let client_gone =
                    !conn_send(shared, &mut stream, &proto::accepted(&spec.id, &key_text));
                let (tx, rx) = mpsc::channel();
                shared.enqueue(QueuedJob {
                    spec: *spec,
                    key,
                    bytes,
                    events: tx,
                });
                // Forward frames until the terminal `done`. On a dead
                // client keep draining so the job is fully consumed, then
                // close.
                let mut dead = client_gone;
                for frame in rx {
                    let is_done = frame.get("ev").and_then(Value::as_str) == Some("done");
                    if !dead && !conn_send(shared, &mut stream, &frame) {
                        dead = true;
                    }
                    if is_done {
                        break;
                    }
                }
                if dead {
                    return;
                }
            }
        }
    }
}

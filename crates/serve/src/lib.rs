//! # prebond3d-serve
//!
//! WCM-as-a-service: a std-only daemon that accepts wrapper-cell
//! minimization jobs over a newline-delimited JSON protocol (TCP or unix
//! socket), runs them with per-job panic isolation and exit codes on a
//! persistent executor pool, and keeps substrates + `AtpgProbe` memo
//! tables **warm across requests** behind a byte-budgeted LRU
//! ([`cache::WarmCache`]). See DESIGN.md §13 for the protocol grammar,
//! cache keying/eviction and the job lifecycle.
//!
//! ```no_run
//! let server = prebond3d_serve::Server::start(prebond3d_serve::ServerConfig::default())
//!     .expect("bind");
//! println!("listening on {}", server.addr().unwrap());
//! server.join();
//! ```
//!
//! One connection runs one job at a time (frames of a job are never
//! interleaved with another job's on the same socket); concurrency comes
//! from concurrent connections, bounded by the executor worker count.

pub mod cache;
pub mod jobs;
pub mod proto;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use prebond3d_obs::json::Value;

use cache::WarmCache;
use proto::{JobSpec, Request, MAX_LINE};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// TCP on an address like `127.0.0.1:0` (port 0 = ephemeral).
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Executor workers (concurrent jobs). Defaults to the pool's thread
    /// resolution, floored at 2 so one slow job cannot starve the queue.
    pub workers: usize,
    /// Warm-cache byte budget.
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: default_workers(),
            cache_bytes: WarmCache::budget_from_env(),
        }
    }
}

/// `PREBOND3D_SERVE_WORKERS`, else the pool thread count, floored at 2.
pub fn default_workers() -> usize {
    std::env::var("PREBOND3D_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| prebond3d_pool::threads().max(2))
}

/// Monotonic job accounting, exported by the `stats` op.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Jobs accepted off the wire.
    pub submitted: AtomicU64,
    /// Jobs that reached a `done` frame with code 0.
    pub done_ok: AtomicU64,
    /// Jobs that reached a `done` frame with a non-zero code.
    pub done_failed: AtomicU64,
    /// Protocol errors answered (malformed frames, oversized lines).
    pub protocol_errors: AtomicU64,
}

struct QueuedJob {
    spec: JobSpec,
    events: mpsc::Sender<Value>,
}

/// How to poke the blocking accept loop awake after shutdown.
#[derive(Debug, Clone)]
enum WakeAddr {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

struct Shared {
    running: AtomicBool,
    queue: Mutex<VecDeque<QueuedJob>>,
    cond: Condvar,
    cache: WarmCache,
    stats: ServerStats,
    wake: Mutex<Option<WakeAddr>>,
}

impl Shared {
    fn enqueue(&self, job: QueuedJob) {
        self.queue.lock().unwrap().push_back(job);
        self.cond.notify_one();
    }

    /// Pop the next job; blocks until one arrives or shutdown drains the
    /// queue empty.
    fn dequeue(&self) -> Option<QueuedJob> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if !self.running.load(Ordering::SeqCst) {
                return None;
            }
            q = self.cond.wait(q).unwrap();
        }
    }

    fn stats_frame(&self) -> Value {
        let c = self.cache.stats();
        Value::obj([
            ("ok", true.into()),
            ("ev", "stats".into()),
            (
                "jobs",
                Value::obj([
                    (
                        "submitted",
                        self.stats.submitted.load(Ordering::Relaxed).into(),
                    ),
                    ("done", self.stats.done_ok.load(Ordering::Relaxed).into()),
                    (
                        "failed",
                        self.stats.done_failed.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "protocol_errors",
                        self.stats.protocol_errors.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "cache",
                Value::obj([
                    ("hits", c.hits.into()),
                    ("misses", c.misses.into()),
                    ("evictions", c.evictions.into()),
                    ("entries", c.entries.into()),
                    ("bytes", (c.bytes as u64).into()),
                    ("budget", (c.budget as u64).into()),
                ]),
            ),
            (
                "mem",
                Value::obj([
                    (
                        "rss_now_kb",
                        prebond3d_obs::mem::rss_now_kb().unwrap_or(0).into(),
                    ),
                    (
                        "rss_peak_kb",
                        prebond3d_obs::mem::rss_peak_kb().unwrap_or(0).into(),
                    ),
                ]),
            ),
        ])
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send the `shutdown` op) then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Worker threads and the accept thread are
    /// spawned before this returns.
    ///
    /// # Errors
    ///
    /// Binding the listener failed.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let (listener, addr) = match &config.bind {
            Bind::Tcp(spec) => {
                let l = TcpListener::bind(spec)?;
                let addr = l.local_addr()?;
                (Listener::Tcp(l), Some(addr))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run refuses the bind.
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(std::os::unix::net::UnixListener::bind(path)?),
                    None,
                )
            }
        };
        let wake = match (&config.bind, addr) {
            (Bind::Tcp(_), Some(a)) => Some(WakeAddr::Tcp(a)),
            #[cfg(unix)]
            (Bind::Unix(path), _) => Some(WakeAddr::Unix(path.clone())),
            _ => None,
        };
        let shared = Arc::new(Shared {
            running: AtomicBool::new(true),
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            cache: WarmCache::new(config.cache_bytes),
            stats: ServerStats::default(),
            wake: Mutex::new(wake),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound TCP address (None for unix sockets).
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Warm-cache statistics.
    pub fn cache_stats(&self) -> cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Job accounting: `(submitted, done_ok, done_failed)`.
    pub fn job_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.submitted.load(Ordering::Relaxed),
            self.shared.stats.done_ok.load(Ordering::Relaxed),
            self.shared.stats.done_failed.load(Ordering::Relaxed),
        )
    }

    /// Stop accepting, let queued jobs drain, and wake everything up.
    /// Idempotent; also triggered by the `shutdown` op.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`Server::shutdown`] (or after a client sent the `shutdown` op).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    shared.running.store(false, Ordering::SeqCst);
    shared.cond.notify_all();
    // Unblock the accept loop with a throwaway connection; take() makes
    // repeated shutdowns poke at most once.
    let wake = shared.wake.lock().unwrap().take();
    match wake {
        Some(WakeAddr::Tcp(addr)) => {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        Some(WakeAddr::Unix(path)) => {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        None => {}
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.dequeue() {
        let outcome = jobs::run_job(&job.spec, &shared.cache);
        if outcome.code == 0 {
            shared.stats.done_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.done_failed.fetch_add(1, Ordering::Relaxed);
        }
        // A gone client (mid-job disconnect) just drops the frames.
        for frame in outcome.phases {
            let _ = job.events.send(frame);
        }
        let _ = job.events.send(outcome.done);
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    loop {
        let stream: Box<dyn Conn> = match listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
        };
        if !shared.running.load(Ordering::SeqCst) {
            // The wake-up connection (or any late client) is refused.
            return;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_conn(stream, &shared));
    }
}

/// The two stream types behind one object: both are `Read + Write` and
/// cloneable into an independently owned reader half.
trait Conn: Read + Write + Send {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>>;
}

impl Conn for TcpStream {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl Conn for std::os::unix::net::UnixStream {
    fn reader(&self) -> std::io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// Read one `\n`-terminated line, bounded by [`MAX_LINE`].
///
/// Returns `Ok(None)` on EOF, `Err(())` when the line exceeded the bound
/// (the tail is consumed and discarded so the stream stays framed).
fn read_line_bounded(
    reader: &mut BufReader<Box<dyn Read + Send>>,
    buf: &mut Vec<u8>,
) -> std::io::Result<Result<Option<usize>, ()>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if n > MAX_LINE {
        // Discard the rest of the oversized line.
        loop {
            let mut skip = Vec::with_capacity(4096);
            let m = reader.by_ref().take(4096).read_until(b'\n', &mut skip)?;
            if m == 0 || skip.last() == Some(&b'\n') {
                break;
            }
        }
        return Ok(Err(()));
    }
    Ok(Ok(Some(n)))
}

fn write_frame(w: &mut dyn Write, frame: &Value) -> std::io::Result<()> {
    writeln!(w, "{frame}")?;
    w.flush()
}

fn handle_conn(mut stream: Box<dyn Conn>, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.reader() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    loop {
        match read_line_bounded(&mut reader, &mut buf) {
            Err(_) | Ok(Ok(None)) => return, // disconnect / EOF
            Ok(Err(())) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let e = proto::error(None, &format!("line exceeds {MAX_LINE} bytes"));
                if write_frame(&mut stream, &e).is_err() {
                    return;
                }
                continue;
            }
            Ok(Ok(Some(_))) => {}
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut stream, &proto::error(None, &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Ping => {
                if write_frame(&mut stream, &proto::pong()).is_err() {
                    return;
                }
            }
            Request::Stats => {
                if write_frame(&mut stream, &shared.stats_frame()).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &proto::bye());
                request_shutdown(shared);
                return;
            }
            Request::Submit(spec) => {
                shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                let accepted = proto::accepted(&spec.id);
                let client_gone = write_frame(&mut stream, &accepted).is_err();
                let (tx, rx) = mpsc::channel();
                shared.enqueue(QueuedJob {
                    spec: *spec,
                    events: tx,
                });
                // Forward frames until the terminal `done`. On a dead
                // client keep draining so the job is fully consumed, then
                // close.
                let mut dead = client_gone;
                for frame in rx {
                    let is_done = frame.get("ev").and_then(Value::as_str) == Some("done");
                    if !dead && write_frame(&mut stream, &frame).is_err() {
                        dead = true;
                    }
                    if is_done {
                        break;
                    }
                }
                if dead {
                    return;
                }
            }
        }
    }
}

//! The `prebond3d-serve` daemon entrypoint.
//!
//! ```text
//! prebond3d-serve [--listen ADDR] [--unix PATH] [--workers N]
//!                 [--cache-bytes N] [--port-file PATH] [--journal PATH]
//!                 [--max-queue N] [--queue-bytes N] [--write-timeout-ms N]
//!                 [--paused]
//! ```
//!
//! Binds (TCP by default, `127.0.0.1:0`), prints `listening on <addr>`,
//! and serves until a client sends the `shutdown` op. `--port-file`
//! writes the bound TCP port to a file so harnesses can discover an
//! ephemeral port without scraping stdout. `--journal` arms the
//! write-ahead job journal (DESIGN.md §15): accepted jobs survive a
//! crash and replay on the next start with the same path. `--paused`
//! starts with the queue held — submits are accepted and journaled but
//! nothing runs until a client sends the `resume` op (maintenance holds
//! and deterministic crash drills).

use std::process::ExitCode;

use prebond3d_serve::{Bind, Server, ServerConfig};

struct Args {
    config: ServerConfig,
    port_file: Option<std::path::PathBuf>,
}

fn usage() -> &'static str {
    "usage: prebond3d-serve [--listen ADDR] [--unix PATH] [--workers N] \
     [--cache-bytes N] [--port-file PATH] [--journal PATH] [--max-queue N] \
     [--queue-bytes N] [--write-timeout-ms N] [--paused]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--listen" => config.bind = Bind::Tcp(value("--listen")?),
            "--unix" => {
                #[cfg(unix)]
                {
                    config.bind = Bind::Unix(value("--unix")?.into());
                }
                #[cfg(not(unix))]
                return Err("--unix is not supported on this platform".into());
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-bytes" => {
                config.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--port-file" => port_file = Some(value("--port-file")?.into()),
            "--journal" => config.journal = Some(value("--journal")?.into()),
            "--max-queue" => {
                config.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--queue-bytes" => {
                config.queue_bytes = value("--queue-bytes")?
                    .parse()
                    .map_err(|e| format!("--queue-bytes: {e}"))?;
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
            }
            "--paused" => config.paused = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Args { config, port_file })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let bind = args.config.bind.clone();
    let server = match Server::start(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    match (server.addr(), &bind) {
        (Some(addr), _) => {
            println!("listening on {addr}");
            if let Some(path) = &args.port_file {
                if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
                    eprintln!("port file {}: {e}", path.display());
                }
            }
        }
        #[cfg(unix)]
        (None, Bind::Unix(path)) => println!("listening on {}", path.display()),
        (None, _) => println!("listening"),
    }
    server.join();
    ExitCode::SUCCESS
}

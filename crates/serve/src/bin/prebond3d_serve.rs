//! The `prebond3d-serve` daemon entrypoint.
//!
//! ```text
//! prebond3d-serve [--listen ADDR] [--unix PATH] [--workers N]
//!                 [--cache-bytes N] [--port-file PATH]
//! ```
//!
//! Binds (TCP by default, `127.0.0.1:0`), prints `listening on <addr>`,
//! and serves until a client sends the `shutdown` op. `--port-file`
//! writes the bound TCP port to a file so harnesses can discover an
//! ephemeral port without scraping stdout.

use std::process::ExitCode;

use prebond3d_serve::{Bind, Server, ServerConfig};

struct Args {
    config: ServerConfig,
    port_file: Option<std::path::PathBuf>,
}

fn usage() -> &'static str {
    "usage: prebond3d-serve [--listen ADDR] [--unix PATH] [--workers N] \
     [--cache-bytes N] [--port-file PATH]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--listen" => config.bind = Bind::Tcp(value("--listen")?),
            "--unix" => {
                #[cfg(unix)]
                {
                    config.bind = Bind::Unix(value("--unix")?.into());
                }
                #[cfg(not(unix))]
                return Err("--unix is not supported on this platform".into());
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-bytes" => {
                config.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--port-file" => port_file = Some(value("--port-file")?.into()),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Args { config, port_file })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let bind = args.config.bind.clone();
    let server = match Server::start(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    match (server.addr(), &bind) {
        (Some(addr), _) => {
            println!("listening on {addr}");
            if let Some(path) = &args.port_file {
                if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
                    eprintln!("port file {}: {e}", path.display());
                }
            }
        }
        #[cfg(unix)]
        (None, Bind::Unix(path)) => println!("listening on {}", path.display()),
        (None, _) => println!("listening"),
    }
    server.join();
    ExitCode::SUCCESS
}

//! The wire protocol: newline-delimited JSON frames (DESIGN.md §13).
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses always carry `"ok"` (did the server
//! accept/complete the operation) and `"ev"` (the event kind), so clients
//! can dispatch without guessing. A submit fans out into an `accepted`
//! frame, zero or more `phase` frames (per-flow-phase telemetry sourced
//! from the job's `obs` capture), and exactly one terminal `done` frame.
//!
//! Parsing is strict about shape but tolerant about extras: unknown keys
//! are ignored (forward compatibility), unknown *ops* and malformed values
//! are protocol errors the connection survives.

use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{Method, Scenario};

/// Longest accepted request line, in bytes. A frame exceeding this is
/// answered with an error and discarded without buffering it whole.
pub const MAX_LINE: usize = 1 << 20;

/// Which testability probe prices cone sharing for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// The fast structural estimator (default).
    Structural,
    /// The measured ATPG probe — served from the warm cache so its memo
    /// tables survive across requests.
    Atpg,
}

/// Where the job's netlist comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A generated ITC'99-style benchmark die: `("b11", 0)`.
    Generated {
        /// Benchmark name.
        circuit: String,
        /// Die index within the benchmark's stack.
        die: usize,
    },
    /// An inline netlist in the workspace text format
    /// (`prebond3d_netlist::format`).
    Inline {
        /// The netlist text.
        text: String,
    },
}

/// One wrapper-cell-minimization job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id, echoed on every frame of this job.
    pub id: String,
    /// The netlist to wrap.
    pub source: JobSource,
    /// The algorithm.
    pub method: Method,
    /// The timing scenario.
    pub scenario: Scenario,
    /// The testability probe.
    pub probe: ProbeKind,
    /// Include the full wrapper plan text in the `done` frame.
    pub return_plan: bool,
    /// Per-phase wall-clock budget for this job in milliseconds. Threads
    /// into the resilience `Deadline` machinery: over-budget phases
    /// degrade to best-so-far and the `done` frame reports what was cut
    /// short (`degraded`/`degradations`), exactly like batch runs under
    /// `PREBOND3D_BUDGET_MS`.
    pub budget_ms: Option<u64>,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server/cache statistics.
    Stats,
    /// Stop accepting connections and drain the queue.
    Shutdown,
    /// Release a paused daemon's queue (see `--paused`); a no-op when
    /// the daemon is already draining.
    Resume,
    /// Run one job.
    Submit(Box<JobSpec>),
    /// Look up a job by idempotency key in the journal (16 hex digits).
    Status {
        /// The key, still in wire form.
        key: String,
    },
}

fn str_field(obj: &Value, key: &str) -> Option<String> {
    obj.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Parse one request line.
///
/// # Errors
///
/// A human-readable message naming what was wrong; the server echoes it in
/// an `error` frame and keeps the connection open.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = prebond3d_obs::json::parse(line).map_err(|e| format!("parse: {e}"))?;
    let Some(op) = doc.get("op").and_then(Value::as_str) else {
        return Err("missing string field `op`".into());
    };
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "resume" => Ok(Request::Resume),
        "status" => match str_field(&doc, "key") {
            Some(key) => Ok(Request::Status { key }),
            None => Err("status needs a string field `key`".into()),
        },
        "submit" => {
            let id = str_field(&doc, "id").unwrap_or_else(|| "job".into());
            let source = match (str_field(&doc, "netlist"), str_field(&doc, "circuit")) {
                (Some(text), _) => JobSource::Inline { text },
                (None, Some(circuit)) => JobSource::Generated {
                    circuit,
                    die: doc.get("die").and_then(Value::as_u64).unwrap_or(0) as usize,
                },
                (None, None) => {
                    return Err("submit needs either `circuit` or `netlist`".into());
                }
            };
            let method = match str_field(&doc, "method").as_deref() {
                None | Some("ours") => Method::Ours,
                Some("agrawal") => Method::Agrawal,
                Some("li") => Method::Li,
                Some("naive") => Method::Naive,
                Some(m) => return Err(format!("unknown method `{m}`")),
            };
            let scenario = match str_field(&doc, "scenario").as_deref() {
                None | Some("area") => Scenario::Area,
                Some("tight") => Scenario::Tight,
                Some(s) => return Err(format!("unknown scenario `{s}`")),
            };
            let probe = match str_field(&doc, "probe").as_deref() {
                None | Some("structural") => ProbeKind::Structural,
                Some("atpg") => ProbeKind::Atpg,
                Some(p) => return Err(format!("unknown probe `{p}`")),
            };
            let return_plan = doc
                .get("return_plan")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let budget_ms = doc.get("budget_ms").and_then(Value::as_u64);
            Ok(Request::Submit(Box::new(JobSpec {
                id,
                source,
                method,
                scenario,
                probe,
                return_plan,
                budget_ms,
            })))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Method label used in report payloads (lowercase wire form).
pub fn method_wire(m: Method) -> &'static str {
    match m {
        Method::Ours => "ours",
        Method::Agrawal => "agrawal",
        Method::Li => "li",
        Method::Naive => "naive",
    }
}

/// Scenario label used in report payloads.
pub fn scenario_wire(s: Scenario) -> &'static str {
    match s {
        Scenario::Area => "area",
        Scenario::Tight => "tight",
    }
}

/// Serialize a spec back to the submit request object it parsed from.
/// `parse_request(submit_json(spec).to_string()) == Submit(spec)` — the
/// journal stores this form so recovery replays exactly what the client
/// sent, and defaulted fields stay defaulted across a round trip.
pub fn submit_json(spec: &JobSpec) -> Value {
    let mut fields = vec![("op", "submit".into()), ("id", spec.id.as_str().into())];
    match &spec.source {
        JobSource::Inline { text } => fields.push(("netlist", text.as_str().into())),
        JobSource::Generated { circuit, die } => {
            fields.push(("circuit", circuit.as_str().into()));
            fields.push(("die", (*die).into()));
        }
    }
    fields.push(("method", method_wire(spec.method).into()));
    fields.push(("scenario", scenario_wire(spec.scenario).into()));
    fields.push((
        "probe",
        match spec.probe {
            ProbeKind::Structural => "structural".into(),
            ProbeKind::Atpg => "atpg".into(),
        },
    ));
    if spec.return_plan {
        fields.push(("return_plan", true.into()));
    }
    if let Some(ms) = spec.budget_ms {
        fields.push(("budget_ms", ms.into()));
    }
    Value::obj(fields)
}

/// `{"ok":true,"ev":"pong"}`.
pub fn pong() -> Value {
    Value::obj([("ok", true.into()), ("ev", "pong".into())])
}

/// `{"ok":true,"ev":"bye"}` — acknowledges a shutdown.
pub fn bye() -> Value {
    Value::obj([("ok", true.into()), ("ev", "bye".into())])
}

/// `{"ok":true,"ev":"resumed"}` — acknowledges a `resume` op.
pub fn resumed() -> Value {
    Value::obj([("ok", true.into()), ("ev", "resumed".into())])
}

/// `{"ok":true,"ev":"accepted","id":...,"key":...}` — `key` is the job's
/// idempotency key in wire form, usable with the `status` op after a
/// disconnect or daemon restart.
pub fn accepted(id: &str, key: &str) -> Value {
    Value::obj([
        ("ok", true.into()),
        ("ev", "accepted".into()),
        ("id", id.into()),
        ("key", key.into()),
    ])
}

/// `{"ok":false,"ev":"retry_after","id":...,"retry_after_ms":...}` — the
/// admission layer shed this submit (queue depth or byte budget over
/// limit). The client should back off at least `retry_after_ms` before
/// retrying; the job was **not** journaled and will not run.
pub fn retry_after(id: &str, retry_after_ms: u64, message: &str) -> Value {
    Value::obj([
        ("ok", false.into()),
        ("ev", "retry_after".into()),
        ("id", id.into()),
        ("retry_after_ms", retry_after_ms.into()),
        ("error", message.into()),
    ])
}

/// A protocol error frame. `id` is echoed when the frame belonged to an
/// identifiable job.
pub fn error(id: Option<&str>, message: &str) -> Value {
    let mut fields = vec![
        ("ok", false.into()),
        ("ev", "error".into()),
        ("error", message.into()),
    ];
    if let Some(id) = id {
        fields.push(("id", id.into()));
    }
    Value::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_op_family() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(parse_request(r#"{"op":"resume"}"#).unwrap(), Request::Resume);
        let r = parse_request(r#"{"op":"submit","id":"j1","circuit":"b11","die":2}"#).unwrap();
        match r {
            Request::Submit(spec) => {
                assert_eq!(spec.id, "j1");
                assert_eq!(
                    spec.source,
                    JobSource::Generated {
                        circuit: "b11".into(),
                        die: 2
                    }
                );
                assert_eq!(spec.method, Method::Ours);
                assert_eq!(spec.probe, ProbeKind::Structural);
                assert!(!spec.return_plan);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_netlist_wins_over_circuit() {
        let r = parse_request(
            r#"{"op":"submit","netlist":"circuit x\n","circuit":"b11","probe":"atpg"}"#,
        )
        .unwrap();
        match r {
            Request::Submit(spec) => {
                assert!(matches!(spec.source, JobSource::Inline { .. }));
                assert_eq!(spec.probe, ProbeKind::Atpg);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_status_and_budget_ms() {
        assert_eq!(
            parse_request(r#"{"op":"status","key":"00000000000000ab"}"#).unwrap(),
            Request::Status {
                key: "00000000000000ab".into()
            }
        );
        assert!(parse_request(r#"{"op":"status"}"#)
            .unwrap_err()
            .contains("key"));
        match parse_request(r#"{"op":"submit","circuit":"b11","budget_ms":250}"#).unwrap() {
            Request::Submit(spec) => assert_eq!(spec.budget_ms, Some(250)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn submit_json_round_trips_every_field() {
        for line in [
            r#"{"op":"submit","id":"j","circuit":"b12","die":1}"#,
            r#"{"op":"submit","id":"k","netlist":"circuit x\n","probe":"atpg","method":"li","scenario":"tight","return_plan":true,"budget_ms":9}"#,
        ] {
            let Ok(Request::Submit(spec)) = parse_request(line) else {
                panic!("fixture should parse: {line}");
            };
            let reparsed = parse_request(&submit_json(&spec).to_string()).unwrap();
            assert_eq!(reparsed, Request::Submit(spec.clone()), "{line}");
        }
    }

    #[test]
    fn rejects_malformed_frames_with_messages() {
        assert!(parse_request("{").unwrap_err().starts_with("parse:"));
        assert!(parse_request(r#"{"no":"op"}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"dance"}"#)
            .unwrap_err()
            .contains("dance"));
        assert!(parse_request(r#"{"op":"submit"}"#)
            .unwrap_err()
            .contains("circuit"));
        assert!(
            parse_request(r#"{"op":"submit","circuit":"b11","method":"x"}"#)
                .unwrap_err()
                .contains("method")
        );
    }
}

//! The wire protocol: newline-delimited JSON frames (DESIGN.md §13).
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses always carry `"ok"` (did the server
//! accept/complete the operation) and `"ev"` (the event kind), so clients
//! can dispatch without guessing. A submit fans out into an `accepted`
//! frame, zero or more `phase` frames (per-flow-phase telemetry sourced
//! from the job's `obs` capture), and exactly one terminal `done` frame.
//!
//! Parsing is strict about shape but tolerant about extras: unknown keys
//! are ignored (forward compatibility), unknown *ops* and malformed values
//! are protocol errors the connection survives.

use prebond3d_obs::json::Value;
use prebond3d_wcm::flow::{Method, Scenario};

/// Longest accepted request line, in bytes. A frame exceeding this is
/// answered with an error and discarded without buffering it whole.
pub const MAX_LINE: usize = 1 << 20;

/// Which testability probe prices cone sharing for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// The fast structural estimator (default).
    Structural,
    /// The measured ATPG probe — served from the warm cache so its memo
    /// tables survive across requests.
    Atpg,
}

/// Where the job's netlist comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A generated ITC'99-style benchmark die: `("b11", 0)`.
    Generated {
        /// Benchmark name.
        circuit: String,
        /// Die index within the benchmark's stack.
        die: usize,
    },
    /// An inline netlist in the workspace text format
    /// (`prebond3d_netlist::format`).
    Inline {
        /// The netlist text.
        text: String,
    },
}

/// One wrapper-cell-minimization job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id, echoed on every frame of this job.
    pub id: String,
    /// The netlist to wrap.
    pub source: JobSource,
    /// The algorithm.
    pub method: Method,
    /// The timing scenario.
    pub scenario: Scenario,
    /// The testability probe.
    pub probe: ProbeKind,
    /// Include the full wrapper plan text in the `done` frame.
    pub return_plan: bool,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server/cache statistics.
    Stats,
    /// Stop accepting connections and drain the queue.
    Shutdown,
    /// Run one job.
    Submit(Box<JobSpec>),
}

fn str_field(obj: &Value, key: &str) -> Option<String> {
    obj.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Parse one request line.
///
/// # Errors
///
/// A human-readable message naming what was wrong; the server echoes it in
/// an `error` frame and keeps the connection open.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = prebond3d_obs::json::parse(line).map_err(|e| format!("parse: {e}"))?;
    let Some(op) = doc.get("op").and_then(Value::as_str) else {
        return Err("missing string field `op`".into());
    };
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let id = str_field(&doc, "id").unwrap_or_else(|| "job".into());
            let source = match (str_field(&doc, "netlist"), str_field(&doc, "circuit")) {
                (Some(text), _) => JobSource::Inline { text },
                (None, Some(circuit)) => JobSource::Generated {
                    circuit,
                    die: doc.get("die").and_then(Value::as_u64).unwrap_or(0) as usize,
                },
                (None, None) => {
                    return Err("submit needs either `circuit` or `netlist`".into());
                }
            };
            let method = match str_field(&doc, "method").as_deref() {
                None | Some("ours") => Method::Ours,
                Some("agrawal") => Method::Agrawal,
                Some("li") => Method::Li,
                Some("naive") => Method::Naive,
                Some(m) => return Err(format!("unknown method `{m}`")),
            };
            let scenario = match str_field(&doc, "scenario").as_deref() {
                None | Some("area") => Scenario::Area,
                Some("tight") => Scenario::Tight,
                Some(s) => return Err(format!("unknown scenario `{s}`")),
            };
            let probe = match str_field(&doc, "probe").as_deref() {
                None | Some("structural") => ProbeKind::Structural,
                Some("atpg") => ProbeKind::Atpg,
                Some(p) => return Err(format!("unknown probe `{p}`")),
            };
            let return_plan = doc
                .get("return_plan")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            Ok(Request::Submit(Box::new(JobSpec {
                id,
                source,
                method,
                scenario,
                probe,
                return_plan,
            })))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Method label used in report payloads (lowercase wire form).
pub fn method_wire(m: Method) -> &'static str {
    match m {
        Method::Ours => "ours",
        Method::Agrawal => "agrawal",
        Method::Li => "li",
        Method::Naive => "naive",
    }
}

/// Scenario label used in report payloads.
pub fn scenario_wire(s: Scenario) -> &'static str {
    match s {
        Scenario::Area => "area",
        Scenario::Tight => "tight",
    }
}

/// `{"ok":true,"ev":"pong"}`.
pub fn pong() -> Value {
    Value::obj([("ok", true.into()), ("ev", "pong".into())])
}

/// `{"ok":true,"ev":"bye"}` — acknowledges a shutdown.
pub fn bye() -> Value {
    Value::obj([("ok", true.into()), ("ev", "bye".into())])
}

/// `{"ok":true,"ev":"accepted","id":...}`.
pub fn accepted(id: &str) -> Value {
    Value::obj([
        ("ok", true.into()),
        ("ev", "accepted".into()),
        ("id", id.into()),
    ])
}

/// A protocol error frame. `id` is echoed when the frame belonged to an
/// identifiable job.
pub fn error(id: Option<&str>, message: &str) -> Value {
    let mut fields = vec![
        ("ok", false.into()),
        ("ev", "error".into()),
        ("error", message.into()),
    ];
    if let Some(id) = id {
        fields.push(("id", id.into()));
    }
    Value::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_op_family() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        let r = parse_request(r#"{"op":"submit","id":"j1","circuit":"b11","die":2}"#).unwrap();
        match r {
            Request::Submit(spec) => {
                assert_eq!(spec.id, "j1");
                assert_eq!(
                    spec.source,
                    JobSource::Generated {
                        circuit: "b11".into(),
                        die: 2
                    }
                );
                assert_eq!(spec.method, Method::Ours);
                assert_eq!(spec.probe, ProbeKind::Structural);
                assert!(!spec.return_plan);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_netlist_wins_over_circuit() {
        let r = parse_request(
            r#"{"op":"submit","netlist":"circuit x\n","circuit":"b11","probe":"atpg"}"#,
        )
        .unwrap();
        match r {
            Request::Submit(spec) => {
                assert!(matches!(spec.source, JobSource::Inline { .. }));
                assert_eq!(spec.probe, ProbeKind::Atpg);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_frames_with_messages() {
        assert!(parse_request("{").unwrap_err().starts_with("parse:"));
        assert!(parse_request(r#"{"no":"op"}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"dance"}"#)
            .unwrap_err()
            .contains("dance"));
        assert!(parse_request(r#"{"op":"submit"}"#)
            .unwrap_err()
            .contains("circuit"));
        assert!(
            parse_request(r#"{"op":"submit","circuit":"b11","method":"x"}"#)
                .unwrap_err()
                .contains("method")
        );
    }
}

//! The write-ahead job journal (DESIGN.md §15).
//!
//! A daemon without a journal loses every queued and in-flight job on a
//! crash. With `--journal <path>` armed, every *admitted* submit is
//! appended to an append-only file **before** it is enqueued, every state
//! transition is journaled, and on startup the unfinished entries are
//! replayed through the worker pool — so a SIGKILLed daemon converges to
//! the same per-job `report` sub-objects an uninterrupted run produces
//! (the cold/warm/bypass byte-identity contract already guarantees the
//! reports are cache- and thread-count-independent).
//!
//! ## File format
//!
//! One header line, then newline-terminated JSON entries:
//!
//! ```text
//! prebond3d journal v1
//! {"ev":"accepted","key":"00ab…","spec":{"op":"submit",…}}
//! {"ev":"running","key":"00ab…"}
//! {"ev":"done","key":"00ab…","code":0,"report":{…}}
//! ```
//!
//! `key` is the job's **content-addressed idempotency key**
//! ([`crate::jobs::idempotency_key`]): an FNV over the client id, the
//! netlist source (generation inputs, or the inline netlist's content
//! signature), method, scenario, probe, `budget_ms` and `return_plan`.
//! Identical retries of one logical job collide on the key; distinct jobs
//! do not.
//!
//! ## Recovery state machine
//!
//! Entries fold per key, later entries winning:
//!
//! ```text
//! (absent) --accepted--> pending --running--> pending --done--> done
//! ```
//!
//! On load, keys left in `pending` are the crash's orphans and are
//! re-enqueued; keys in `done` keep their terminal record so a client
//! retry of an already-completed job is answered from the journal instead
//! of running twice (exactly-once semantics across restarts).
//!
//! ## Durability & tolerance
//!
//! Appends go out as one `write_all` + fsync, mirroring
//! `results/checkpoint_<exp>.json`: a crash mid-append leaves at worst a
//! torn final line, which the loader drops. Any other corrupt line (a
//! bit flip, a truncated rewrite) is skipped and counted — loading never
//! panics and always recovers every intact entry. On open the journal is
//! **compacted**: rewritten atomically with only the surviving done
//! records and pending entries, so garbage does not accumulate across
//! restarts.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use prebond3d_obs::json::Value;
use prebond3d_resilience as resil;

use crate::proto::{self, JobSpec};

/// The version header opening every journal file.
pub const HEADER: &str = "prebond3d journal v1";

/// The terminal record of a completed job, as journaled and as replayed
/// to deduplicated retries.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneRecord {
    /// Per-job exit code (0–4).
    pub code: i64,
    /// The deterministic `report` sub-object, when the job produced one.
    pub report: Option<Value>,
    /// The failure message, when it did not.
    pub error: Option<String>,
    /// Boundary issues of an admission-gate rejection (code 1).
    pub issues: Option<Value>,
}

impl DoneRecord {
    fn to_json(&self, key: u64) -> Value {
        let mut fields = vec![
            ("ev", "done".into()),
            ("key", key_hex(key).as_str().into()),
            ("code", Value::Num(self.code as f64)),
        ];
        if let Some(r) = &self.report {
            fields.push(("report", r.clone()));
        }
        if let Some(e) = &self.error {
            fields.push(("error", e.as_str().into()));
        }
        if let Some(i) = &self.issues {
            fields.push(("issues", i.clone()));
        }
        Value::obj(fields)
    }
}

/// One unfinished job recovered from the journal.
#[derive(Debug)]
pub struct PendingJob {
    /// Its idempotency key.
    pub key: u64,
    /// The original submit spec, round-tripped through the wire format.
    pub spec: JobSpec,
}

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Jobs accepted (or running) but never finished: the crash's
    /// orphans, in journal order.
    pub pending: Vec<PendingJob>,
    /// Terminal records by key, for idempotent retry replay.
    pub done: Vec<(u64, DoneRecord)>,
    /// Lines skipped as corrupt (torn tails are dropped silently and not
    /// counted here).
    pub corrupt_lines: usize,
}

/// The open journal: an append-only fsync'd file behind a mutex.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

/// `{key:016x}` — the wire form of an idempotency key.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parse the wire form back. `None` for anything but 16 hex digits.
pub fn parse_key(text: &str) -> Option<u64> {
    (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok())?
}

/// Fold the journal's surviving lines into the recovery state machine.
/// Tolerant by construction: a torn final line (no trailing newline) is
/// dropped, any other unparsable or ill-shaped line is counted and
/// skipped, and nothing here can panic on hostile bytes.
fn fold_entries(text: &str) -> Recovery {
    let mut recovery = Recovery::default();
    let complete = match text.rfind('\n') {
        Some(last) => &text[..last],
        None => return recovery, // not even a complete header line
    };
    let mut lines = complete.lines();
    if lines.next() != Some(HEADER) {
        return recovery;
    }
    // Key -> index into `pending` while undecided; done wins over pending.
    let mut pending: Vec<Option<PendingJob>> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut done: HashMap<u64, DoneRecord> = HashMap::new();
    let mut done_order: Vec<u64> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Ok(entry) = prebond3d_obs::json::parse(line) else {
            recovery.corrupt_lines += 1;
            continue;
        };
        let key = entry
            .get("key")
            .and_then(Value::as_str)
            .and_then(parse_key);
        let (Some(ev), Some(key)) = (entry.get("ev").and_then(Value::as_str), key) else {
            recovery.corrupt_lines += 1;
            continue;
        };
        match ev {
            "accepted" => {
                let spec = entry
                    .get("spec")
                    .map(Value::to_string)
                    .and_then(|line| proto::parse_request(&line).ok());
                match spec {
                    Some(proto::Request::Submit(spec)) => {
                        if let Some(&i) = index.get(&key) {
                            pending[i] = Some(PendingJob { key, spec: *spec });
                        } else {
                            index.insert(key, pending.len());
                            pending.push(Some(PendingJob { key, spec: *spec }));
                        }
                    }
                    _ => recovery.corrupt_lines += 1,
                }
            }
            // `running` carries no new state for recovery: the job is
            // still unfinished. It exists so an operator reading the
            // journal can tell queued from in-flight at the crash.
            "running" => {}
            "done" => {
                let Some(code) = entry.get("code").and_then(Value::as_f64).map(|f| f as i64)
                else {
                    recovery.corrupt_lines += 1;
                    continue;
                };
                if let Some(&i) = index.get(&key) {
                    pending[i] = None;
                }
                if !done.contains_key(&key) {
                    done_order.push(key);
                }
                done.insert(
                    key,
                    DoneRecord {
                        code,
                        report: entry.get("report").cloned(),
                        error: entry
                            .get("error")
                            .and_then(Value::as_str)
                            .map(str::to_string),
                        issues: entry.get("issues").cloned(),
                    },
                );
            }
            _ => recovery.corrupt_lines += 1,
        }
    }
    recovery.pending = pending.into_iter().flatten().collect();
    recovery.done = done_order
        .into_iter()
        .filter_map(|k| done.remove(&k).map(|r| (k, r)))
        .collect();
    recovery
}

/// Load a journal file without opening it for writing (inspection and
/// tests). Missing or unreadable files recover nothing.
pub fn load(path: &Path) -> Recovery {
    match fs::read_to_string(path) {
        Ok(text) => fold_entries(&text),
        Err(_) => Recovery::default(),
    }
}

impl Journal {
    /// Open (or create) the journal at `path`, recover its surviving
    /// entries, and **compact** it: the file is atomically rewritten with
    /// the header, the done records, and one `accepted` entry per pending
    /// job, then reopened for appending.
    ///
    /// # Errors
    ///
    /// Creating the parent directory, rewriting the compacted file, or
    /// opening it for append failed.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Recovery)> {
        let recovery = load(path);
        let mut compact = String::new();
        compact.push_str(HEADER);
        compact.push('\n');
        for (key, record) in &recovery.done {
            compact.push_str(&record.to_json(*key).to_string());
            compact.push('\n');
        }
        for job in &recovery.pending {
            compact.push_str(&accepted_json(job.key, &proto::submit_json(&job.spec)).to_string());
            compact.push('\n');
        }
        resil::atomic_write(path, &compact)?;
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            recovery,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// One fsync'd append. Errors are reported, not fatal: a journal that
    /// stops persisting degrades durability, never availability.
    fn append(&self, entry: &Value) {
        let line = format!("{entry}\n");
        let mut file = self.file.lock().unwrap();
        let result = resil::chaos::io_error("io.write")
            .map(Err)
            .unwrap_or_else(|| {
                file.write_all(line.as_bytes())
                    .and_then(|()| file.sync_data())
            });
        match result {
            Ok(()) => resil::hooks::emit("journal", "append", &self.path.display().to_string()),
            Err(e) => {
                resil::degrade::record(
                    "journal",
                    "append_failed",
                    format!("{}: {e}", self.path.display()),
                );
                eprintln!("[serve] journal append to {} failed: {e}", self.path.display());
            }
        }
    }

    /// Journal an admitted submit, **before** it is enqueued.
    pub fn accepted(&self, key: u64, spec: &JobSpec) {
        self.append(&accepted_json(key, &proto::submit_json(spec)));
    }

    /// Journal the accepted → running transition.
    pub fn running(&self, key: u64) {
        self.append(&Value::obj([
            ("ev", "running".into()),
            ("key", key_hex(key).as_str().into()),
        ]));
    }

    /// Journal a terminal record.
    pub fn done(&self, key: u64, record: &DoneRecord) {
        self.append(&record.to_json(key));
    }
}

fn accepted_json(key: u64, spec: &Value) -> Value {
    Value::obj([
        ("ev", "accepted".into()),
        ("key", key_hex(key).as_str().into()),
        ("spec", spec.clone()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "prebond3d-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.wal")
    }

    fn spec(line: &str) -> JobSpec {
        match proto::parse_request(line).unwrap() {
            proto::Request::Submit(s) => *s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trips_pending_and_done_across_reopen() {
        let path = tmp("roundtrip");
        let s1 = spec(r#"{"op":"submit","id":"a","circuit":"b11","die":0}"#);
        let s2 = spec(r#"{"op":"submit","id":"b","circuit":"b12","die":1,"budget_ms":50}"#);
        {
            let (journal, recovery) = Journal::open(&path).unwrap();
            assert!(recovery.pending.is_empty() && recovery.done.is_empty());
            journal.accepted(1, &s1);
            journal.accepted(2, &s2);
            journal.running(1);
            journal.done(
                1,
                &DoneRecord {
                    code: 0,
                    report: Some(Value::obj([("wns", 1.5.into())])),
                    error: None,
                    issues: None,
                },
            );
        }
        let (_journal, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.corrupt_lines, 0);
        assert_eq!(recovery.done.len(), 1);
        assert_eq!(recovery.done[0].0, 1);
        assert_eq!(recovery.done[0].1.code, 0);
        assert_eq!(
            recovery.done[0].1.report.as_ref().unwrap().to_string(),
            r#"{"wns":1.5}"#
        );
        assert_eq!(recovery.pending.len(), 1, "job 2 is the crash orphan");
        assert_eq!(recovery.pending[0].key, 2);
        assert_eq!(recovery.pending[0].spec, s2, "spec round-trips the wire form");
    }

    #[test]
    fn torn_tail_is_dropped_and_compaction_removes_garbage() {
        let path = tmp("torn");
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.accepted(7, &spec(r#"{"op":"submit","id":"t","circuit":"b11"}"#));
        }
        // Crash mid-append: a torn final line without its newline.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(r#"{"ev":"done","key":"deadbeefdeadbe"#);
        fs::write(&path, &text).unwrap();
        let (_journal, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.corrupt_lines, 0, "a torn tail is not corruption");
        // The compacted file no longer contains the fragment.
        let compacted = fs::read_to_string(&path).unwrap();
        assert!(!compacted.contains("deadbeef"));
        assert!(compacted.ends_with('\n'));
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = tmp("corrupt");
        let body = format!(
            "{HEADER}\n{}\nnot json at all\n{}\n{}\n",
            r#"{"ev":"accepted","key":"0000000000000003","spec":{"op":"submit","id":"x","circuit":"b11"}}"#,
            r#"{"ev":"accepted","key":"zz","spec":{"op":"submit","id":"y","circuit":"b11"}}"#,
            r#"{"ev":"done","key":"0000000000000003","code":4,"error":"boom"}"#,
        );
        fs::write(&path, body).unwrap();
        let recovery = load(&path);
        assert_eq!(recovery.corrupt_lines, 2);
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.done.len(), 1);
        assert_eq!(recovery.done[0].1.error.as_deref(), Some("boom"));
    }

    #[test]
    fn missing_or_headerless_files_recover_nothing() {
        assert!(load(Path::new("/no/such/journal.wal")).pending.is_empty());
        let path = tmp("headerless");
        fs::write(&path, "something else entirely\n").unwrap();
        let recovery = load(&path);
        assert!(recovery.pending.is_empty() && recovery.done.is_empty());
    }

    #[test]
    fn key_wire_form_round_trips() {
        assert_eq!(parse_key(&key_hex(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(parse_key("xyz"), None);
        assert_eq!(parse_key(""), None);
        assert_eq!(parse_key("00000000000000001"), None, "too long");
    }
}

//! Half-perimeter wirelength (HPWL) evaluation.

use prebond3d_netlist::{GateId, Netlist};

use crate::Placement;

/// HPWL of one net: bounding-box half-perimeter over driver + fanouts.
/// A net with no fanout has zero length.
pub fn net_hpwl(netlist: &Netlist, placement: &Placement, driver: GateId) -> f64 {
    let fanout = netlist.fanout(driver);
    if fanout.is_empty() {
        return 0.0;
    }
    let p0 = placement.location(driver);
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (p0.x, p0.x, p0.y, p0.y);
    for &fo in fanout {
        let p = placement.location(fo);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    (max_x - min_x) + (max_y - min_y)
}

/// Total HPWL over all nets.
pub fn total_hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .ids()
        .map(|id| net_hpwl(netlist, placement, id))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;
    use prebond3d_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn hpwl_is_bounding_box() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, &[a], "g1");
        let g2 = b.gate(GateKind::Not, &[a], "g2");
        b.output(g1, "o1");
        b.output(g2, "o2");
        let n = b.finish().unwrap();
        let pts = vec![
            Point { x: 0.0, y: 0.0 }, // a
            Point { x: 4.0, y: 0.0 }, // g1
            Point { x: 0.0, y: 3.0 }, // g2
            Point { x: 5.0, y: 0.0 }, // o1
            Point { x: 0.0, y: 5.0 }, // o2
        ];
        let p = Placement::new(pts, 10.0, 10.0);
        // Net `a` spans (0..4, 0..3) → 7.
        assert_eq!(net_hpwl(&n, &p, a), 7.0);
        // Output markers drive nothing → 0.
        assert_eq!(net_hpwl(&n, &p, n.find("o1").unwrap()), 0.0);
        // total = net a (7) + net g1 (1) + net g2 (2).
        assert_eq!(total_hpwl(&n, &p), 10.0);
    }
}

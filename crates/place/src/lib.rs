//! # prebond3d-place
//!
//! Per-die physical placement substrate.
//!
//! The paper extracts "physical information of scan flip-flops and TSVs"
//! from the 3D-Craft physical-design flow; its Algorithm 1 consumes only
//! the **distance** between a candidate wrapper cell and a TSV (`d_th`
//! threshold), and its timing model charges **wire delay** proportional to
//! that distance. This crate supplies that physical information:
//!
//! * [`grid`] — connectivity-ordered initial placement onto a row/site grid,
//! * [`anneal`] — seeded simulated-annealing refinement minimizing
//!   half-perimeter wirelength (HPWL),
//! * [`wirelength`] — HPWL evaluation,
//! * [`Placement`] — per-gate coordinates + Manhattan distance queries.
//!
//! # Example
//!
//! ```
//! use prebond3d_netlist::itc99;
//! use prebond3d_place::{place, PlaceConfig};
//!
//! let die = itc99::generate_flat("d", 200, 16, 6, 6, 5);
//! let placement = place(&die, &PlaceConfig::default(), 1);
//! let a = die.find("g0").unwrap();
//! let b = die.find("g1").unwrap();
//! let d = placement.distance(a, b);
//! assert!(d.0 >= 0.0);
//! ```

pub mod anneal;
pub mod density;
pub mod grid;
pub mod wirelength;

use prebond3d_celllib::Distance;
use prebond3d_netlist::{GateId, Netlist};

/// A coordinate on the die, in micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal position.
    pub x: f64,
    /// Vertical position.
    pub y: f64,
}

impl Point {
    /// Manhattan distance to `other` — the routing-relevant metric.
    pub fn manhattan(&self, other: &Point) -> Distance {
        Distance((self.x - other.x).abs() + (self.y - other.y).abs())
    }
}

/// Placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceConfig {
    /// Site width in µm (one cell per site).
    pub site_width: f64,
    /// Row height in µm.
    pub row_height: f64,
    /// Fraction of sites occupied (rest is whitespace).
    pub utilization: f64,
    /// Annealing effort: proposed moves per cell.
    pub moves_per_cell: usize,
}

impl Default for PlaceConfig {
    /// 45 nm-ish geometry: 1.9 µm × 1.4 µm sites at 70 % utilization,
    /// 24 moves/cell of annealing.
    fn default() -> Self {
        PlaceConfig {
            site_width: 1.9,
            row_height: 1.4,
            utilization: 0.7,
            moves_per_cell: 24,
        }
    }
}

/// The result of placement: one [`Point`] per gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    points: Vec<Point>,
    width: f64,
    height: f64,
}

impl Placement {
    /// Wrap raw per-gate coordinates (used by the placers).
    pub fn new(points: Vec<Point>, width: f64, height: f64) -> Self {
        Placement {
            points,
            width,
            height,
        }
    }

    /// Location of gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the placed netlist.
    pub fn location(&self, id: GateId) -> Point {
        self.points[id.index()]
    }

    /// Manhattan distance between two gates.
    pub fn distance(&self, a: GateId, b: GateId) -> Distance {
        self.location(a).manhattan(&self.location(b))
    }

    /// Die width in µm.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height in µm.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of placed gates.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Half the die's half-perimeter — a scale reference for distance
    /// thresholds (`d_th` defaults derive from this).
    pub fn scale(&self) -> Distance {
        Distance((self.width + self.height) / 2.0)
    }

    pub(crate) fn swap(&mut self, a: GateId, b: GateId) {
        self.points.swap(a.index(), b.index());
    }
}

/// Place `netlist`: connectivity-ordered grid seed + annealing refinement.
///
/// Deterministic given `seed`.
pub fn place(netlist: &Netlist, config: &PlaceConfig, seed: u64) -> Placement {
    let mut placement = grid::initial(netlist, config);
    anneal::refine(netlist, &mut placement, config, seed);
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Point { x: 1.0, y: 2.0 };
        let b = Point { x: 4.0, y: -2.0 };
        assert_eq!(a.manhattan(&b), Distance(7.0));
        assert_eq!(a.manhattan(&a), Distance(0.0));
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::new(
            vec![Point { x: 0.0, y: 0.0 }, Point { x: 3.0, y: 4.0 }],
            10.0,
            8.0,
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.distance(GateId(0), GateId(1)), Distance(7.0));
        assert_eq!(p.scale(), Distance(9.0));
        assert!(!p.is_empty());
    }
}

//! Simulated-annealing placement refinement.
//!
//! Classic cell-swap annealing over HPWL: propose swapping two cells'
//! locations, accept improvements always and regressions with Boltzmann
//! probability under a geometric cooling schedule. Incremental cost
//! evaluation touches only the nets incident to the two swapped cells.

use prebond3d_obs as obs;
use prebond3d_rng::StdRng;

use prebond3d_netlist::{GateId, Netlist};

use crate::wirelength::net_hpwl;
use crate::{PlaceConfig, Placement};

/// Refine `placement` in place. Deterministic given `seed`.
///
/// Effort scales with `config.moves_per_cell × netlist.len()`; temperature
/// starts at ~5 % of the die half-perimeter and cools geometrically to
/// ~0.1 µm.
pub fn refine(netlist: &Netlist, placement: &mut Placement, config: &PlaceConfig, seed: u64) {
    let n = netlist.len();
    if n < 2 || config.moves_per_cell == 0 {
        return;
    }
    let _span = obs::span("anneal");
    let mut rng = StdRng::seed_from_u64(seed);

    // Nets incident to each cell: the cell's own output net plus the output
    // nets of its drivers.
    let mut incident: Vec<Vec<GateId>> = vec![Vec::new(); n];
    for (id, gate) in netlist.iter() {
        incident[id.index()].push(id);
        for &input in &gate.inputs {
            incident[id.index()].push(input);
        }
    }
    for nets in &mut incident {
        nets.sort_unstable();
        nets.dedup();
    }

    let moves = config.moves_per_cell * n;
    let t_start = (placement.width() + placement.height()) * 0.05;
    let t_end: f64 = 0.1;
    let cooling = (t_end / t_start).powf(1.0 / moves as f64);
    let mut temp = t_start;
    // Accumulated locally; emitted once after the loop so the probes stay
    // out of the per-move hot path.
    let mut proposed = 0u64;
    let mut accepted = 0u64;
    // Phase budget: the anneal is an anytime algorithm — every prefix of
    // the move schedule leaves a valid placement, so on expiry we return
    // best-so-far. Polled every 256 moves to keep the clock off the hot
    // path (and entirely off it when no budget is armed).
    let deadline = prebond3d_resilience::Deadline::for_phase();

    for m in 0..moves {
        if m.is_multiple_of(256) && deadline.expired() {
            prebond3d_resilience::degrade::record(
                "anneal",
                "best_so_far",
                format!("stopped after {m}/{moves} moves at phase budget"),
            );
            break;
        }
        let a = GateId(rng.gen_range(0..n as u32));
        let b = GateId(rng.gen_range(0..n as u32));
        if a == b {
            temp *= cooling;
            continue;
        }
        // Union of nets touched by both cells.
        let mut nets: Vec<GateId> = incident[a.index()]
            .iter()
            .chain(incident[b.index()].iter())
            .copied()
            .collect();
        nets.sort_unstable();
        nets.dedup();

        let before: f64 = nets.iter().map(|&d| net_hpwl(netlist, placement, d)).sum();
        placement.swap(a, b);
        let after: f64 = nets.iter().map(|&d| net_hpwl(netlist, placement, d)).sum();
        let delta = after - before;
        let accept = delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0));
        proposed += 1;
        if accept {
            accepted += 1;
        } else {
            placement.swap(a, b); // revert
        }
        temp *= cooling;
    }
    obs::count("anneal.moves_proposed", proposed);
    obs::count("anneal.moves_accepted", accepted);
    obs::count("anneal.moves_reverted", proposed - accepted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid;
    use crate::wirelength::total_hpwl;
    use prebond3d_netlist::itc99;

    #[test]
    fn annealing_reduces_wirelength() {
        let die = itc99::generate_flat("d", 300, 20, 8, 8, 5);
        let config = PlaceConfig::default();
        let mut p = grid::initial(&die, &config);
        let before = total_hpwl(&die, &p);
        refine(&die, &mut p, &config, 11);
        let after = total_hpwl(&die, &p);
        assert!(
            after < before,
            "annealing should improve HPWL: {before:.0} → {after:.0}"
        );
    }

    #[test]
    fn refinement_is_deterministic() {
        let die = itc99::generate_flat("d", 150, 10, 4, 4, 6);
        let config = PlaceConfig::default();
        let mut p1 = grid::initial(&die, &config);
        let mut p2 = p1.clone();
        refine(&die, &mut p1, &config, 3);
        refine(&die, &mut p2, &config, 3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn zero_effort_is_a_noop() {
        let die = itc99::generate_flat("d", 100, 8, 4, 4, 2);
        let config = PlaceConfig {
            moves_per_cell: 0,
            ..PlaceConfig::default()
        };
        let mut p = grid::initial(&die, &config);
        let orig = p.clone();
        refine(&die, &mut p, &config, 3);
        assert_eq!(p, orig);
    }
}

//! Connectivity-ordered initial grid placement.
//!
//! Gates are laid out in breadth-first order from the primary inputs onto a
//! square-ish row/site grid in boustrophedon (snake) order, so combinationally
//! adjacent gates start out physically adjacent. This both gives annealing a
//! warm start and — important for the experiments — makes `distance(ff,
//! tsv)` correlate with logical proximity, as a real placer would.

use std::collections::VecDeque;

use prebond3d_netlist::{GateId, Netlist};

use crate::{PlaceConfig, Placement, Point};

/// Build the initial placement.
pub fn initial(netlist: &Netlist, config: &PlaceConfig) -> Placement {
    let n = netlist.len();
    if n == 0 {
        return Placement::new(Vec::new(), 0.0, 0.0);
    }
    let sites_needed = (n as f64 / config.utilization).ceil();
    // Square die: columns × rows, correcting for site aspect ratio.
    let aspect = config.row_height / config.site_width;
    let cols = (sites_needed * aspect).sqrt().ceil() as usize;
    let cols = cols.max(1);
    let rows = (sites_needed as usize).div_ceil(cols);
    let width = cols as f64 * config.site_width;
    let height = rows as f64 * config.row_height;

    let order = bfs_order(netlist);
    // Spread cells over all sites with an even stride so utilization
    // whitespace is distributed, not bunched at the end.
    let total_sites = cols * rows;
    let stride = total_sites as f64 / n as f64;
    let mut points = vec![Point::default(); n];
    for (rank, &id) in order.iter().enumerate() {
        let site = ((rank as f64 * stride) as usize).min(total_sites - 1);
        let row = site / cols;
        // Snake order: odd rows run right-to-left.
        let col_in_row = site % cols;
        let col = if row.is_multiple_of(2) {
            col_in_row
        } else {
            cols - 1 - col_in_row
        };
        points[id.index()] = Point {
            x: (col as f64 + 0.5) * config.site_width,
            y: (row as f64 + 0.5) * config.row_height,
        };
    }
    Placement::new(points, width, height)
}

/// Breadth-first order over the fanout relation, starting from all sources;
/// unreached gates (possible with `Output`-only islands) are appended in id
/// order.
fn bfs_order(netlist: &Netlist) -> Vec<GateId> {
    let n = netlist.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue: VecDeque<GateId> = netlist
        .iter()
        .filter(|(_, g)| g.kind.is_source())
        .map(|(id, _)| id)
        .collect();
    for &id in &queue {
        seen[id.index()] = true;
    }
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &fo in netlist.fanout(id) {
            if !seen[fo.index()] {
                seen[fo.index()] = true;
                queue.push_back(fo);
            }
        }
    }
    for (i, &s) in seen.iter().enumerate() {
        if !s {
            order.push(GateId(i as u32));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebond3d_netlist::itc99;

    #[test]
    fn all_gates_placed_inside_die() {
        let die = itc99::generate_flat("d", 250, 16, 6, 6, 5);
        let p = initial(&die, &PlaceConfig::default());
        assert_eq!(p.len(), die.len());
        for id in die.ids() {
            let pt = p.location(id);
            assert!(pt.x > 0.0 && pt.x < p.width(), "{pt:?}");
            assert!(pt.y > 0.0 && pt.y < p.height(), "{pt:?}");
        }
    }

    #[test]
    fn connected_gates_start_nearby() {
        let die = itc99::generate_flat("d", 400, 24, 8, 8, 5);
        let p = initial(&die, &PlaceConfig::default());
        // Average connected-pair distance must beat average random-pair
        // distance (the whole point of the BFS seed).
        let mut conn = 0.0;
        let mut conn_n = 0usize;
        for (id, _) in die.iter() {
            for &fo in die.fanout(id) {
                conn += p.distance(id, fo).0;
                conn_n += 1;
            }
        }
        let mut rand_d = 0.0;
        let mut rand_n = 0usize;
        let step = 7;
        for i in (0..die.len()).step_by(step) {
            for j in (1..die.len()).step_by(step * 3 + 1) {
                rand_d += p
                    .distance(GateId(i as u32), GateId(((i + j) % die.len()) as u32))
                    .0;
                rand_n += 1;
            }
        }
        let conn_avg = conn / conn_n as f64;
        let rand_avg = rand_d / rand_n as f64;
        assert!(
            conn_avg < rand_avg,
            "connected avg {conn_avg:.1} vs random avg {rand_avg:.1}"
        );
    }

    #[test]
    fn empty_netlist_is_ok() {
        use prebond3d_netlist::NetlistBuilder;
        let n = NetlistBuilder::new("empty").finish().unwrap();
        let p = initial(&n, &PlaceConfig::default());
        assert!(p.is_empty());
    }
}

//! Placement quality checks: site-overlap detection and density maps.
//!
//! The annealing placer swaps whole site assignments so overlaps cannot
//! occur by construction — but DFT insertion anchors new gates *on top of*
//! existing cells ([`crate::Placement`] extension), and these checks
//! quantify how much co-location that introduces and where the hot spots
//! are.

use std::collections::HashMap;

use prebond3d_netlist::GateId;

use crate::Placement;

/// A coarse occupancy grid over the die.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    bins_x: usize,
    bins_y: usize,
    counts: Vec<usize>,
    bin_w: f64,
    bin_h: f64,
}

impl DensityMap {
    /// Build a `bins_x × bins_y` occupancy histogram of `placement`.
    ///
    /// # Panics
    ///
    /// Panics if either bin count is zero.
    pub fn build(placement: &Placement, bins_x: usize, bins_y: usize) -> Self {
        assert!(bins_x > 0 && bins_y > 0, "need at least one bin");
        let bin_w = (placement.width() / bins_x as f64).max(1e-9);
        let bin_h = (placement.height() / bins_y as f64).max(1e-9);
        let mut counts = vec![0usize; bins_x * bins_y];
        for i in 0..placement.len() {
            let p = placement.location(GateId(i as u32));
            let bx = ((p.x / bin_w) as usize).min(bins_x - 1);
            let by = ((p.y / bin_h) as usize).min(bins_y - 1);
            counts[by * bins_x + bx] += 1;
        }
        DensityMap {
            bins_x,
            bins_y,
            counts,
            bin_w,
            bin_h,
        }
    }

    /// Occupancy of bin `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> usize {
        self.counts[y * self.bins_x + x]
    }

    /// The most crowded bin: `((x, y), count)`.
    pub fn hottest(&self) -> ((usize, usize), usize) {
        let (i, &c) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("at least one bin");
        ((i % self.bins_x, i / self.bins_x), c)
    }

    /// Ratio of the hottest bin to the average occupancy (1.0 = uniform).
    pub fn peak_to_average(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.counts.len() as f64;
        self.hottest().1 as f64 / avg
    }

    /// Grid dimensions `(bins_x, bins_y)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.bins_x, self.bins_y)
    }

    /// Bin geometry `(width, height)` in µm.
    pub fn bin_size(&self) -> (f64, f64) {
        (self.bin_w, self.bin_h)
    }
}

/// Groups of gates that sit on exactly the same coordinates (co-located).
///
/// Anchored DFT cells legitimately co-locate with their TSV/flip-flop;
/// anything else co-locating indicates a placement bug.
pub fn colocated_groups(placement: &Placement) -> Vec<Vec<GateId>> {
    let mut by_spot: HashMap<(i64, i64), Vec<GateId>> = HashMap::new();
    for i in 0..placement.len() {
        let id = GateId(i as u32);
        let p = placement.location(id);
        // Quantize to 0.001 µm to make coordinates hashable.
        let key = ((p.x * 1000.0).round() as i64, (p.y * 1000.0).round() as i64);
        by_spot.entry(key).or_default().push(id);
    }
    let mut groups: Vec<Vec<GateId>> = by_spot.into_values().filter(|g| g.len() > 1).collect();
    groups.sort_by_key(|g| g[0]);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, PlaceConfig};
    use prebond3d_netlist::itc99;

    #[test]
    fn fresh_placement_has_no_overlaps() {
        let die = itc99::generate_flat("d", 300, 20, 8, 8, 5);
        let p = place(&die, &PlaceConfig::default(), 1);
        assert!(
            colocated_groups(&p).is_empty(),
            "one cell per site by construction"
        );
    }

    #[test]
    fn density_map_accounts_every_cell() {
        let die = itc99::generate_flat("d", 300, 20, 8, 8, 5);
        let p = place(&die, &PlaceConfig::default(), 1);
        let map = DensityMap::build(&p, 8, 8);
        let total: usize = (0..8)
            .flat_map(|y| (0..8).map(move |x| (x, y)))
            .map(|(x, y)| map.count(x, y))
            .sum();
        assert_eq!(total, die.len());
        assert!(map.peak_to_average() >= 1.0);
        assert_eq!(map.dims(), (8, 8));
        assert!(map.bin_size().0 > 0.0);
    }

    #[test]
    fn duplicated_points_are_reported() {
        let die = itc99::generate_flat("d", 50, 6, 4, 4, 5);
        let p = place(&die, &PlaceConfig::default(), 1);
        let mut points: Vec<crate::Point> =
            (0..p.len()).map(|i| p.location(GateId(i as u32))).collect();
        points.push(p.location(GateId(0)));
        let p2 = Placement::new(points, p.width(), p.height());
        let groups = colocated_groups(&p2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }
}
